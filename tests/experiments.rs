//! Shape checks for every regenerated experiment (the per-experiment index of
//! DESIGN.md): the simulated tables and figures must reproduce the paper's
//! qualitative findings — who wins, by roughly what factor, and where the
//! crossovers fall.

use pando_bench::{batching_sweep, regenerate_column};
use pando_core::deploy::{run_figure4_scenario, DeployEvent};
use pando_devices::profiles::{Scenario, ScenarioSetup};
use pando_devices::table2::{paper_total, scenario_entries};
use pando_workloads::AppKind;
use std::time::Duration;

const WINDOW: Duration = Duration::from_secs(120);

/// E1-E3: the regenerated Table 2 totals land close to the published totals
/// for every scenario and application (the simulation is calibrated from the
/// per-device rates, so this checks that the coordination layer — batching,
/// limiter window, latencies — does not lose throughput).
#[test]
fn table2_totals_match_the_paper_within_ten_percent() {
    for scenario in Scenario::all() {
        for app in AppKind::measured() {
            let column = regenerate_column(scenario, app, WINDOW);
            let Some(paper) = column.paper_total else {
                assert!(column.rows.is_empty(), "{scenario:?}/{app:?} should be unmeasured");
                continue;
            };
            let error = (column.simulated_total - paper).abs() / paper;
            assert!(
                error < 0.10,
                "{scenario:?}/{app:?}: simulated {:.2} vs paper {paper:.2}",
                column.simulated_total
            );
        }
    }
}

/// E1-E3: per-device shares follow the published ordering — the fastest
/// device of every scenario contributes the largest share.
#[test]
fn table2_per_device_shares_follow_the_paper() {
    for scenario in Scenario::all() {
        for app in [AppKind::Collatz, AppKind::Raytrace] {
            let column = regenerate_column(scenario, app, WINDOW);
            let paper_best = scenario_entries(scenario)
                .into_iter()
                .max_by(|a, b| {
                    a.throughput(app)
                        .unwrap_or(0.0)
                        .partial_cmp(&b.throughput(app).unwrap_or(0.0))
                        .unwrap()
                })
                .unwrap();
            let simulated_best = column
                .rows
                .iter()
                .max_by(|a, b| a.simulated.partial_cmp(&b.simulated).unwrap())
                .unwrap();
            assert_eq!(
                simulated_best.device, paper_best.device,
                "{scenario:?}/{app:?}: the fastest device must match the paper"
            );
            // Shares are within a few points of the published shares.
            for row in &column.rows {
                assert!(
                    (row.simulated_share - row.paper_share).abs() < 5.0,
                    "{scenario:?}/{app:?}/{}: simulated share {:.1}% vs paper {:.1}%",
                    row.device,
                    row.simulated_share,
                    row.paper_share
                );
            }
        }
    }
}

/// E1 vs E2 vs E3: the cross-scenario ordering of the totals holds (Grid5000
/// VPN > LAN personal devices > PlanetLab WAN for Collatz, as in Table 2).
#[test]
fn cross_scenario_ordering_matches_the_paper() {
    let totals: Vec<f64> = Scenario::all()
        .iter()
        .map(|s| regenerate_column(*s, AppKind::Collatz, WINDOW).simulated_total)
        .collect();
    let (lan, vpn, wan) = (totals[0], totals[1], totals[2]);
    assert!(vpn > lan, "Grid5000 beats the personal devices in aggregate");
    assert!(lan > wan, "the personal devices beat the PlanetLab nodes in aggregate");
    // And the paper's factors hold roughly (VPN ≈ 1.7× LAN, LAN ≈ 1.2× WAN).
    assert!((vpn / lan - 3_823.51 / 2_209.65).abs() < 0.3);
    assert!((lan / wan - 2_209.65 / 1_845.52).abs() < 0.3);
}

/// E4: the Figure 4 deployment example — the tablet crashes, the phone takes
/// over, and the three outputs still come back in order.
#[test]
fn figure4_deployment_trace_has_the_expected_shape() {
    let trace = run_figure4_scenario(|input| Ok(format!("rendered-{input}")));
    assert!(matches!(trace.first(), Some(DeployEvent::Started { inputs: 3 })));
    let joined: Vec<&str> = trace
        .iter()
        .filter_map(|e| match e {
            DeployEvent::Joined { device } => Some(device.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(joined, vec!["tablet", "phone"]);
    let DeployEvent::Finished { outputs, relends } = trace.last().unwrap() else {
        panic!("trace must end with Finished");
    };
    assert_eq!(
        outputs,
        &vec!["rendered-x1".to_string(), "rendered-x2".into(), "rendered-x3".into()]
    );
    let _ = relends; // the crash may or may not leave a value in flight
}

/// E5: batching hides the network latency — batch size 1 underperforms, and
/// the paper's chosen batch sizes (2 on LAN/VPN, 4 on WAN) reach within a few
/// percent of the saturated throughput.
#[test]
fn batching_hides_latency_at_the_papers_batch_sizes() {
    for (scenario, paper_batch) in [(Scenario::Lan, 2), (Scenario::Vpn, 2), (Scenario::Wan, 4)] {
        let sweep = batching_sweep(scenario, AppKind::Raytrace, &[1, paper_batch, 16], WINDOW);
        let (one, chosen, saturated) = (sweep[0].1, sweep[1].1, sweep[2].1);
        assert!(
            chosen >= saturated * 0.95,
            "{scenario:?}: batch {paper_batch} reaches {chosen:.2}, saturation is {saturated:.2}"
        );
        assert!(one <= chosen, "{scenario:?}: batch 1 cannot beat batch {paper_batch}");
    }
    // On the WAN the effect is pronounced: batch 1 leaves a visible gap.
    let wan = batching_sweep(Scenario::Wan, AppKind::Raytrace, &[1, 4], WINDOW);
    assert!(wan[0].1 < wan[1].1 * 0.97);
}

/// E6: the §5.5 single-core comparisons — the iPhone SE beats the oldest
/// Grid5000 node and most PlanetLab nodes on Collatz, and 2-5 recent personal
/// cores match the fastest server core.
#[test]
fn device_vs_server_claims_hold() {
    let all = pando_devices::table2::paper_reference();
    let find = |name: &str| all.iter().find(|e| e.device == name).unwrap();
    let iphone = find("iPhone SE");
    let uvb = find("uvb.sophia");
    let mbpro = find("MBPro 2016");
    assert!(iphone.collatz > uvb.collatz);
    let beaten =
        scenario_entries(Scenario::Wan).iter().filter(|e| e.collatz < iphone.collatz).count();
    assert!(beaten >= 6, "the iPhone must beat almost all PlanetLab nodes ({beaten}/7)");
    let fastest_server_core = all
        .iter()
        .filter(|e| e.scenario != Scenario::Lan)
        .map(|e| e.collatz)
        .fold(0.0f64, f64::max);
    let mbpro_per_core = mbpro.collatz / mbpro.cores as f64;
    let cores_needed = (fastest_server_core / mbpro_per_core).ceil() as u32;
    assert!(
        (2..=5).contains(&cores_needed),
        "{cores_needed} MBPro cores needed to match the fastest server core"
    );
}

/// Consistency between the calibration data and the scenario setups used by
/// the harness (guards against the reference table and the profiles drifting
/// apart).
#[test]
fn scenario_setups_are_consistent_with_the_reference_table() {
    for scenario in Scenario::all() {
        let setup = ScenarioSetup::paper(scenario);
        for app in AppKind::measured() {
            let total = setup.total_rate(app);
            match paper_total(scenario, app) {
                Some(paper) => {
                    assert!((total - paper).abs() / paper < 0.01 || (total - paper).abs() < 0.02)
                }
                None => assert_eq!(total, 0.0),
            }
        }
    }
}
