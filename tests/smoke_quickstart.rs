//! Workspace smoke test: the quickstart example path end to end.
//!
//! Exercises the cross-crate wiring CI needs covered beyond unit tests — a
//! master from `pando-core` lending work over `pando-netsim` channels opened
//! with `open_volunteer_channel`, two worker loops processing through the
//! `pando-pull-stream` substrate and the typed `StringCodec` payload layer —
//! and asserts the ordered-output guarantee of the programming model (paper
//! Table 1).

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_pull_stream::codec::StringCodec;
use pando_pull_stream::source::{count, SourceExt};
use pando_pull_stream::StreamError;

#[test]
fn quickstart_path_two_workers_ordered_output() {
    let square = |input: &String| -> Result<String, StreamError> {
        let n: u64 = input.parse().map_err(|_| StreamError::new("input is not an integer"))?;
        Ok((n * n).to_string())
    };

    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = ["tablet", "phone"]
        .into_iter()
        .map(|name| {
            WorkerBuilder::new().name(name).spawn_typed(
                pando.open_volunteer_channel(),
                StringCodec,
                square,
            )
        })
        .collect();

    let outputs = pando
        .run_typed(StringCodec, count(20).map_values(|v| v.to_string()))
        .collect_values()
        .expect("stream completes");

    // Ordered output: result i is input i squared, despite two racing workers.
    let expected: Vec<String> = (1..=20u64).map(|n| (n * n).to_string()).collect();
    assert_eq!(outputs, expected);

    // Both volunteers participated in a conservative (no re-lend) run.
    let mut processed_total = 0;
    for worker in workers {
        processed_total += worker.join().processed;
    }
    assert_eq!(processed_total, 20);
    let stats = pando.lender_stats().expect("the run started");
    assert_eq!(stats.values_read, 20);
    assert_eq!(stats.results_emitted, 20);
    assert_eq!(stats.relends, 0);
}
