//! End-to-end integration tests spanning every crate: real workloads,
//! simulated network channels, the public signalling server, fault injection
//! and the programming-model properties of paper Table 1 — all over the
//! binary payload pipeline (`Bytes` payloads, batched frames).

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::monitor::MiningMonitor;
use pando_core::volunteer::{join_as_volunteer, serve};
use pando_core::worker::{WorkerBuilder, WorkerOptions};
use pando_netsim::channel::ChannelConfig;
use pando_netsim::fault::FaultPlan;
use pando_netsim::signaling::PublicServer;
use pando_pull_stream::source::{from_iter, SourceExt};
use pando_workloads::app::{AppKind, ImageProcCodec};
use pando_workloads::crypto;
use std::sync::Arc;
use std::time::Duration;

fn app_worker(
    pando: &Pando,
    kind: AppKind,
    name: &str,
    fault: FaultPlan,
) -> pando_core::worker::WorkerHandle {
    let app = kind.instantiate();
    WorkerBuilder::new()
        .name(name)
        .fault(fault)
        .spawn(pando.open_volunteer_channel(), move |input: &Bytes| app.process(input))
}

/// Streaming map + ordered outputs: the raytracing animation comes back in
/// frame order even with devices of different speeds (Table 1 rows 1-2).
/// Frames travel as raw pixel buffers, not base64 strings.
#[test]
fn animation_frames_come_back_in_order() {
    let app = AppKind::Raytrace.instantiate();
    let pando = Pando::new(PandoConfig::local_test());
    let _fast = app_worker(&pando, AppKind::Raytrace, "fast", FaultPlan::None);
    let _slow = {
        let app = AppKind::Raytrace.instantiate();
        WorkerBuilder::new().name("slow").spawn(
            pando.open_volunteer_channel(),
            move |input: &Bytes| {
                std::thread::sleep(Duration::from_millis(5));
                app.process(input)
            },
        )
    };
    let inputs: Vec<Bytes> = (0..12).map(|i| app.input(i)).collect();
    let expected: Vec<Bytes> = inputs.iter().map(|i| app.process(i).unwrap()).collect();
    let outputs = pando.run(from_iter(inputs)).collect_values().unwrap();
    assert_eq!(outputs, expected, "outputs must be the ordered map of the inputs");
}

/// Dynamic joins + fault tolerance: devices join mid-run and crash without
/// losing any value (Table 1 rows 3 and 6).
#[test]
fn collatz_survives_churn() {
    let pando = Pando::new(PandoConfig::local_test());
    let app = AppKind::Collatz.instantiate();
    let crashing = app_worker(&pando, AppKind::Collatz, "doomed", FaultPlan::AfterTasks(5));
    let inputs: Vec<Bytes> = (0..60).map(|i| app.input(i)).collect();
    let expected: Vec<Bytes> = inputs.iter().map(|i| app.process(i).unwrap()).collect();

    let output_source = pando.run(from_iter(inputs));
    let collector = std::thread::spawn(move || pando_pull_stream::sink::collect(output_source));
    // A second device joins while the first is already (about to be) dead.
    std::thread::sleep(Duration::from_millis(20));
    let late = app_worker(&pando, AppKind::Collatz, "late", FaultPlan::None);

    let outputs = collector.join().unwrap().unwrap();
    assert_eq!(outputs, expected);
    assert!(crashing.join().crashed);
    assert!(!late.join().crashed);
    pando.join_volunteers();
    let stats = pando.lender_stats().unwrap();
    assert_eq!(stats.results_emitted, 60);
    assert_eq!(stats.substreams_crashed, 1);
}

/// Laziness: with an infinite input stream, Pando only reads what the
/// volunteers can process, and the deployment can be shut down early
/// (Table 1 rows 4-5).
#[test]
fn infinite_stream_is_read_lazily() {
    let pando = Pando::new(PandoConfig::local_test());
    let _worker = app_worker(&pando, AppKind::Collatz, "solo", FaultPlan::None);
    let app = AppKind::Collatz.instantiate();
    let output = pando.run(pando_pull_stream::source::infinite(move |i| app.input(i)));
    let first_ten = pando_pull_stream::sink::take(output, 10).unwrap();
    assert_eq!(first_ten.len(), 10);
    let stats = pando.lender_stats().unwrap();
    assert!(
        stats.values_read < 40,
        "an infinite stream must not be read eagerly (read {})",
        stats.values_read
    );
}

/// Volunteers joining over the public server (WebRTC-style) compute real
/// image-processing results that match a local computation, through the
/// typed tile-digest codec.
#[test]
fn image_processing_over_the_public_server() {
    let server = Arc::new(PublicServer::local());
    let config = PandoConfig::local_test().with_channel(ChannelConfig::instant());
    let pando = Pando::new(config);
    let (url, acceptor) = serve(&pando, &server);
    let mut workers = Vec::new();
    for _ in 0..2 {
        let small = pando_workloads::app::ImageProcApp { tile_size: 64, radius: 2 };
        let (handle, _kind) = join_as_volunteer(
            &server,
            &url,
            ImageProcCodec,
            move |seed: &u64| Ok(small.digest(*seed)),
            WorkerOptions::default(),
        )
        .unwrap();
        workers.push(handle);
    }
    let local = pando_workloads::app::ImageProcApp { tile_size: 64, radius: 2 };
    let outputs = pando.run_typed(ImageProcCodec, from_iter(0..8u64)).collect_values().unwrap();
    let expected: Vec<_> = (0..8u64).map(|seed| local.digest(seed)).collect();
    assert_eq!(outputs, expected, "distributed results must equal the local computation");
    server.unhost(&url);
    acceptor.join().unwrap();
    for worker in workers {
        worker.join();
    }
}

/// The mining feedback loop finds verifiable nonces for a chain of blocks
/// (paper §4.2) using several volunteers.
#[test]
fn mining_feedback_loop_produces_verifiable_blocks() {
    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = (0..3)
        .map(|i| app_worker(&pando, AppKind::CryptoMining, &format!("m{i}"), FaultPlan::None))
        .collect();
    let blocks = vec!["itest-block-a".to_string(), "itest-block-b".to_string()];
    let solved = MiningMonitor::new(blocks.clone(), 10, 500).run(&pando);
    assert_eq!(solved.len(), 2);
    for (i, solved_block) in solved.iter().enumerate() {
        assert_eq!(solved_block.block, blocks[i]);
        assert!(crypto::verify(&blocks[i], solved_block.nonce, 10));
    }
    for worker in workers {
        worker.join();
    }
}

/// Higher-latency (WAN-like) channels still complete the stream; batching
/// keeps the devices busy and coalesces several tasks per frame.
#[test]
fn wan_profile_deployment_completes() {
    let mut channel = ChannelConfig::instant();
    channel.latency = Duration::from_millis(5);
    channel.jitter = Duration::from_millis(2);
    let config = PandoConfig::local_test().with_channel(channel).with_batch_size(4);
    let pando = Pando::new(config);
    let _workers: Vec<_> = (0..3)
        .map(|i| {
            app_worker(&pando, AppKind::StreamLenderTesting, &format!("w{i}"), FaultPlan::None)
        })
        .collect();
    let app = AppKind::StreamLenderTesting.instantiate();
    let inputs: Vec<Bytes> = (0..20).map(|i| app.input(i)).collect();
    let outputs = pando.run(from_iter(inputs)).collect_values().unwrap();
    assert_eq!(outputs.len(), 20);
    let codec = pando_workloads::app::SlTestCodec;
    use pando_pull_stream::codec::TaskCodec;
    for out in &outputs {
        let verdict = codec.decode_result(out).unwrap();
        assert!(verdict.passed(), "every random execution passes: {verdict:?}");
    }
}

/// Regression test: the batching dispatcher must never *block* while
/// coalescing a frame. With an interactive input (a stubborn queue that only
/// produces values when results are confirmed or resubmitted), a blocking
/// coalesce pull deadlocks — the queue waits for the result of a task the
/// dispatcher is still holding unsent. The dispatcher therefore coalesces
/// through the non-blocking `Source::try_pull` only.
#[test]
fn batching_does_not_deadlock_on_interactive_inputs() {
    use pando_pull_stream::stubborn::StubbornQueue;
    use pando_pull_stream::{Answer, Request, Source};

    let tiles = 12u64;
    let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
    let _workers: Vec<_> = (0..2)
        .map(|i| {
            let small = pando_workloads::app::ImageProcApp { tile_size: 32, radius: 1 };
            WorkerBuilder::new().name(format!("w{i}")).spawn(
                pando.open_volunteer_channel(),
                move |input: &Bytes| {
                    use pando_pull_stream::codec::TaskCodec;
                    let seed = ImageProcCodec.decode_task(input)?;
                    Ok(ImageProcCodec.encode_result(&small.digest(seed)))
                },
            )
        })
        .collect();
    let (queue, handle) = StubbornQueue::new(from_iter(0..tiles), 4);
    let mut output = pando.run_typed(ImageProcCodec, queue.map_values(|tracked| tracked.value));
    let mut confirmed = std::collections::HashSet::new();
    let mut first_sight = std::collections::HashSet::new();
    while let Answer::Value(digest) = output.pull(Request::Ask) {
        // Fail the first download of every even tile, forcing resubmissions
        // while the dispatcher may be holding unsent coalesced tasks.
        let id = digest.seed; // tile ids are 0..tiles in submission order
        let retry = digest.seed % 2 == 0 && first_sight.insert(digest.seed);
        if retry {
            handle.resubmit(id).unwrap();
        } else {
            let _ = handle.confirm(id);
            confirmed.insert(digest.seed);
        }
    }
    assert_eq!(confirmed.len() as u64, tiles, "every tile is eventually confirmed");
    assert_eq!(handle.stats().abandoned, 0);
}

/// Batching end to end: with a wide window the master packs several tasks
/// per frame and the worker answers with coalesced result batches, so far
/// fewer frames than records cross the wire.
#[test]
fn batched_frames_cross_the_wire() {
    let config = PandoConfig::local_test().with_batch_size(8);
    let pando = Pando::new(config);
    let _worker = app_worker(&pando, AppKind::Collatz, "packer", FaultPlan::None);
    let app = AppKind::Collatz.instantiate();
    let inputs: Vec<Bytes> = (0..64).map(|i| app.input(i)).collect();
    let outputs = pando.run(from_iter(inputs)).collect_values().unwrap();
    assert_eq!(outputs.len(), 64);
    pando.join_volunteers();
    let report = pando.meter().report();
    let row = &report.rows[0];
    assert_eq!(row.tasks, 64);
    assert!(
        row.wire_frames < 2 * row.tasks,
        "batching must amortise frames: {} frames for {} tasks",
        row.wire_frames,
        row.tasks
    );
    assert!(row.wire_bytes > 0);
}
