//! The paper's motivating example (§2.1): render the frames of a rotation
//! animation with ray tracing on volunteer devices, tolerate a crash, and
//! assemble the frames in order. Frames travel as raw RGB pixel buffers —
//! the base64 inflation of the original tool (+33%%, paper §2.1.1) is gone.
//!
//! Run with: `cargo run --release --example animation_render`

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::source::from_iter;
use pando_pull_stream::source::SourceExt;
use pando_workloads::app::RaytraceCodec;
use pando_workloads::raytrace::{animation_angles, Scene};

fn main() {
    let frames = 24;
    let (width, height) = (96, 72);

    // generate-angles.js: the camera positions of the animation.
    let angles = animation_angles(frames);

    // render.js: raytrace one frame given a camera angle.
    let render = move |angle: &f64| -> Result<Bytes, pando_pull_stream::StreamError> {
        Ok(Bytes::from(Scene::default().render(*angle, width, height)))
    };

    let pando = Pando::new(PandoConfig::local_test());
    println!("Rendering {frames} frames of {width}x{height} on volunteer devices...");

    // A tablet that crashes after three frames and two reliable laptops.
    let tablet = WorkerBuilder::new().fault(FaultPlan::AfterTasks(3)).name("tablet").spawn_typed(
        pando.open_volunteer_channel(),
        RaytraceCodec,
        render,
    );
    let laptops: Vec<_> = (0..2)
        .map(|i| {
            WorkerBuilder::new().name(format!("laptop-{i}")).spawn_typed(
                pando.open_volunteer_channel(),
                RaytraceCodec,
                render,
            )
        })
        .collect();

    let start = std::time::Instant::now();
    let rendered = pando
        .run_typed(RaytraceCodec, from_iter(angles))
        .collect_values()
        .expect("all frames rendered");
    let elapsed = start.elapsed();

    // gif-encoder.js: assemble the animation (here: just account for it).
    let total_bytes: usize = rendered.iter().map(Bytes::len).sum();
    println!(
        "animation assembled: {} frames in order, {:.1} kB of raw pixels, {:.2?} wall clock ({:.2} frames/s)",
        rendered.len(),
        total_bytes as f64 / 1000.0,
        elapsed,
        rendered.len() as f64 / elapsed.as_secs_f64()
    );
    let report = tablet.join();
    println!(
        "tablet crashed after {} frames (its pending frames were re-rendered)",
        report.processed
    );
    for laptop in laptops {
        let report = laptop.join();
        println!("{} rendered {} frames", report.name, report.processed);
    }
}
