//! Scale smoke test: one master drives a large fleet of simulated
//! volunteers through the event-driven reactor with a *constant* number of
//! OS threads — no thread pair per volunteer.
//!
//! Run with: `cargo run --release --example scale_smoke`
//!
//! Environment knobs:
//!
//! * `SCALE_VOLUNTEERS` — fleet size (default 1000; `make scale` runs 10000)
//! * `SCALE_TASKS` — number of values to stream (default 5 × volunteers)
//! * `SCALE_SHARDS` — lender shards (default 1 = the single global lender;
//!   `make scale-sharded` runs 4, spreading dispatch over four locks)
//! * `SCALE_BUDGET_SECS` — wall-clock guard; the process exits non-zero if
//!   the run exceeds it (default 120), which is how CI detects a scheduling
//!   regression in the reactor.
//!
//! The run asserts the interesting properties, not just survival: results
//! arrive complete, in input order and correctly demultiplexed (value `v`
//! must produce `f(v)`), and the master-side thread budget stays at
//! `reactor_threads + const` regardless of the fleet size.

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_netsim::channel::ChannelConfig;
use pando_pull_stream::source::{count, SourceExt};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Threads currently alive in this process (Linux; `None` elsewhere).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| line.strip_prefix("Threads:")?.trim().parse().ok())
}

fn main() {
    let volunteers = env_usize("SCALE_VOLUNTEERS", 1_000);
    let tasks = env_usize("SCALE_TASKS", volunteers * 5) as u64;
    let shards = env_usize("SCALE_SHARDS", 1).max(1);
    let budget = Duration::from_secs(env_usize("SCALE_BUDGET_SECS", 120) as u64);
    let reactor_threads = 4;
    let worker_pool_threads = 8;

    // A relaxed channel profile: no simulated latency (the point here is
    // scheduling scale, not network realism) and a failure timeout generous
    // enough that slow CI machines never mistake queueing for a crash.
    let channel = ChannelConfig {
        heartbeat_interval: Duration::from_millis(500),
        failure_timeout: Duration::from_secs(30),
        ..ChannelConfig::instant()
    };
    let config = PandoConfig::local_test()
        .with_batch_size(4)
        .with_reactor_threads(reactor_threads)
        .with_lender_shards(shards)
        .with_channel(channel);

    let started = Instant::now();
    let baseline_threads = thread_count();
    let pando = Pando::new(config);
    let endpoints: Vec<_> = (0..volunteers).map(|_| pando.open_volunteer_channel()).collect();
    let pool = WorkerBuilder::new().heartbeats(true).pool_threads(worker_pool_threads).spawn_pool(
        endpoints,
        |payload: &Bytes| {
            // A trivial but checkable function: f(v) = v * 3 + 1.
            let v: u64 = std::str::from_utf8(payload)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| pando_pull_stream::StreamError::new("not a number"))?;
            Ok(Bytes::from((v * 3 + 1).to_string().into_bytes()))
        },
    );
    println!("{volunteers} volunteers wired in {:?}", started.elapsed());

    // Attaching the input wires every pending volunteer onto the reactor;
    // the thread census taken *here* is the scaling claim of this example.
    let output = pando.run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())));
    if let (Some(before), Some(after)) = (baseline_threads, thread_count()) {
        let added = after.saturating_sub(before);
        // reactor pool + worker pool + one input pump per shard + slack for
        // the runtime.
        let budgeted = reactor_threads + worker_pool_threads + shards + 1;
        println!("threads: {before} before, {after} with the fleet running (+{added})");
        assert!(
            added <= budgeted,
            "thread budget exceeded: +{added} threads for {volunteers} volunteers \
             (expected at most {budgeted}; no per-volunteer threads allowed)"
        );
    }
    let output = pando_pull_stream::sink::collect(output).expect("stream completes");
    let elapsed = started.elapsed();

    // Seq check: ordered and correctly demultiplexed.
    assert_eq!(output.len() as u64, tasks);
    for (i, payload) in output.iter().enumerate() {
        let v = (i + 1) as u64;
        let expected = (v * 3 + 1).to_string();
        assert_eq!(payload.as_ref(), expected.as_bytes(), "result {i} demultiplexed incorrectly");
    }

    let reports = pool.join();
    pando.join_volunteers();
    let served: u64 = reports.iter().map(|r| r.processed).sum();
    let stats = pando.reactor_stats().expect("reactor backend");
    let meter = pando.meter().report();
    println!(
        "{tasks} tasks over {volunteers} volunteers ({shards} lender shards) in {elapsed:?} \
         ({:.0} tasks/s)",
        tasks as f64 / elapsed.as_secs_f64()
    );
    println!(
        "reactor: {} threads, {} polls, {} wakeups, {} timer fires, max ready depth {}, \
         {} input prefetches, {} shard hops",
        stats.threads,
        stats.polls,
        stats.wakeups,
        stats.timer_fires,
        stats.max_ready_depth,
        stats.pump_prefetches,
        stats.shard_hops
    );
    println!(
        "wake discipline: {} wasted polls, {} kicks sent, {} kicks suppressed",
        stats.wasted_polls, stats.kicks_sent, stats.kicks_suppressed
    );
    pando.observe_shards();
    for row in pando.meter().report().shards {
        println!(
            "shard {}: {} borrows, {} results, depth {}, in flight {}",
            row.shard, row.borrows, row.results, row.depth, row.in_flight
        );
    }
    println!(
        "heartbeats: {} standalone sent, {} piggybacked/suppressed (master side)",
        meter.total_heartbeats_sent(),
        meter.total_heartbeats_suppressed()
    );
    assert_eq!(served, tasks, "every task served exactly once across the fleet");
    assert!(
        elapsed <= budget,
        "wall-clock guard exceeded: {elapsed:?} > {budget:?} — reactor scheduling regressed"
    );
    println!("scale smoke OK");
}
