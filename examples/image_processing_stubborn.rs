//! Stubborn processing with failure-prone external data distribution
//! (paper §4.3): blur Landsat-like tiles on volunteers while the result
//! download sometimes fails and must be resubmitted. Tile ids and digests
//! travel through the typed `ImageProcCodec`.
//!
//! Run with: `cargo run --release --example image_processing_stubborn`

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_pull_stream::source::{from_iter, SourceExt};
use pando_pull_stream::stubborn::StubbornQueue;
use pando_pull_stream::{Answer, Request, Source};
use pando_workloads::app::{ImageProcApp, ImageProcCodec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

fn main() {
    let tiles = 16u64;
    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let app = ImageProcApp { tile_size: 128, radius: 3 };
            WorkerBuilder::new().name(format!("device-{i}")).spawn_typed(
                pando.open_volunteer_channel(),
                ImageProcCodec,
                move |seed: &u64| Ok(app.digest(*seed)),
            )
        })
        .collect();

    // The stubborn queue feeds tile identifiers to Pando and keeps
    // resubmitting tiles whose result download fails. The tile number is what
    // travels to the workers; the tracking identifier stays local.
    let (queue, handle) = StubbornQueue::new(from_iter(0..tiles), 4);
    let tracking: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let record = tracking.clone();
    let mut output = pando.run_typed(
        ImageProcCodec,
        queue.map_values(move |tracked| {
            record.lock().unwrap().insert(tracked.value, tracked.id);
            tracked.value
        }),
    );

    let mut rng = StdRng::seed_from_u64(42);
    let mut confirmed = 0u64;
    println!("Blurring {tiles} tiles with an unreliable result download (25% failures)...");
    while let Answer::Value(digest) = output.pull(Request::Ask) {
        // The worker answers with a typed digest; recover the tracking id
        // from the tile number.
        let id = tracking.lock().unwrap()[&digest.seed];
        if rng.gen_bool(0.75) {
            handle.confirm(id).unwrap();
            confirmed += 1;
        } else {
            let retried = handle.resubmit(id).unwrap();
            println!(
                "tile {}: download failed ({})",
                digest.seed,
                if retried { "resubmitted" } else { "abandoned" }
            );
        }
    }
    let stats = handle.stats();
    println!(
        "\nconfirmed {confirmed}/{tiles} tiles, {} resubmissions, {} abandoned",
        stats.resubmissions, stats.abandoned
    );
    for worker in workers {
        let report = worker.join();
        println!("{} blurred {} tiles", report.name, report.processed);
    }
}
