//! Hyper-parameter search for a reinforcement-learning agent (paper §4.1):
//! each volunteer trains the agent with one learning-rate candidate; the
//! best candidate is selected downstream. Candidates and outcomes travel
//! through the typed `MlAgentCodec` — `f64` in, `TrainingOutcome` out, no
//! string formatting or parsing anywhere.
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_pull_stream::source::{from_iter, SourceExt};
use pando_workloads::app::MlAgentCodec;
use pando_workloads::mlagent::{learning_rate_candidates, train, TrainingConfig};

fn main() {
    let candidates = learning_rate_candidates(12);
    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = (0..4)
        .map(|i| {
            WorkerBuilder::new().name(format!("device-{i}")).spawn_typed(
                pando.open_volunteer_channel(),
                MlAgentCodec,
                |rate: &f64| Ok(train(*rate, &TrainingConfig::default())),
            )
        })
        .collect();

    println!("Searching {} learning-rate candidates on 4 devices...", candidates.len());
    let results = pando
        .run_typed(MlAgentCodec, from_iter(candidates))
        .collect_values()
        .expect("all candidates evaluated");

    let mut best: Option<(f64, f64)> = None;
    for outcome in &results {
        println!(
            "lr = {:<12.6} final reward = {:>8.3}",
            outcome.learning_rate, outcome.final_reward
        );
        if best.map(|(_, r)| outcome.final_reward > r).unwrap_or(true) {
            best = Some((outcome.learning_rate, outcome.final_reward));
        }
    }
    let (lr, reward) = best.expect("at least one candidate");
    println!("\nbest learning rate: {lr:.6} (final reward {reward:.3})");
    for worker in workers {
        worker.join();
    }
}
