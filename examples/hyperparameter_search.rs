//! Hyper-parameter search for a reinforcement-learning agent (paper §4.1):
//! each volunteer trains the agent with one learning-rate candidate; the
//! best candidate is selected downstream.
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::{spawn_worker, WorkerOptions};
use pando_pull_stream::source::{from_iter, SourceExt};
use pando_workloads::app::AppKind;
use pando_workloads::mlagent::learning_rate_candidates;

fn main() {
    let candidates = learning_rate_candidates(12);
    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let app = AppKind::MlAgentTraining.instantiate();
            spawn_worker(
                pando.open_volunteer_channel(),
                move |input: &str| app.process(input),
                WorkerOptions { name: format!("device-{i}"), ..WorkerOptions::default() },
            )
        })
        .collect();

    println!("Searching {} learning-rate candidates on 4 devices...", candidates.len());
    let results = pando
        .run(from_iter(candidates.into_iter().map(|lr| format!("{lr:.8}"))))
        .collect_values()
        .expect("all candidates evaluated");

    // Each result is "learning_rate,final_reward,steps".
    let mut best: Option<(f64, f64)> = None;
    for line in &results {
        let fields: Vec<&str> = line.split(',').collect();
        let lr: f64 = fields[0].parse().unwrap();
        let reward: f64 = fields[1].parse().unwrap();
        println!("lr = {lr:<12.6} final reward = {reward:>8.3}");
        if best.map(|(_, r)| reward > r).unwrap_or(true) {
            best = Some((lr, reward));
        }
    }
    let (lr, reward) = best.expect("at least one candidate");
    println!("\nbest learning rate: {lr:.6} (final reward {reward:.3})");
    for worker in workers {
        worker.join();
    }
}
