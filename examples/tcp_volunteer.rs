//! TCP demo, volunteer half: a separate OS process that connects a fleet of
//! worker loops to a running `tcp_master` over localhost TCP and processes
//! tasks until the master closes the stream — or, with `TCP_CRASH_AFTER`
//! set, kills itself abruptly mid-run to exercise crash detection and
//! re-lend across a real process boundary.
//!
//! See `examples/tcp_master.rs` for the two-terminal walkthrough and
//! `make tcp-demo` for the scripted version.
//!
//! Environment knobs:
//!
//! * `PANDO_TCP_ADDR` — master address (`host:port`)
//! * `PANDO_TCP_ADDR_FILE` — file to read the address from (written by the
//!   master; polled until it appears)
//! * `TCP_WORKERS` — number of volunteer connections to open (default 32)
//! * `TCP_NAME_PREFIX` — volunteer name prefix (default `vol`)
//! * `TCP_CRASH_AFTER` — if set, the whole process calls
//!   `std::process::exit(2)` once this many tasks were processed across the
//!   fleet: no close markers, no goodbyes, sockets torn down by the OS —
//!   exactly the "volunteer device dies" scenario of the paper.
//! * `TCP_DROP_AFTER` — if set, the fleet joins through resumable sessions
//!   ([`ReconnectingTcpTransport`]) and every connection severs its socket
//!   abruptly once this many tasks were processed across the fleet, then
//!   redials with backoff and resumes under its old session token. The
//!   master must ride the flap out inside its `reconnect_grace` window:
//!   zero crash re-lends, output still complete and in order.

use bytes::Bytes;
use pando_core::transport::tcp::session::{ReconnectPolicy, ReconnectingTcpTransport};
use pando_core::transport::tcp::{TcpConfig, TcpTransport};
use pando_core::transport::Transport;
use pando_core::worker::WorkerBuilder;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Must mirror the master's liveness windows (see `tcp_master.rs`).
fn demo_tcp_config() -> TcpConfig {
    TcpConfig {
        heartbeat_interval: Duration::from_millis(200),
        failure_timeout: Duration::from_secs(3),
        ..TcpConfig::default()
    }
}

/// Resolves the master address from `PANDO_TCP_ADDR`, or polls
/// `PANDO_TCP_ADDR_FILE` until the master publishes it.
fn master_addr() -> String {
    if let Ok(addr) = std::env::var("PANDO_TCP_ADDR") {
        return addr;
    }
    let path =
        std::env::var("PANDO_TCP_ADDR_FILE").expect("set PANDO_TCP_ADDR or PANDO_TCP_ADDR_FILE");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match std::fs::read_to_string(&path) {
            Ok(addr) if !addr.trim().is_empty() => return addr.trim().to_string(),
            _ if Instant::now() > deadline => panic!("no master address in {path} after 30s"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The demo workload: f(v) = 3v + 1 over the decimal payload.
fn parse_task(payload: &Bytes) -> Result<u64, pando_pull_stream::StreamError> {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| pando_pull_stream::StreamError::new("not a number"))
}

fn main() {
    let addr = master_addr();
    let workers = env_u64("TCP_WORKERS", 32) as usize;
    let prefix = std::env::var("TCP_NAME_PREFIX").unwrap_or_else(|_| "vol".to_string());
    let crash_after = std::env::var("TCP_CRASH_AFTER").ok().and_then(|v| v.parse::<u64>().ok());
    let drop_after = std::env::var("TCP_DROP_AFTER").ok().and_then(|v| v.parse::<u64>().ok());
    let processed = Arc::new(AtomicU64::new(0));

    println!(
        "joining master at {addr} with {workers} workers{}{}",
        crash_after.map(|n| format!(", crashing the process after {n} tasks")).unwrap_or_default(),
        drop_after.map(|n| format!(", dropping every link after {n} tasks")).unwrap_or_default()
    );
    let mut observers: Vec<TcpTransport> = Vec::with_capacity(workers);
    let handles: Vec<_> = if let Some(drop_at) = drop_after {
        // Resumable-session mode: every worker joins through a redialing
        // session transport, and the first worker past the threshold severs
        // the whole fleet's sockets at once (one-shot). Each link redials
        // with backoff, presents its old token, and resumes mid-stream.
        let links: Arc<Vec<ReconnectingTcpTransport>> = Arc::new(
            (0..workers)
                .map(|i| {
                    ReconnectingTcpTransport::connect(
                        addr.as_str(),
                        &format!("{prefix}-{i}"),
                        demo_tcp_config(),
                        ReconnectPolicy::default(),
                    )
                    .expect("connect session to master")
                })
                .collect(),
        );
        let dropped = Arc::new(AtomicBool::new(false));
        (0..workers)
            .map(|i| {
                let transport = links[i].clone();
                let links = links.clone();
                let dropped = dropped.clone();
                let processed = processed.clone();
                WorkerBuilder::new().name(format!("{prefix}-{i}")).heartbeats(true).spawn(
                    transport,
                    move |payload: &Bytes| {
                        let v = parse_task(payload)?;
                        let done = processed.fetch_add(1, Ordering::SeqCst) + 1;
                        if done >= drop_at && !dropped.swap(true, Ordering::SeqCst) {
                            // Sever every socket abruptly — no goodbyes, no
                            // close markers — then let the redial loops
                            // resume the sessions inside the master's grace
                            // window. Nothing may be lost or re-lent.
                            for link in links.iter() {
                                link.drop_link();
                            }
                            println!(
                                "dropped all {} links after {done} tasks; redialing",
                                links.len()
                            );
                        }
                        Ok(Bytes::from((v * 3 + 1).to_string().into_bytes()))
                    },
                )
            })
            .collect()
    } else {
        (0..workers)
            .map(|i| {
                let transport =
                    TcpTransport::connect(&addr, &format!("{prefix}-{i}"), demo_tcp_config())
                        .expect("connect to master");
                // A cheap clone observes the write-path counters after the
                // worker consumed the original.
                observers.push(transport.clone());
                let processed = processed.clone();
                WorkerBuilder::new().name(format!("{prefix}-{i}")).heartbeats(true).spawn(
                    transport,
                    move |payload: &Bytes| {
                        let v = parse_task(payload)?;
                        let done = processed.fetch_add(1, Ordering::SeqCst) + 1;
                        if let Some(limit) = crash_after {
                            if done >= limit {
                                // Abrupt process death: no unwinding, no close
                                // markers. The master must detect the crash and
                                // re-lend every value this fleet held.
                                std::process::exit(2);
                            }
                        }
                        Ok(Bytes::from((v * 3 + 1).to_string().into_bytes()))
                    },
                )
            })
            .collect()
    };

    let mut total = 0u64;
    for handle in handles {
        total += handle.join().processed;
    }
    if !observers.is_empty() {
        let (mut frames, mut calls, mut bytes) = (0u64, 0u64, 0u64);
        for observer in &observers {
            let stats = observer.stats();
            frames += stats.frames_written;
            calls += stats.write_calls;
            bytes += stats.bytes_written;
        }
        let per_write = if calls == 0 { 0.0 } else { frames as f64 / calls as f64 };
        println!(
            "transport: {frames} frames in {calls} write calls ({per_write:.2} frames/write), \
             {bytes} bytes"
        );
    }
    println!("volunteer process done: {total} tasks processed across {workers} workers");
}
