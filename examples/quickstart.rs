//! Quickstart: parallelise a function over a stream of values with two
//! volunteer devices (the minimal Pando usage of paper §2.1).
//!
//! Run with: `cargo run --example quickstart`

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_pull_stream::codec::StringCodec;
use pando_pull_stream::source::{count, SourceExt};
use pando_pull_stream::StreamError;

fn main() {
    // The processing function, typed through a codec. `StringCodec` keeps
    // the original '/pando/1.0.0' text convention at the application layer;
    // on the wire the values travel as binary payloads in batched frames.
    let square = |input: &String| -> Result<String, StreamError> {
        let n: u64 = input.parse().map_err(|_| StreamError::new("input is not an integer"))?;
        Ok((n * n).to_string())
    };

    // Start the master (the `pando square.js` command line of Figure 3).
    let pando = Pando::new(PandoConfig::local_test());
    println!("Serving volunteer code at http://10.10.14.119:5000 (simulated)");

    // Two volunteer devices open the URL.
    let workers: Vec<_> = ["tablet", "phone"]
        .into_iter()
        .map(|name| {
            println!("{name}: joined");
            WorkerBuilder::new().name(name).spawn_typed(
                pando.open_volunteer_channel(),
                StringCodec,
                square,
            )
        })
        .collect();

    // Stream 1..=20 through the deployment; outputs come back in order.
    let outputs = pando
        .run_typed(StringCodec, count(20).map_values(|v| v.to_string()))
        .collect_values()
        .expect("the stream completes");
    println!("outputs: {}", outputs.join(" "));

    for worker in workers {
        let report = worker.join();
        println!("{}: processed {} values", report.name, report.processed);
    }
    let stats = pando.lender_stats().expect("the run started");
    println!(
        "done: {} values read, {} results emitted, {} re-lent",
        stats.values_read, stats.results_emitted, stats.relends
    );
}
