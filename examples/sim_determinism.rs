//! Deterministic fleet-sim smoke: the real reactor stack — sharded lender,
//! driver state machines, wire protocol, crash recovery — run twice at fleet
//! scale under the virtual clock, and the two event traces compared **byte
//! for byte**. This is the acceptance check that experiments are
//! reproducible tick-for-tick: any scheduler nondeterminism (a real-time
//! read, an unseeded RNG, a racing wake-up) diverges the canonical traces
//! and fails the run with the first differing line.
//!
//! Run with: `cargo run --release --example sim_determinism`
//!
//! Environment knobs:
//!
//! * `SIM_VOLUNTEERS` — fleet size (default 10000, the `make sim` scale)
//! * `SIM_TASKS` — number of values to stream (default 2 × volunteers)
//! * `SIM_SEED` — master seed for jitter, service times and the fault
//!   schedule (default 42)
//! * `SIM_BUDGET_SECS` — wall-clock guard for the pair of runs (default
//!   480); exceeding it means the scheduler regressed
//! * `SIM_MAX_POLLS` — committed reactor-poll budget for run 1 (default 0 =
//!   unchecked); exceeding it means the wake discipline regressed towards
//!   broadcast kicks. CI pins the 10k fleet well under the 14,991,667 polls
//!   the pre-bounded reactor spent.

use pando_core::sim::{simulate_fleet, FleetParams};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let volunteers = env_u64("SIM_VOLUNTEERS", 10_000) as usize;
    let tasks = env_u64("SIM_TASKS", 2 * volunteers as u64);
    let seed = env_u64("SIM_SEED", 42);
    let budget = Duration::from_secs(env_u64("SIM_BUDGET_SECS", 480));
    let max_polls = env_u64("SIM_MAX_POLLS", 0);
    let params = FleetParams::new(seed, volunteers, tasks);

    let started = Instant::now();
    let first = simulate_fleet(&params);
    println!(
        "run 1: {tasks} tasks over {volunteers} volunteers, {} crashed, \
         {:?} virtual in {:?} wall ({} reactor polls, {} trace events)",
        first.crashed,
        first.virtual_elapsed,
        first.wall_elapsed,
        first.reactor.polls,
        first.trace.len()
    );
    let second = simulate_fleet(&params);
    println!("run 2: {:?} virtual in {:?} wall", second.virtual_elapsed, second.wall_elapsed);

    // The headline assertion: byte-identical canonical traces — event log,
    // output order and digest, shard claim log, meter rows, reactor
    // counters.
    let (a, b) = (first.canonical_trace(), second.canonical_trace());
    if a != b {
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            if la != lb {
                eprintln!("first divergence at canonical line {i}:\n  run1: {la}\n  run2: {lb}");
                break;
            }
        }
        panic!("same-seed runs diverged ({} vs {} bytes)", a.len(), b.len());
    }
    println!("canonical traces identical: {} bytes", a.len());

    // Sanity on top of equality: the stream completed, in order, despite the
    // fault schedule.
    assert_eq!(first.output_order, (0..tasks).collect::<Vec<u64>>(), "global order must survive");
    assert_eq!(first.claim_log, second.claim_log);

    // Optional committed poll budget: a regression towards broadcast kicks
    // multiplies the poll count long before it hurts wall-clock.
    if max_polls > 0 {
        assert!(
            first.reactor.polls < max_polls,
            "reactor polls exceeded the committed budget: {} >= {max_polls}",
            first.reactor.polls
        );
        println!("poll budget OK: {} < {max_polls}", first.reactor.polls);
    }

    // A different seed must not produce the same trace (jitter, service
    // times and the fault schedule all derive from it). Checked at a token
    // size: the full fleet twice is enough wall-clock already.
    let small = FleetParams::new(seed, 64, 256);
    let other = FleetParams::new(seed.wrapping_add(1), 64, 256);
    assert_ne!(
        simulate_fleet(&small).canonical_trace(),
        simulate_fleet(&other).canonical_trace(),
        "different seeds must diverge"
    );

    let elapsed = started.elapsed();
    assert!(
        elapsed <= budget,
        "wall-clock guard exceeded: {elapsed:?} > {budget:?} — sim scheduling regressed"
    );
    println!("sim determinism OK ({elapsed:?} total)");
}
