//! Golden-trace regression runner for the checked-in `scenarios/*.toml`
//! scripts. Every scenario is compiled through
//! [`pando_core::scenario::Scenario`], executed **twice** on the virtual
//! clock, byte-compared against itself (determinism), checked against its
//! `[expect]` table, and finally diffed against the committed golden trace
//! in `scenarios/golden/{name}.trace`. Any divergence fails the run with
//! the first differing line, so behavioural drift in the reactor, lender,
//! channel or failure detector shows up as a reviewable trace diff.
//!
//! Run with: `cargo run --release --example scenario_run` (or
//! `make scenarios`).
//!
//! Environment knobs:
//!
//! * `SCENARIO_DIR` — directory of scenario files (default `scenarios/`
//!   next to the workspace root)
//! * `SCENARIO_FILTER` — only run scenarios whose name contains this
//!   substring
//! * `BLESS=1` — rewrite the golden traces from this build instead of
//!   diffing (commit the result; the diff is the review artefact)

use pando_core::scenario::Scenario;
use pando_core::sim::simulate_fleet;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn first_divergence(ours: &str, golden: &str) -> String {
    for (i, (a, b)) in ours.lines().zip(golden.lines()).enumerate() {
        if a != b {
            return format!("first divergence at line {i}:\n  ours:   {a}\n  golden: {b}");
        }
    }
    format!("one trace is a prefix of the other ({} vs {} golden bytes)", ours.len(), golden.len())
}

fn run_one(path: &Path, golden_dir: &Path, bless: bool) -> Result<String, String> {
    let scenario = Scenario::load(path).map_err(|e| e.to_string())?;
    let params = scenario.to_fleet_params().map_err(|e| e.to_string())?;

    let started = Instant::now();
    let first = simulate_fleet(&params);
    let second = simulate_fleet(&params);
    let trace = first.canonical_trace();
    if trace != second.canonical_trace() {
        return Err(format!(
            "non-deterministic: two runs of the same scenario diverged\n{}",
            first_divergence(&trace, &second.canonical_trace())
        ));
    }

    // Output completeness: every sequence exactly once, in order, no matter
    // what the churn/fault schedule did. Loss composes with redelivery.
    let expected: Vec<u64> = (0..scenario.tasks).collect();
    if first.output_order != expected {
        return Err(format!(
            "output incomplete or reordered: got {} values, first few {:?}",
            first.output_order.len(),
            &first.output_order[..first.output_order.len().min(8)]
        ));
    }

    scenario.expect.check(&first)?;

    let golden_path = golden_dir.join(format!("{}.trace", scenario.name));
    if bless {
        std::fs::create_dir_all(golden_dir).map_err(|e| e.to_string())?;
        std::fs::write(&golden_path, &trace).map_err(|e| e.to_string())?;
        return Ok(format!(
            "blessed {} ({} trace bytes, {:?} wall)",
            golden_path.display(),
            trace.len(),
            started.elapsed()
        ));
    }
    let golden = std::fs::read_to_string(&golden_path).map_err(|_| {
        format!(
            "missing golden {} — run `BLESS=1 make scenarios` and commit it",
            golden_path.display()
        )
    })?;
    if trace != golden {
        return Err(format!(
            "trace differs from {}\n{}\nif the change is intended, re-bless with \
             `BLESS=1 make scenarios` and commit the diff",
            golden_path.display(),
            first_divergence(&trace, &golden)
        ));
    }
    Ok(format!(
        "{} events, {} crashed, {} retransmits, {:?} virtual, {:?} wall",
        first.trace.len(),
        first.crashed,
        first.retransmits,
        first.virtual_elapsed,
        started.elapsed()
    ))
}

fn main() {
    let dir = PathBuf::from(std::env::var("SCENARIO_DIR").unwrap_or_else(|_| "scenarios".into()));
    let filter = std::env::var("SCENARIO_FILTER").unwrap_or_default();
    let bless = std::env::var("BLESS").map(|v| v == "1").unwrap_or(false);
    let golden_dir = dir.join("golden");

    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        panic!("no scenarios found under {}", dir.display());
    }

    let mut failures = Vec::new();
    let mut ran = 0usize;
    for path in &paths {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        if !filter.is_empty() && !name.contains(&filter) {
            continue;
        }
        ran += 1;
        match run_one(path, &golden_dir, bless) {
            Ok(summary) => println!("ok   {name}: {summary}"),
            Err(message) => {
                println!("FAIL {name}");
                eprintln!("--- {name} ---\n{message}\n");
                failures.push(name.to_string());
            }
        }
    }
    if ran == 0 {
        panic!("SCENARIO_FILTER={filter:?} matched no scenario");
    }
    if !failures.is_empty() {
        panic!("{} of {ran} scenarios failed: {}", failures.len(), failures.join(", "));
    }
    println!("all {ran} scenarios OK{}", if bless { " (goldens rewritten)" } else { "" });
}
