//! TCP demo, master half: one OS process that listens for volunteer
//! connections on localhost TCP, streams a checkable workload through
//! whatever fleet shows up, and asserts the output is complete and in input
//! order — including across a volunteer *process* crash mid-run.
//!
//! Run the two halves in separate terminals (or use `make tcp-demo`):
//!
//! ```text
//! PANDO_TCP_ADDR_FILE=/tmp/pando.addr cargo run --release --example tcp_master
//! PANDO_TCP_ADDR_FILE=/tmp/pando.addr cargo run --release --example tcp_volunteer
//! ```
//!
//! Environment knobs:
//!
//! * `PANDO_TCP_ADDR` — listen address (default `127.0.0.1:0`, an
//!   OS-assigned port)
//! * `PANDO_TCP_ADDR_FILE` — if set, the resolved address is written here so
//!   volunteer processes can discover the port
//! * `TCP_TASKS` — number of values to stream (default 2000)
//! * `TCP_MIN_VOLUNTEERS` — wait until this many volunteers handshake
//!   before streaming (default 1), so fast workloads do not finish before
//!   the whole fleet joins
//! * `TCP_BUDGET_SECS` — wall-clock guard; the process exits non-zero if the
//!   run exceeds it (default 120)
//! * `TCP_EXPECT_CRASHED` — if set, assert that exactly this many
//!   sub-streams crashed. The flap demo passes 0: a volunteer that drops its
//!   socket but resumes inside `reconnect_grace` must never reach the crash
//!   re-lend path.
//! * `TCP_MIN_RESUMED` — if set, assert at least this many sessions resumed,
//!   proving the scripted link drops actually exercised the resume path
//!   rather than finishing before the flap landed.

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::transport::tcp::{TcpAcceptor, TcpConfig};
use pando_pull_stream::source::{count, SourceExt};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Liveness windows for the localhost demo: heartbeats five times a second,
/// crash suspicion after three silent seconds. An abrupt process death is
/// detected much faster through the socket EOF; the timeout only backstops
/// wedged-but-open connections.
fn demo_tcp_config() -> TcpConfig {
    TcpConfig {
        heartbeat_interval: Duration::from_millis(200),
        failure_timeout: Duration::from_secs(3),
        ..TcpConfig::default()
    }
}

fn main() {
    let addr = std::env::var("PANDO_TCP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let tasks = env_u64("TCP_TASKS", 2_000);
    let budget = Duration::from_secs(env_u64("TCP_BUDGET_SECS", 120));

    let config = PandoConfig::local_test()
        .with_batch_size(8)
        .with_reactor_threads(4)
        .with_tcp(demo_tcp_config());
    let tcp = config.transport.tcp.clone();
    let pando = Pando::new(config);

    let acceptor = TcpAcceptor::bind(&addr, tcp.clone()).expect("bind TCP listener");
    let local = acceptor.local_addr();
    println!("pando master listening on {local}");
    if let Ok(path) = std::env::var("PANDO_TCP_ADDR_FILE") {
        // Write via a temp file + rename so readers never see a partial line.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, local.to_string()).expect("write address file");
        std::fs::rename(&tmp, &path).expect("publish address file");
        println!("address published to {path}");
    }
    let server = acceptor.serve(&pando);

    let min_volunteers = env_u64("TCP_MIN_VOLUNTEERS", 1) as usize;
    assert!(
        server.wait_for_volunteers(min_volunteers, Duration::from_secs(30)),
        "only {} of {min_volunteers} volunteers joined within 30s",
        server.accepted()
    );
    println!("{} volunteers joined; streaming {tasks} tasks", server.accepted());

    // The workload: f(v) = 3v + 1 over v = 1..=tasks, checkable per index.
    let started = Instant::now();
    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .expect("stream completes");
    let elapsed = started.elapsed();

    assert_eq!(output.len() as u64, tasks, "every value must produce a result");
    for (i, payload) in output.iter().enumerate() {
        let v = (i + 1) as u64;
        let expected = (v * 3 + 1).to_string();
        assert_eq!(
            payload.as_ref(),
            expected.as_bytes(),
            "result {i} out of order or demultiplexed incorrectly"
        );
    }

    // With the readiness poller, the master's transport side must run a
    // fixed number of threads no matter how many volunteers connected:
    // `poller_threads` epoll shards plus the acceptor. The per-connection
    // pump backend would show ~2 threads per volunteer here instead.
    if std::env::var("TCP_THREAD_CENSUS").ok().as_deref() == Some("1") {
        let census = pando_core::transport::tcp::transport_thread_census()
            .expect("/proc thread census available on Linux");
        let ceiling = tcp.poller_threads + 1;
        println!("transport thread census: {census} (ceiling {ceiling})");
        assert!(
            census <= ceiling,
            "transport layer runs {census} threads, more than poller_threads + acceptor \
             ({ceiling}) — per-connection threads are back"
        );
    }

    let resumed = server.resumed();
    let accepted = server.join();
    pando.join_volunteers();
    let stats = pando.lender_stats().expect("the run started");
    println!(
        "{tasks} tasks over {accepted} TCP volunteers in {elapsed:?} ({:.0} tasks/s)",
        tasks as f64 / elapsed.as_secs_f64()
    );
    println!(
        "lender: {} values read, {} results emitted, {} re-lent, {} sub-streams crashed, \
         {resumed} sessions resumed",
        stats.values_read, stats.results_emitted, stats.relends, stats.substreams_crashed
    );
    if let Ok(expected) = std::env::var("TCP_EXPECT_CRASHED") {
        let expected: u64 = expected.parse().expect("TCP_EXPECT_CRASHED must be a number");
        assert_eq!(
            stats.substreams_crashed, expected,
            "crash verdicts diverged from the scripted fault plan \
             (a grace-window resume must not count as a crash)"
        );
    }
    if let Ok(min) = std::env::var("TCP_MIN_RESUMED") {
        let min: usize = min.parse().expect("TCP_MIN_RESUMED must be a number");
        assert!(
            resumed >= min,
            "only {resumed} sessions resumed, expected at least {min} — the scripted link \
             drops never exercised the resume path"
        );
    }
    assert!(
        elapsed <= budget,
        "wall-clock guard exceeded: {elapsed:?} > {budget:?} — the TCP path regressed"
    );
    println!("tcp master OK: output complete and in order");
}
