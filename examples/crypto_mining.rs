//! Synchronous parallel search (paper §4.2): volunteers joining through the
//! public server mine a small chain of blocks coordinated by the monitor's
//! feedback loop. Attempts and outcomes travel through the typed
//! `CryptoCodec` — native `MiningAttempt`/`MiningOutcome` structs at both
//! ends, compact binary payloads on the wire.
//!
//! Run with: `cargo run --release --example crypto_mining`

use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::monitor::MiningMonitor;
use pando_core::volunteer::{join_as_volunteer, serve};
use pando_core::worker::WorkerOptions;
use pando_netsim::signaling::PublicServer;
use pando_workloads::app::CryptoCodec;
use pando_workloads::crypto::{mine, MiningAttempt};
use std::sync::Arc;

fn main() {
    let server = Arc::new(PublicServer::local());
    let pando = Pando::new(PandoConfig::local_test());
    let (url, acceptor) = serve(&pando, &server);
    println!("Serving volunteer code at {url}");

    // Three friends join by opening the URL (WebRTC when NAT allows it).
    let mut workers = Vec::new();
    for i in 0..3 {
        let (handle, kind) = join_as_volunteer(
            &server,
            &url,
            CryptoCodec,
            |attempt: &MiningAttempt| Ok(mine(attempt)),
            WorkerOptions { name: format!("friend-{i}"), ..WorkerOptions::default() },
        )
        .expect("the deployment accepts volunteers");
        println!("friend-{i} joined over {kind}");
        workers.push(handle);
    }

    let blocks: Vec<String> = (1..=3).map(|i| format!("block-{i}")).collect();
    let monitor = MiningMonitor::new(blocks, 14, 2_000);
    let solved = monitor.run(&pando);
    for block in &solved {
        println!(
            "{} solved with nonce {} ({} ranges dispatched)",
            block.block, block.nonce, block.attempts
        );
    }
    server.unhost(&url);
    acceptor.join().expect("acceptor finishes");
    for worker in workers {
        let report = worker.join();
        println!("{} processed {} ranges", report.name, report.processed);
    }
}
