//! A minimal TOML-subset parser and renderer.
//!
//! The build environment has no crate-registry access, so the scenario files
//! under `scenarios/*.toml` are read by this in-tree stand-in instead of the
//! `toml` crate. It implements exactly the subset those files use, and
//! nothing more:
//!
//! * top-level `key = value` pairs;
//! * `[table]` headers and `[[array-of-tables]]` headers (single segment —
//!   dotted paths are rejected);
//! * values: basic strings (`"..."` with `\\`, `\"`, `\n`, `\t` escapes),
//!   integers (optional sign, `_` separators), floats, booleans, and
//!   single-line arrays of those scalars;
//! * `#` comments (full-line or trailing) and blank lines.
//!
//! Everything else — dotted keys, inline tables, multi-line strings, dates —
//! is a parse [`Error`] carrying the offending line number. [`Document`]s
//! preserve declaration order and render back to text ([`Document::render`])
//! such that `parse(render(doc)) == doc`, which is what the scenario
//! round-trip property tests lean on.
//!
//! ```
//! let doc = minitoml::parse("tasks = 8\n[[group]]\nname = \"lan\"\n").unwrap();
//! assert_eq!(doc.root().get_int("tasks"), Some(8));
//! assert_eq!(doc.root().tables("group").len(), 1);
//! let again = minitoml::parse(&doc.render()).unwrap();
//! assert_eq!(doc, again);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    String(String),
    /// A 64-bit signed integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalar values.
    Array(Vec<Value>),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Integer(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                let text = f.to_string();
                out.push_str(&text);
                // Keep the float/integer distinction through a round trip.
                if !text.contains('.') && !text.contains('e') && !text.contains("inf") {
                    out.push_str(".0");
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render(out);
                }
                out.push(']');
            }
        }
    }
}

/// One named entry of a [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `key = value`.
    Value(Value),
    /// `[key]`.
    Table(Table),
    /// `[[key]]`, one [`Table`] per occurrence, in file order.
    ArrayOfTables(Vec<Table>),
}

/// An ordered map of keys to [`Item`]s (declaration order is preserved).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    entries: Vec<(String, Item)>,
}

impl Table {
    /// The item stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, item)| item)
    }

    /// The string stored under `key`, if it is one.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Item::Value(Value::String(s))) => Some(s),
            _ => None,
        }
    }

    /// The integer stored under `key`, if it is one.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Item::Value(Value::Integer(i))) => Some(*i),
            _ => None,
        }
    }

    /// The float stored under `key`; integers widen to floats.
    pub fn get_float(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Item::Value(Value::Float(f))) => Some(*f),
            Some(Item::Value(Value::Integer(i))) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean stored under `key`, if it is one.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Item::Value(Value::Bool(b))) => Some(*b),
            _ => None,
        }
    }

    /// The sub-table stored under `key` (`[key]`), if any.
    pub fn table(&self, key: &str) -> Option<&Table> {
        match self.get(key) {
            Some(Item::Table(t)) => Some(t),
            _ => None,
        }
    }

    /// The array of tables stored under `key` (`[[key]]`); empty if absent.
    pub fn tables(&self, key: &str) -> &[Table] {
        match self.get(key) {
            Some(Item::ArrayOfTables(ts)) => ts,
            _ => &[],
        }
    }

    /// All keys of this table, in declaration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Inserts `key = value`; replaces an existing entry of the same key.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        self.entries.retain(|(k, _)| *k != key);
        self.entries.push((key, Item::Value(value)));
    }

    /// Inserts a `[key]` sub-table.
    pub fn set_table(&mut self, key: impl Into<String>, table: Table) {
        let key = key.into();
        self.entries.retain(|(k, _)| *k != key);
        self.entries.push((key, Item::Table(table)));
    }

    /// Appends one `[[key]]` table.
    pub fn push_table(&mut self, key: impl Into<String>, table: Table) {
        let key = key.into();
        if let Some(Item::ArrayOfTables(ts)) =
            self.entries.iter_mut().find(|(k, _)| *k == key).map(|(_, item)| item)
        {
            ts.push(table);
            return;
        }
        self.entries.push((key, Item::ArrayOfTables(vec![table])));
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed document: the root [`Table`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    root: Table,
}

impl Document {
    /// Wraps a hand-built root table.
    pub fn from_root(root: Table) -> Self {
        Self { root }
    }

    /// The root table.
    pub fn root(&self) -> &Table {
        &self.root
    }

    /// Mutable access to the root table.
    pub fn root_mut(&mut self) -> &mut Table {
        &mut self.root
    }

    /// Renders the document back to TOML text. `parse(render(doc)) == doc`
    /// for every document this module can produce.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // Root scalars first (they would otherwise land inside a table).
        for (key, item) in &self.root.entries {
            if let Item::Value(value) = item {
                out.push_str(key);
                out.push_str(" = ");
                value.render(&mut out);
                out.push('\n');
            }
        }
        for (key, item) in &self.root.entries {
            match item {
                Item::Value(_) => {}
                Item::Table(table) => {
                    out.push('\n');
                    out.push_str(&format!("[{key}]\n"));
                    render_pairs(table, &mut out);
                }
                Item::ArrayOfTables(tables) => {
                    for table in tables {
                        out.push('\n');
                        out.push_str(&format!("[[{key}]]\n"));
                        render_pairs(table, &mut out);
                    }
                }
            }
        }
        out
    }
}

fn render_pairs(table: &Table, out: &mut String) {
    for (key, item) in &table.entries {
        match item {
            Item::Value(value) => {
                out.push_str(key);
                out.push_str(" = ");
                value.render(out);
                out.push('\n');
            }
            // Nested table headers are not part of the subset; a hand-built
            // document with them would not round-trip, so refuse to render
            // silently-wrong output.
            Item::Table(_) | Item::ArrayOfTables(_) => {
                panic!("minitoml renders a flat table layout only (one header level)")
            }
        }
    }
}

/// A parse error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

fn err(line: usize, message: impl Into<String>) -> Error {
    Error { line, message: message.into() }
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Strips a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses TOML-subset text into a [`Document`].
///
/// # Errors
///
/// Returns an [`Error`] with the offending line number for anything outside
/// the subset (see the [module docs](self)) and for duplicate keys.
pub fn parse(text: &str) -> Result<Document, Error> {
    enum Target {
        Root,
        Table(String),
        ArrayEntry(String),
    }
    let mut doc = Document::default();
    let mut target = Target::Root;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?
                .trim();
            if !is_bare_key(name) {
                return Err(err(lineno, format!("invalid table name {name:?} (bare keys only)")));
            }
            match doc.root.get(name) {
                None | Some(Item::ArrayOfTables(_)) => {}
                Some(_) => return Err(err(lineno, format!("key {name:?} already defined"))),
            }
            doc.root.push_table(name, Table::default());
            target = Target::ArrayEntry(name.to_string());
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [header]"))?
                .trim();
            if !is_bare_key(name) {
                return Err(err(lineno, format!("invalid table name {name:?} (bare keys only)")));
            }
            if doc.root.get(name).is_some() {
                return Err(err(lineno, format!("key {name:?} already defined")));
            }
            doc.root.set_table(name, Table::default());
            target = Target::Table(name.to_string());
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
        let key = line[..eq].trim();
        if !is_bare_key(key) {
            return Err(err(lineno, format!("invalid key {key:?} (bare keys only)")));
        }
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        let table = match &target {
            Target::Root => &mut doc.root,
            Target::Table(name) => match doc.root.entries.iter_mut().find(|(k, _)| k == name) {
                Some((_, Item::Table(t))) => t,
                _ => unreachable!("header created the table"),
            },
            Target::ArrayEntry(name) => {
                match doc.root.entries.iter_mut().find(|(k, _)| k == name) {
                    Some((_, Item::ArrayOfTables(ts))) => {
                        ts.last_mut().expect("header pushed an entry")
                    }
                    _ => unreachable!("header created the array"),
                }
            }
        };
        if table.get(key).is_some() {
            return Err(err(lineno, format!("key {key:?} already defined")));
        }
        table.entries.push((key.to_string(), Item::Value(value)));
    }
    Ok(doc)
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, Error> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if text.starts_with('"') {
        let (value, rest) = parse_string(text, lineno)?;
        if !rest.trim().is_empty() {
            return Err(err(lineno, format!("trailing characters after string: {rest:?}")));
        }
        return Ok(Value::String(value));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body =
            body.strip_suffix(']').ok_or_else(|| err(lineno, "unterminated array (one line)"))?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (item_text, remaining) = split_array_item(rest, lineno)?;
            items.push(parse_value(item_text.trim(), lineno)?);
            rest = remaining.trim();
        }
        if items.iter().any(|i| matches!(i, Value::Array(_))) {
            return Err(err(lineno, "nested arrays are outside the subset"));
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let numeric: String = text.chars().filter(|c| *c != '_').collect();
    if let Ok(i) = numeric.parse::<i64>() {
        return Ok(Value::Integer(i));
    }
    if numeric.contains(['.', 'e', 'E']) {
        if let Ok(f) = numeric.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    }
    Err(err(lineno, format!("unsupported value {text:?}")))
}

/// Splits `"..."` off the front of `text`; returns (unescaped, rest).
fn parse_string(text: &str, lineno: usize) -> Result<(String, &str), Error> {
    let mut out = String::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &text[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => {
                    return Err(err(lineno, format!("unsupported escape \\{other}")))
                }
                None => return Err(err(lineno, "unterminated escape")),
            },
            c => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Splits one array item (up to an unquoted comma) off the front of `text`.
fn split_array_item(text: &str, lineno: usize) -> Result<(&str, &str), Error> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => return Ok((&text[..i], &text[i + 1..])),
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return Err(err(lineno, "unterminated string in array"));
    }
    Ok((text, ""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays_of_tables() {
        let doc = parse(
            r#"
# a scenario-shaped document
name = "calm_lan"   # trailing comment
seed = 42
loss = 0.05
negative = -3
big = 1_000_000
flag = true
list = [1, 2, 3]
names = ["a", "b"]

[defaults]
latency_us = 2000

[[group]]
name = "phones"
count = 4

[[group]]
name = "laptops"
count = 2
"#,
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(root.get_str("name"), Some("calm_lan"));
        assert_eq!(root.get_int("seed"), Some(42));
        assert_eq!(root.get_float("loss"), Some(0.05));
        assert_eq!(root.get_int("negative"), Some(-3));
        assert_eq!(root.get_int("big"), Some(1_000_000));
        assert_eq!(root.get_bool("flag"), Some(true));
        assert_eq!(
            root.get("list"),
            Some(&Item::Value(Value::Array(vec![
                Value::Integer(1),
                Value::Integer(2),
                Value::Integer(3)
            ])))
        );
        assert_eq!(root.table("defaults").unwrap().get_int("latency_us"), Some(2000));
        let groups = root.tables("group");
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].get_str("name"), Some("phones"));
        assert_eq!(groups[1].get_int("count"), Some(2));
    }

    #[test]
    fn integers_widen_to_floats_but_not_the_reverse() {
        let doc = parse("a = 3\nb = 3.5\n").unwrap();
        assert_eq!(doc.root().get_float("a"), Some(3.0));
        assert_eq!(doc.root().get_int("b"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut root = Table::default();
        root.set("s", Value::String("a\"b\\c\nd\te".into()));
        let doc = Document::from_root(root);
        let again = parse(&doc.render()).unwrap();
        assert_eq!(doc, again);
        assert_eq!(again.root().get_str("s"), Some("a\"b\\c\nd\te"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("s = \"a # b\"\n").unwrap();
        assert_eq!(doc.root().get_str("s"), Some("a # b"));
    }

    #[test]
    fn render_parse_round_trips() {
        let mut group = Table::default();
        group.set("name", Value::String("wan".into()));
        group.set("count", Value::Integer(7));
        group.set("loss", Value::Float(0.25));
        let mut expect = Table::default();
        expect.set("crash_relends", Value::Integer(0));
        let mut root = Table::default();
        root.set("name", Value::String("x".into()));
        root.set("whole", Value::Float(2.0)); // must stay a float
        root.push_table("group", group.clone());
        root.push_table("group", group);
        root.set_table("expect", expect);
        let doc = Document::from_root(root);
        let text = doc.render();
        let again = parse(&text).unwrap();
        assert_eq!(doc, again, "round trip through:\n{text}");
        assert_eq!(again.root().get_float("whole"), Some(2.0));
        assert_eq!(again.root().get_int("whole"), None, "2.0 renders as a float");
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("a = 1\nb =\n").unwrap_err().line, 2);
        assert_eq!(parse("[t\n").unwrap_err().line, 1);
        assert_eq!(parse("a = 1\na = 2\n").unwrap_err().line, 2);
        assert_eq!(parse("x = 2020-01-01\n").unwrap_err().line, 1);
        assert_eq!(parse("[a.b]\n").unwrap_err().line, 1, "dotted headers are rejected");
        assert_eq!(parse("k = [[1]]\n").unwrap_err().line, 1, "nested arrays are rejected");
        assert_eq!(parse("k = \"open\n").unwrap_err().line, 1);
        assert_eq!(parse("just text\n").unwrap_err().line, 1);
    }

    #[test]
    fn duplicate_headers_are_rejected_but_array_headers_repeat() {
        assert!(parse("[a]\n[a]\n").is_err());
        assert!(parse("a = 1\n[a]\n").is_err());
        assert!(parse("[[a]]\n[[a]]\n").is_ok());
        assert!(parse("[a]\n[[a]]\n").is_err());
    }
}
