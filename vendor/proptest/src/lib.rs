//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`, integer-range and [`strategy::Just`] strategies, weighted
//! unions via [`prop_oneof!`], vector generation via [`collection::vec`],
//! [`test_runner::ProptestConfig`], and the [`proptest!`] macro that expands
//! each property into a `#[test]` running a configurable number of seeded
//! random cases.
//!
//! The big feature intentionally left out is shrinking: a failing case is
//! reported with its case index (the RNG is seeded deterministically per
//! case, so every failure replays exactly), not minimised first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Execution configuration for [`proptest!`](crate::proptest) blocks.

    /// How a `proptest!` block runs its properties.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod collection {
    //! Strategies generating collections.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `length` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.length.is_empty() {
                self.length.start
            } else {
                rng.gen_range(self.length.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The imports a property-test file needs.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs the body of one generated property case. Factored out of the
/// [`proptest!`] expansion so the macro stays small.
pub fn run_cases(cases: u32, mut case: impl FnMut(&mut strategy::TestRng, u32)) {
    for index in 0..cases {
        // Golden-ratio stride decorrelates consecutive case seeds.
        let mut rng = strategy::TestRng::from_seed(
            (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xb5ad_4ece_da1c_e2a9,
        );
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng, index);
        }));
        if let Err(panic) = outcome {
            // The RNG is seeded from the index, so naming the case makes the
            // failure replayable even without shrinking.
            eprintln!("proptest stand-in: property failed on case {index} of {cases}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over randomly generated arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config); $($rest)*);
    };
    (@expand ($config:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_cases(config.cases, |rng, _case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => a, 1 => b]` draws from `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strategy) as $crate::strategy::BoxedStrategy<_>)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let strategy = (5u64..10).prop_map(|v| v * 2);
        crate::run_cases(100, |rng, _| {
            let v = strategy.generate(rng);
            assert!((10..20).contains(&v) && v % 2 == 0, "got {v}");
        });
    }

    #[test]
    fn union_respects_weights_roughly() {
        let strategy = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut hits = 0u32;
        crate::run_cases(1000, |rng, _| {
            if strategy.generate(rng) {
                hits += 1;
            }
        });
        assert!((800..1000).contains(&hits), "got {hits}");
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let strategy = crate::collection::vec(0usize..3, 2..5);
        crate::run_cases(100, |rng, _| {
            let v = strategy.generate(rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro expansion itself: generated args are visible in the body.
        #[test]
        fn macro_generates_args(x in 0u64..50, flags in crate::collection::vec(0usize..2, 0..4)) {
            prop_assert!(x < 50);
            prop_assert_eq!(flags.iter().filter(|&&f| f > 1).count(), 0);
        }
    }
}
