//! The [`Strategy`] trait and the primitive strategies.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// The deterministic RNG driving value generation, seeded per case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, map }
    }
}

/// A strategy behind a vtable, so strategies of different shapes can share a
/// container (as in [`prop_oneof!`](crate::prop_oneof)).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Weighted choice between boxed strategies, built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Creates a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or every weight is zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = variants.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one positive weight");
        Self { variants, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.variants {
            if roll < *weight {
                return strategy.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll below total weight always selects a variant")
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
