//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! Implements the `Mutex` / `MutexGuard` / `Condvar` subset the workspace
//! uses on top of `std::sync`, with `parking_lot`'s ergonomics: `lock()`
//! returns the guard directly (no poisoning — a panic while holding the lock
//! simply passes the data through to the next owner), and `Condvar::wait`
//! borrows the guard mutably instead of consuming it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex` it does not
/// expose lock poisoning: a panicking holder does not make the data
/// inaccessible.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            mutex: &self.inner,
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { mutex: &self.inner, guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(poisoned)) => {
                Some(MutexGuard { mutex: &self.inner, guard: Some(poisoned.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value; no locking is
    /// needed because the borrow is exclusive.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`]. The `Option` indirection lets
/// [`Condvar::wait`] hand the underlying std guard back to `std::sync` while
/// keeping this wrapper alive; outside of a wait it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a sync::Mutex<T>,
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> MutexGuard<'_, T> {
    /// Temporarily unlocks the mutex while `body` runs, reacquiring the lock
    /// before returning — `parking_lot`'s escape hatch for calling blocking
    /// code without holding the lock.
    pub fn unlocked<U>(guard: &mut Self, body: impl FnOnce() -> U) -> U {
        drop(guard.guard.take());
        let result = body();
        guard.guard = Some(guard.mutex.lock().unwrap_or_else(PoisonError::into_inner));
        result
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present outside of a condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present outside of a condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Atomically releases the lock and waits for a notification, reacquiring
    /// the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Like [`Condvar::wait`], but gives up once `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            // The deadline already passed: report the timeout without paying
            // a park/unpark round trip. Pollers that drain with a zero
            // timeout (e.g. `next_timeout(Duration::ZERO)` once per
            // scheduler tick) hit this path millions of times.
            return WaitTimeoutResult(true);
        }
        let std_guard = guard.guard.take().expect("guard present before wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.guard = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let (lock, cond) = &*shared;
                let mut ready = lock.lock();
                while !*ready {
                    cond.wait(&mut ready);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        *shared.0.lock() = true;
        shared.1.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut guard = pair.0.lock();
        let result = pair.1.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
        // The guard is usable again after the wait.
        let _: &() = &guard;
    }
}
