//! No-op derive macros backing the in-tree `serde` stand-in.
//!
//! The workspace only *annotates* types with `serde::Serialize` /
//! `serde::Deserialize` — nothing serializes a value yet — so the derives
//! expand to nothing. When real serialization lands (and registry access
//! exists), replacing the stand-in with upstream serde requires no source
//! changes at the annotation sites.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` annotation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` annotation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
