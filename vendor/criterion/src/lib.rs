//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark is warmed up
//! once and then timed over a fixed number of sample iterations; the mean
//! time per iteration (and derived throughput, when declared) is printed in
//! a `name ... time: X` line per benchmark. That keeps `cargo bench` useful
//! for coarse comparisons while compiling instantly and running offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Declared throughput of one benchmark, used to derive a rate from the
/// measured time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark body processes this many logical elements.
    Elements(u64),
    /// The benchmark body processes this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus the
/// parameter value it was instantiated with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter shown as
    /// `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark identifier by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Converts into the canonical identifier.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of sample iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass populates caches and lazy state.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark is timed over.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Declares the throughput of the benchmarks registered after this call.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher { samples: self.sample_size as u64, elapsed: Duration::ZERO };
        routine(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher { samples: self.sample_size as u64, elapsed: Duration::ZERO };
        routine(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.samples as f64;
        let mut line = format!("{}/{:<40} time: {}", self.name, id, format_seconds(per_iter));
        if let Some(throughput) = self.throughput {
            let (amount, unit) = match throughput {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if per_iter > 0.0 {
                line.push_str(&format!("   thrpt: {:.3e} {unit}", amount / per_iter));
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group. Present for API compatibility; reporting is per-line.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }

    /// Number of benchmarks executed so far, used by the harness self-tests.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function runnable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a bench target from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_counts() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("trivial", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert_eq!(criterion.benchmarks_run(), 2);
        // warm-up + samples for the first closure
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }

    #[test]
    fn seconds_formatting_picks_sensible_units() {
        assert_eq!(format_seconds(2.0), "2.000 s");
        assert_eq!(format_seconds(0.002), "2.000 ms");
        assert_eq!(format_seconds(0.000_002), "2.000 µs");
        assert_eq!(format_seconds(0.000_000_002), "2.0 ns");
    }
}
