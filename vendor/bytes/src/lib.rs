//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits with
//! the subset of operations the workspace uses. [`Bytes`] is a reference
//! into a shared, immutable allocation: cloning and [`Bytes::slice`] are
//! O(1) and never copy the underlying bytes, which is what makes the batched
//! wire protocol zero-copy — decoding a multi-record frame hands out
//! sub-slices of the single receive buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
///
/// Internally a `(Arc<[u8]>, offset, len)` triple: clones and slices share
/// the same allocation.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data), offset: 0, len: data.len() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of a sub-range of the buffer **without copying**: the
    /// returned `Bytes` shares the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} beyond end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds of {}", self.len);
        Bytes { data: self.data.clone(), offset: self.offset + start, len: end - start }
    }

    /// Returns `true` if `self` and `other` are views into the same
    /// allocation (they were produced by cloning or slicing one buffer).
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let len = data.len();
        Self { data: Arc::from(data), offset: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(text: String) -> Self {
        Bytes::from(text.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(text: &str) -> Self {
        Bytes::copy_from_slice(text.as_bytes())
    }
}

/// Read-side operations of a byte buffer.
pub trait Buf {
    /// Number of bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Discards the next `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);
}

/// Write-side operations of a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, value: u32);

    /// Appends a `u64` in big-endian byte order.
    fn put_u64(&mut self, value: u64);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, data: &[u8]);
}

/// A growable byte buffer that supports consuming bytes from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer that can hold `capacity` bytes without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice of bytes.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `at` bytes are buffered.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to({at}) out of bounds of {}", self.data.len());
        let rest = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.data.len(), "advance({count}) out of bounds of {}", self.data.len());
        self.data.drain(..count);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32(0x0102_0304);
        buf.put_slice(b"xy");
        assert_eq!(&buf[..], &[7, 1, 2, 3, 4, b'x', b'y']);
    }

    #[test]
    fn put_u64_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u64(0x0102_0304_0506_0708);
        assert_eq!(&buf[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn advance_and_split_consume_the_front() {
        let mut buf = BytesMut::from(&b"hello world"[..]);
        buf.advance(6);
        let word = buf.split_to(5);
        assert_eq!(&word[..], b"world");
        assert!(buf.is_empty());
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.to_vec(), b"abc".to_vec());
        assert_eq!(frozen.clone(), frozen);
    }

    #[test]
    fn slice_shares_the_allocation() {
        let bytes = Bytes::from(b"0123456789".to_vec());
        let mid = bytes.slice(3..7);
        assert_eq!(&mid[..], b"3456");
        assert!(mid.shares_allocation_with(&bytes));
        let sub = mid.slice(1..=2);
        assert_eq!(&sub[..], b"45");
        assert!(sub.shares_allocation_with(&bytes));
        assert_eq!(bytes.slice(..), bytes);
        assert!(bytes.slice(5..5).is_empty());
    }

    #[test]
    fn equality_and_hash_compare_contents_not_offsets() {
        use std::collections::HashSet;
        let a = Bytes::from(b"xxabyy".to_vec()).slice(2..4);
        let b = Bytes::from(b"ab".to_vec());
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let bytes = Bytes::from(b"abc".to_vec());
        let _ = bytes.slice(1..5);
    }

    #[test]
    fn string_conversions() {
        let bytes = Bytes::from("héllo");
        assert_eq!(std::str::from_utf8(&bytes).unwrap(), "héllo");
        let owned = Bytes::from(String::from("x"));
        assert_eq!(&owned[..], b"x");
    }
}
