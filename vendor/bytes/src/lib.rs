//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`] / [`BufMut`] traits with
//! the subset of operations the workspace's frame codec uses. The upstream
//! crate's zero-copy slicing is replaced by plain `Vec<u8>` storage — frames
//! here are small and the codec is not on a measured hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Arc::from([] as [u8; 0]) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

/// Read-side operations of a byte buffer.
pub trait Buf {
    /// Number of bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Discards the next `count` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);
}

/// Write-side operations of a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, value: u32);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, data: &[u8]);
}

/// A growable byte buffer that supports consuming bytes from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Creates an empty buffer that can hold `capacity` bytes without
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice of bytes.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `at` bytes are buffered.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to({at}) out of bounds of {}", self.data.len());
        let rest = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.data.len(), "advance({count}) out of bounds of {}", self.data.len());
        self.data.drain(..count);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, data: &[u8]) {
        self.data.extend_from_slice(data);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        Self { data: data.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32(0x0102_0304);
        buf.put_slice(b"xy");
        assert_eq!(&buf[..], &[7, 1, 2, 3, 4, b'x', b'y']);
    }

    #[test]
    fn advance_and_split_consume_the_front() {
        let mut buf = BytesMut::from(&b"hello world"[..]);
        buf.advance(6);
        let word = buf.split_to(5);
        assert_eq!(&word[..], b"world");
        assert!(buf.is_empty());
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.to_vec(), b"abc".to_vec());
        assert_eq!(frozen.clone(), frozen);
    }
}
