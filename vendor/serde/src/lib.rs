//! Minimal in-tree stand-in for the `serde` crate.
//!
//! Re-exports the no-op [`Serialize`] / [`Deserialize`] derive macros so the
//! workspace's `#[derive(serde::Serialize, serde::Deserialize)]` annotations
//! compile without a registry. The traits of the same names exist so the
//! annotations keep their upstream meaning once real serde replaces this
//! stand-in; no code implements or bounds on them yet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; the no-op derive does not
/// implement it.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`; the no-op derive does not
/// implement it.
pub trait Deserialize<'de>: Sized {}
