//! Minimal in-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! implements exactly the API surface the workspace uses: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_bool` and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded by SplitMix64 — statistically strong
//! enough for simulation jitter and randomized testing, and deterministic for
//! a given seed. It is **not** cryptographically secure, exactly like the
//! upstream `StdRng` contract does not promise reproducibility across
//! versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator producing 64 uniformly distributed bits per
/// step. Object-safe subset mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits, the
/// stand-in for sampling from the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // The full domain of a 128-bit-wide inclusive range.
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods available on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn standard_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
