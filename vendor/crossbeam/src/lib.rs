//! Minimal in-tree stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the subset the workspace uses. The
//! important behavioural properties are preserved from crossbeam: both
//! [`channel::Sender`] and [`channel::Receiver`] are `Clone + Send + Sync`,
//! clones share one queue (each message is delivered to exactly one
//! receiver), and a receiver blocked in `recv` never starves a concurrent
//! `recv_timeout` on another clone — waiting happens on a condition
//! variable, not while holding the queue lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone; gives
    /// the message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// The channel is empty and every sender disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout.
        Timeout,
        /// The channel is empty and every sender disconnected.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must observe the disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver disconnected.
        ///
        /// # Errors
        ///
        /// Returns the value inside [`SendError`] when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    /// The receiving half of a channel. Clonable: clones share one queue, so
    /// each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.available.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Returns a message if one is already queued.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if the queue is momentarily empty,
        /// [`TryRecvError::Disconnected`] once every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] once every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _timed_out) = self
                    .shared
                    .available
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        }

        /// An iterator draining the channel until it disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// An iterator yielding only the messages already queued, without
        /// blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Creates a channel with an unbounded queue.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            available: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_round_trip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(
                (0..10).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
                (0..10).collect::<Vec<_>>()
            );
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            assert_eq!((a, b), (1, 2));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_unblocks_when_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            let waiter = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(20));
            drop(tx);
            assert_eq!(waiter.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn timeout_honored_while_another_clone_blocks_in_recv() {
            // Regression for the earlier mpsc-backed design, which parked in
            // recv() while holding the queue lock and starved other clones.
            let (tx, rx) = unbounded::<u8>();
            let rx_blocking = rx.clone();
            let blocker = thread::spawn(move || rx_blocking.recv());
            thread::sleep(Duration::from_millis(20));
            let start = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
            assert!(start.elapsed() < Duration::from_secs(2), "timeout must not be starved");
            tx.send(9).unwrap();
            assert_eq!(blocker.join().unwrap(), Ok(9));
        }

        #[test]
        fn sender_clone_keeps_channel_alive() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(3).unwrap();
            assert_eq!(rx.recv(), Ok(3));
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
