//! The published measurements of paper Table 2.
//!
//! Columns are the six measured applications; one row per device, grouped by
//! deployment scenario. Values are average throughput in the unit of each
//! column (BigNums/s, Hashes/s, Tests/s, Frames/s, Images/s, Steps/s) over a
//! five-minute window. The image-processing column is absent for the WAN
//! deployment, as in the paper (the http file server was not reachable from
//! PlanetLab).

use crate::profiles::Scenario;
use pando_workloads::AppKind;

/// One row of Table 2: the published throughput of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperEntry {
    /// Device name as printed in the paper.
    pub device: &'static str,
    /// Deployment scenario the device belongs to.
    pub scenario: Scenario,
    /// Number of cores used on that device.
    pub cores: u32,
    /// Throughput in BigNums/s (Collatz).
    pub collatz: f64,
    /// Throughput in Hashes/s (crypto-currency mining).
    pub crypto: f64,
    /// Throughput in Tests/s (StreamLender testing).
    pub sl_test: f64,
    /// Throughput in Frames/s (raytracing).
    pub raytrace: f64,
    /// Throughput in Images/s (image processing); `None` where the paper
    /// reports no measurement.
    pub image_proc: Option<f64>,
    /// Throughput in Steps/s (ML agent training).
    pub ml_agent: f64,
}

impl PaperEntry {
    /// The published throughput of this device for `app`, if measured.
    pub fn throughput(&self, app: AppKind) -> Option<f64> {
        match app {
            AppKind::Collatz => Some(self.collatz),
            AppKind::CryptoMining => Some(self.crypto),
            AppKind::StreamLenderTesting => Some(self.sl_test),
            AppKind::Raytrace => Some(self.raytrace),
            AppKind::ImageProcessing => self.image_proc,
            AppKind::MlAgentTraining => Some(self.ml_agent),
            AppKind::Arxiv => None,
        }
    }
}

// One parameter per Table 2 column: this mirrors the paper's row layout.
#[allow(clippy::too_many_arguments)]
const fn entry(
    device: &'static str,
    scenario: Scenario,
    cores: u32,
    collatz: f64,
    crypto: f64,
    sl_test: f64,
    raytrace: f64,
    image_proc: Option<f64>,
    ml_agent: f64,
) -> PaperEntry {
    PaperEntry { device, scenario, cores, collatz, crypto, sl_test, raytrace, image_proc, ml_agent }
}

/// The full published table: every device row of Table 2.
pub fn paper_reference() -> Vec<PaperEntry> {
    use Scenario::{Lan, Vpn, Wan};
    vec![
        // LAN: personal devices (paper §5.2). Core counts in parentheses in
        // the paper; the MacBook Air also runs the master on one core.
        entry("Novena", Lan, 2, 121.85, 16_185.0, 142.84, 0.66, Some(0.04), 51.74),
        entry("Asus Laptop", Lan, 3, 490.45, 59_895.0, 622.64, 3.63, Some(0.10), 112.59),
        entry("MBAir 2011", Lan, 1, 215.58, 58_693.0, 526.82, 2.94, Some(0.06), 68.81),
        entry("iPhone SE", Lan, 1, 336.18, 42_720.0, 509.64, 2.90, Some(0.33), 60.24),
        entry("MBPro 2016", Lan, 2, 1_045.58, 201_178.0, 1_801.76, 8.81, Some(0.19), 191.51),
        // VPN: Grid5000 nodes, one core each (paper §5.3).
        entry("dahu.grenoble", Vpn, 1, 642.04, 230_061.0, 1_341.77, 3.12, Some(0.44), 219.18),
        entry("chetemy.lille", Vpn, 1, 524.71, 206_195.0, 975.58, 2.04, Some(0.37), 167.03),
        entry(
            "petitprince.luxembourg",
            Vpn,
            1,
            261.36,
            136_189.0,
            631.83,
            1.47,
            Some(0.27),
            124.00,
        ),
        entry("nova.lyon", Vpn, 1, 521.35, 199_901.0, 982.16, 1.95, Some(0.34), 164.57),
        entry("grisou.nancy", Vpn, 1, 541.53, 216_932.0, 1_026.26, 2.17, Some(0.36), 176.12),
        entry("ecotype.nantes", Vpn, 1, 479.07, 187_668.0, 939.07, 1.86, Some(0.33), 162.25),
        entry("paravance.rennes", Vpn, 1, 535.72, 215_096.0, 1_021.99, 2.19, Some(0.35), 176.41),
        entry("uvb.sophia", Vpn, 1, 317.73, 142_061.0, 641.26, 1.57, Some(0.28), 133.88),
        // WAN: PlanetLab EU nodes, one core each (paper §5.4).
        entry("cse-yellow.cse.chalmers.se", Wan, 1, 470.49, 162_173.0, 996.89, 0.74, None, 148.85),
        entry("mars.planetlab.haw-hamburg.de", Wan, 1, 225.38, 93_189.0, 428.30, 0.64, None, 78.66),
        entry("ple42.planet-lab.eu", Wan, 1, 210.15, 82_297.0, 444.35, 0.54, None, 81.17),
        entry("onelab2.pl.sophia.inria.fr", Wan, 1, 201.43, 95_609.0, 459.66, 0.68, None, 83.57),
        entry("planet2.elte.hu", Wan, 1, 216.42, 85_927.0, 505.04, 0.73, None, 99.75),
        entry("planet4.cs.huji.ac.il", Wan, 1, 298.42, 112_363.0, 651.54, 0.77, None, 119.62),
        entry("ple1.cesnet.cz", Wan, 1, 223.22, 85_927.0, 499.27, 0.65, None, 102.76),
    ]
}

/// The published per-scenario totals of Table 2 (the header rows).
pub fn paper_total(scenario: Scenario, app: AppKind) -> Option<f64> {
    let value = match (scenario, app) {
        (Scenario::Lan, AppKind::Collatz) => 2_209.65,
        (Scenario::Lan, AppKind::CryptoMining) => 378_672.0,
        (Scenario::Lan, AppKind::StreamLenderTesting) => 3_603.70,
        (Scenario::Lan, AppKind::Raytrace) => 18.94,
        (Scenario::Lan, AppKind::ImageProcessing) => 0.71,
        (Scenario::Lan, AppKind::MlAgentTraining) => 484.90,
        (Scenario::Vpn, AppKind::Collatz) => 3_823.51,
        (Scenario::Vpn, AppKind::CryptoMining) => 1_534_102.0,
        (Scenario::Vpn, AppKind::StreamLenderTesting) => 7_559.93,
        (Scenario::Vpn, AppKind::Raytrace) => 16.38,
        (Scenario::Vpn, AppKind::ImageProcessing) => 2.73,
        (Scenario::Vpn, AppKind::MlAgentTraining) => 1_323.44,
        (Scenario::Wan, AppKind::Collatz) => 1_845.52,
        (Scenario::Wan, AppKind::CryptoMining) => 717_485.0,
        (Scenario::Wan, AppKind::StreamLenderTesting) => 3_985.04,
        (Scenario::Wan, AppKind::Raytrace) => 4.75,
        (Scenario::Wan, AppKind::ImageProcessing) => return None,
        (Scenario::Wan, AppKind::MlAgentTraining) => 714.38,
        (_, AppKind::Arxiv) => return None,
    };
    Some(value)
}

/// Devices of one scenario, in the row order of the paper.
pub fn scenario_entries(scenario: Scenario) -> Vec<PaperEntry> {
    paper_reference().into_iter().filter(|e| e.scenario == scenario).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_the_paper() {
        assert_eq!(scenario_entries(Scenario::Lan).len(), 5);
        assert_eq!(scenario_entries(Scenario::Vpn).len(), 8);
        assert_eq!(scenario_entries(Scenario::Wan).len(), 7);
        assert_eq!(paper_reference().len(), 20);
    }

    #[test]
    fn per_device_rows_sum_to_published_totals() {
        for scenario in [Scenario::Lan, Scenario::Vpn, Scenario::Wan] {
            for app in AppKind::measured() {
                let Some(total) = paper_total(scenario, app) else { continue };
                let sum: f64 =
                    scenario_entries(scenario).iter().filter_map(|e| e.throughput(app)).sum();
                // Rows are rounded to two decimals in the paper, so allow
                // either a small relative or a small absolute discrepancy.
                let close = (sum - total).abs() / total < 0.005 || (sum - total).abs() < 0.02;
                assert!(close, "{scenario:?}/{app:?}: rows sum to {sum}, paper total is {total}");
            }
        }
    }

    #[test]
    fn wan_has_no_image_processing_measurements() {
        assert!(scenario_entries(Scenario::Wan).iter().all(|e| e.image_proc.is_none()));
        assert_eq!(paper_total(Scenario::Wan, AppKind::ImageProcessing), None);
    }

    #[test]
    fn fastest_lan_device_is_the_mbpro() {
        let lan = scenario_entries(Scenario::Lan);
        let fastest = lan.iter().max_by(|a, b| a.collatz.partial_cmp(&b.collatz).unwrap()).unwrap();
        assert_eq!(fastest.device, "MBPro 2016");
    }

    #[test]
    fn iphone_outperforms_uvb_sophia_on_collatz() {
        // One of the §5.5 observations: a 2016 phone core beats an older
        // server node on Collatz.
        let iphone = paper_reference().into_iter().find(|e| e.device == "iPhone SE").unwrap();
        let uvb = paper_reference().into_iter().find(|e| e.device == "uvb.sophia").unwrap();
        assert!(iphone.collatz > uvb.collatz);
    }

    #[test]
    fn arxiv_is_never_measured() {
        for entry in paper_reference() {
            assert_eq!(entry.throughput(AppKind::Arxiv), None);
        }
    }
}
