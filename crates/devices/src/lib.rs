//! Device and network profiles calibrated to the paper's evaluation.
//!
//! The paper measures per-device throughput for six compute-bound
//! applications on three deployments: personal devices on a LAN (§5.2), one
//! node of each Grid5000 cluster over a VPN (§5.3), and seven PlanetLab EU
//! nodes over a WAN (§5.4). This crate records those published measurements
//! ([`table2`]) and turns them into *device profiles* ([`profiles`]) —
//! per-application service rates plus network characteristics — that the
//! deployment simulator uses to regenerate the shape of Table 2 and of the
//! §5.5 analysis claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod profiles;
pub mod table2;

pub use profiles::{DeviceProfile, Scenario, ScenarioSetup};
pub use table2::{paper_reference, PaperEntry};
