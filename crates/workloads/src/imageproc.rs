//! Satellite-image blurring (paper §4.1 and §4.3).
//!
//! The paper blurs tiles of the open Landsat-8 dataset. The dataset itself is
//! not redistributable here, so tiles are generated synthetically: a seeded
//! fractal-noise generator produces grayscale tiles whose byte size matches
//! the ~168 kB images mentioned in the paper, and the processing function
//! applies a separable box blur of configurable radius — the same memory and
//! CPU access pattern as the original filter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grayscale image tile.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ImageTile {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel intensities.
    pub pixels: Vec<u8>,
}

impl ImageTile {
    /// Creates a tile from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn new(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Self { width, height, pixels }
    }

    /// Size of the tile in bytes (what travels on the network).
    pub fn byte_size(&self) -> usize {
        self.pixels.len()
    }

    /// Intensity at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }
}

/// Generates a deterministic pseudo-Landsat tile: layered value noise with
/// per-seed variation, so different tile indices look different but the same
/// index always produces the same bytes.
pub fn synthetic_tile(seed: u64, width: usize, height: usize) -> ImageTile {
    let mut rng = StdRng::seed_from_u64(seed);
    // Coarse random lattice, bilinearly interpolated, plus fine-grained noise.
    let lattice = 16usize;
    let coarse: Vec<f64> = (0..(lattice + 1) * (lattice + 1)).map(|_| rng.gen::<f64>()).collect();
    let mut pixels = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let fx = x as f64 / width as f64 * lattice as f64;
            let fy = y as f64 / height as f64 * lattice as f64;
            let (ix, iy) = (fx as usize, fy as usize);
            let (tx, ty) = (fx - ix as f64, fy - iy as f64);
            let idx = |gx: usize, gy: usize| coarse[gy * (lattice + 1) + gx];
            let top = idx(ix, iy) * (1.0 - tx) + idx(ix + 1, iy) * tx;
            let bottom = idx(ix, iy + 1) * (1.0 - tx) + idx(ix + 1, iy + 1) * tx;
            let value = top * (1.0 - ty) + bottom * ty;
            let speckle = ((x * 31 + y * 17 + seed as usize) % 13) as f64 / 13.0 * 0.15;
            pixels.push(((value * 0.85 + speckle).clamp(0.0, 1.0) * 255.0) as u8);
        }
    }
    ImageTile { width, height, pixels }
}

/// A tile with the default Landsat-like dimensions used in the evaluation:
/// 410×410 pixels ≈ 168 kB, the size quoted in paper §5.5.
pub fn landsat_like_tile(seed: u64) -> ImageTile {
    synthetic_tile(seed, 410, 410)
}

/// Applies a separable box blur of the given radius.
///
/// # Panics
///
/// Panics if `radius` is zero (that would be the identity and is almost
/// always a configuration mistake).
pub fn box_blur(tile: &ImageTile, radius: usize) -> ImageTile {
    assert!(radius > 0, "blur radius must be at least 1");
    let width = tile.width;
    let height = tile.height;
    let mut horizontal = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let lo = x.saturating_sub(radius);
            let hi = (x + radius).min(width - 1);
            let sum: u32 = (lo..=hi).map(|xx| tile.pixels[y * width + xx] as u32).sum();
            horizontal[y * width + x] = (sum / (hi - lo + 1) as u32) as u8;
        }
    }
    let mut vertical = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let lo = y.saturating_sub(radius);
            let hi = (y + radius).min(height - 1);
            let sum: u32 = (lo..=hi).map(|yy| horizontal[yy * width + x] as u32).sum();
            vertical[y * width + x] = (sum / (hi - lo + 1) as u32) as u8;
        }
    }
    ImageTile { width, height, pixels: vertical }
}

/// Root-mean-square difference between two tiles of identical dimensions,
/// used by tests and by the stubborn-processing example to check downloads.
///
/// # Panics
///
/// Panics if the tiles have different dimensions.
pub fn rms_difference(a: &ImageTile, b: &ImageTile) -> f64 {
    assert_eq!((a.width, a.height), (b.width, b.height), "tiles must have identical dimensions");
    let sum: f64 = a
        .pixels
        .iter()
        .zip(&b.pixels)
        .map(|(&pa, &pb)| {
            let d = pa as f64 - pb as f64;
            d * d
        })
        .sum();
    (sum / a.pixels.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_tiles_are_deterministic_per_seed() {
        assert_eq!(synthetic_tile(7, 64, 64), synthetic_tile(7, 64, 64));
        assert_ne!(synthetic_tile(7, 64, 64), synthetic_tile(8, 64, 64));
    }

    #[test]
    fn landsat_like_tile_matches_paper_size() {
        let tile = landsat_like_tile(0);
        let kb = tile.byte_size() as f64 / 1000.0;
        assert!((160.0..=175.0).contains(&kb), "tile is ~168 kB, got {kb} kB");
    }

    #[test]
    #[should_panic(expected = "pixel buffer size mismatch")]
    fn mismatched_buffer_is_rejected() {
        let _ = ImageTile::new(10, 10, vec![0; 99]);
    }

    #[test]
    fn blur_preserves_dimensions_and_smooths() {
        let tile = synthetic_tile(3, 96, 96);
        let blurred = box_blur(&tile, 3);
        assert_eq!((blurred.width, blurred.height), (96, 96));
        // Smoothing reduces local variation: compare total variation between
        // horizontally adjacent pixels.
        let variation = |t: &ImageTile| -> u64 {
            let mut total = 0u64;
            for y in 0..t.height {
                for x in 1..t.width {
                    total += (t.get(x, y) as i64 - t.get(x - 1, y) as i64).unsigned_abs();
                }
            }
            total
        };
        assert!(variation(&blurred) < variation(&tile));
    }

    #[test]
    fn blur_of_uniform_image_is_identity() {
        let tile = ImageTile::new(16, 16, vec![120; 256]);
        assert_eq!(box_blur(&tile, 2).pixels, tile.pixels);
    }

    #[test]
    #[should_panic(expected = "blur radius")]
    fn zero_radius_is_rejected() {
        let _ = box_blur(&synthetic_tile(0, 8, 8), 0);
    }

    #[test]
    fn rms_difference_detects_changes() {
        let tile = synthetic_tile(1, 32, 32);
        assert_eq!(rms_difference(&tile, &tile), 0.0);
        let blurred = box_blur(&tile, 4);
        assert!(rms_difference(&tile, &blurred) > 0.0);
    }

    #[test]
    #[should_panic(expected = "identical dimensions")]
    fn rms_difference_requires_same_dimensions() {
        let _ = rms_difference(&synthetic_tile(0, 8, 8), &synthetic_tile(0, 9, 9));
    }
}
