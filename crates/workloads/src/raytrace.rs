//! Whitted-style ray tracing of animation frames (paper §2.1 and §4.1).
//!
//! The usage example of the paper renders a rotation animation around a 3D
//! scene: each input is a camera angle, each output is the pixel buffer of
//! one frame, and the frames are reassembled in order downstream. This module
//! implements a small recursive ray tracer (spheres, a ground plane, a point
//! light, hard shadows and specular reflections) entirely from scratch.

/// A three-component vector used for points, directions and colours.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;

    fn add(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;

    fn sub(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }
}

/// Component-wise multiplication (used for colours).
impl std::ops::Mul for Vec3 {
    type Output = Vec3;

    fn mul(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }
}

impl Vec3 {
    /// Creates a vector.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Multiplication by a scalar.
    pub fn scale(self, factor: f64) -> Vec3 {
        Vec3::new(self.x * factor, self.y * factor, self.z * factor)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// The vector scaled to unit length.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len == 0.0 {
            self
        } else {
            self.scale(1.0 / len)
        }
    }

    /// Reflection of `self` around the normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n.scale(2.0 * self.dot(n))
    }
}

/// A ray with an origin and a unit direction.
#[derive(Debug, Clone, Copy)]
pub struct Ray {
    /// Starting point of the ray.
    pub origin: Vec3,
    /// Unit direction of the ray.
    pub direction: Vec3,
}

/// A sphere with Phong-style material parameters.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: Vec3,
    /// Radius of the sphere.
    pub radius: f64,
    /// Diffuse colour.
    pub color: Vec3,
    /// Fraction of light reflected specularly (0 = matte, 1 = mirror).
    pub reflectivity: f64,
}

impl Sphere {
    /// Distance along `ray` of the closest intersection, if any.
    pub fn intersect(&self, ray: &Ray) -> Option<f64> {
        let oc = ray.origin - self.center;
        let b = 2.0 * oc.dot(ray.direction);
        let c = oc.dot(oc) - self.radius * self.radius;
        let discriminant = b * b - 4.0 * c;
        if discriminant < 0.0 {
            return None;
        }
        let sqrt_d = discriminant.sqrt();
        let t1 = (-b - sqrt_d) / 2.0;
        let t2 = (-b + sqrt_d) / 2.0;
        let t = if t1 > 1e-6 { t1 } else { t2 };
        (t > 1e-6).then_some(t)
    }
}

/// The scene of the paper's usage example: a handful of spheres on a plane,
/// lit by a single point light, rendered from a camera rotating around it.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The spheres of the scene.
    pub spheres: Vec<Sphere>,
    /// Height of the ground plane (y = `floor_y`).
    pub floor_y: f64,
    /// Position of the point light.
    pub light: Vec3,
    /// Background colour.
    pub background: Vec3,
    /// Maximum recursion depth for reflections.
    pub max_depth: u32,
}

impl Default for Scene {
    fn default() -> Self {
        Self {
            spheres: vec![
                Sphere {
                    center: Vec3::new(0.0, 1.0, 0.0),
                    radius: 1.0,
                    color: Vec3::new(0.9, 0.2, 0.2),
                    reflectivity: 0.4,
                },
                Sphere {
                    center: Vec3::new(2.0, 0.6, 1.0),
                    radius: 0.6,
                    color: Vec3::new(0.2, 0.8, 0.3),
                    reflectivity: 0.2,
                },
                Sphere {
                    center: Vec3::new(-1.8, 0.8, -0.6),
                    radius: 0.8,
                    color: Vec3::new(0.2, 0.4, 0.9),
                    reflectivity: 0.6,
                },
            ],
            floor_y: 0.0,
            light: Vec3::new(5.0, 8.0, -3.0),
            background: Vec3::new(0.05, 0.07, 0.12),
            max_depth: 3,
        }
    }
}

impl Scene {
    fn trace(&self, ray: &Ray, depth: u32) -> Vec3 {
        // Closest sphere intersection.
        let mut closest: Option<(f64, &Sphere)> = None;
        for sphere in &self.spheres {
            if let Some(t) = sphere.intersect(ray) {
                if closest.map(|(best, _)| t < best).unwrap_or(true) {
                    closest = Some((t, sphere));
                }
            }
        }
        // Ground plane intersection.
        let floor_t = if ray.direction.y < -1e-6 {
            Some((self.floor_y - ray.origin.y) / ray.direction.y)
        } else {
            None
        };

        match (closest, floor_t) {
            (Some((t, sphere)), floor) if floor.map(|ft| t < ft).unwrap_or(true) => {
                let hit = ray.origin + ray.direction.scale(t);
                let normal = (hit - sphere.center).normalized();
                let mut color = self.shade(hit, normal, sphere.color);
                if sphere.reflectivity > 0.0 && depth < self.max_depth {
                    let reflected = Ray {
                        origin: hit + normal.scale(1e-4),
                        direction: ray.direction.reflect(normal).normalized(),
                    };
                    let bounce = self.trace(&reflected, depth + 1);
                    color =
                        color.scale(1.0 - sphere.reflectivity) + bounce.scale(sphere.reflectivity);
                }
                color
            }
            (_, Some(t)) if t > 1e-6 => {
                let hit = ray.origin + ray.direction.scale(t);
                // Checkerboard floor.
                let checker = ((hit.x.floor() + hit.z.floor()) as i64).rem_euclid(2) == 0;
                let base =
                    if checker { Vec3::new(0.85, 0.85, 0.85) } else { Vec3::new(0.25, 0.25, 0.25) };
                self.shade(hit, Vec3::new(0.0, 1.0, 0.0), base)
            }
            _ => self.background,
        }
    }

    fn shade(&self, hit: Vec3, normal: Vec3, base: Vec3) -> Vec3 {
        let to_light = self.light - hit;
        let light_dir = to_light.normalized();
        // Hard shadow: any sphere between the hit point and the light.
        let shadow_ray = Ray { origin: hit + normal.scale(1e-4), direction: light_dir };
        let max_t = to_light.length();
        let in_shadow =
            self.spheres.iter().filter_map(|s| s.intersect(&shadow_ray)).any(|t| t < max_t);
        let ambient = 0.12;
        let diffuse = if in_shadow { 0.0 } else { normal.dot(light_dir).max(0.0) };
        base.scale(ambient + 0.88 * diffuse)
    }

    /// Renders one frame of the rotation animation: the camera orbits the
    /// origin at the given `angle` (radians) and looks at the scene centre.
    ///
    /// The output is an RGB byte buffer of `width * height * 3` bytes, rows
    /// from top to bottom.
    pub fn render(&self, angle: f64, width: usize, height: usize) -> Vec<u8> {
        let distance = 6.0;
        let camera = Vec3::new(distance * angle.cos(), 2.2, distance * angle.sin());
        let target = Vec3::new(0.0, 0.8, 0.0);
        let forward = (target - camera).normalized();
        let right = Vec3::new(forward.z, 0.0, -forward.x).normalized();
        let up = Vec3::new(
            right.y * forward.z - right.z * forward.y,
            right.z * forward.x - right.x * forward.z,
            right.x * forward.y - right.y * forward.x,
        );
        let fov_scale = (55.0f64.to_radians() / 2.0).tan();
        let aspect = width as f64 / height as f64;

        let mut pixels = Vec::with_capacity(width * height * 3);
        for y in 0..height {
            for x in 0..width {
                let ndc_x = (2.0 * (x as f64 + 0.5) / width as f64 - 1.0) * fov_scale * aspect;
                let ndc_y = (1.0 - 2.0 * (y as f64 + 0.5) / height as f64) * fov_scale;
                let direction = (forward + right.scale(ndc_x) + up.scale(ndc_y)).normalized();
                let color = self.trace(&Ray { origin: camera, direction }, 0);
                for channel in [color.x, color.y, color.z] {
                    pixels.push((channel.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
        pixels
    }
}

/// Generates the camera angles of a full-turn animation with `frames` frames,
/// the input stream of the usage example (`generate-angles.js`).
pub fn animation_angles(frames: usize) -> Vec<f64> {
    (0..frames).map(|i| i as f64 * std::f64::consts::TAU / frames.max(1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert!((v.normalized().length() - 1.0).abs() < 1e-12);
        assert_eq!(v + Vec3::new(1.0, 1.0, 1.0), Vec3::new(4.0, 5.0, 1.0));
        assert_eq!(v - v, Vec3::default());
        assert_eq!(v.scale(2.0), Vec3::new(6.0, 8.0, 0.0));
        assert_eq!(v.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
        assert_eq!(
            Vec3::new(1.0, -1.0, 0.0).reflect(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(1.0, 1.0, 0.0)
        );
        assert_eq!(Vec3::default().normalized(), Vec3::default());
    }

    #[test]
    fn sphere_intersection() {
        let sphere = Sphere {
            center: Vec3::new(0.0, 0.0, 5.0),
            radius: 1.0,
            color: Vec3::new(1.0, 0.0, 0.0),
            reflectivity: 0.0,
        };
        let hit = sphere
            .intersect(&Ray { origin: Vec3::default(), direction: Vec3::new(0.0, 0.0, 1.0) })
            .unwrap();
        assert!((hit - 4.0).abs() < 1e-9);
        assert!(sphere
            .intersect(&Ray { origin: Vec3::default(), direction: Vec3::new(0.0, 1.0, 0.0) })
            .is_none());
        // A ray starting inside the sphere hits the far side.
        let inside = sphere
            .intersect(&Ray {
                origin: Vec3::new(0.0, 0.0, 5.0),
                direction: Vec3::new(0.0, 0.0, 1.0),
            })
            .unwrap();
        assert!((inside - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_produces_correct_buffer_size() {
        let scene = Scene::default();
        let frame = scene.render(0.3, 32, 24);
        assert_eq!(frame.len(), 32 * 24 * 3);
    }

    #[test]
    fn rendering_is_deterministic() {
        let scene = Scene::default();
        assert_eq!(scene.render(1.0, 16, 16), scene.render(1.0, 16, 16));
    }

    #[test]
    fn different_angles_give_different_frames() {
        let scene = Scene::default();
        assert_ne!(scene.render(0.0, 24, 24), scene.render(1.5, 24, 24));
    }

    #[test]
    fn frame_is_not_uniform_background() {
        let scene = Scene::default();
        let frame = scene.render(0.7, 32, 32);
        let distinct: std::collections::HashSet<&[u8]> = frame.chunks(3).collect();
        assert!(distinct.len() > 10, "the image must contain objects, shadows and floor");
    }

    #[test]
    fn animation_angles_cover_a_full_turn() {
        let angles = animation_angles(8);
        assert_eq!(angles.len(), 8);
        assert_eq!(angles[0], 0.0);
        assert!(angles[7] < std::f64::consts::TAU);
        assert!(angles.windows(2).all(|w| w[1] > w[0]));
        assert!(animation_angles(0).is_empty());
    }
}
