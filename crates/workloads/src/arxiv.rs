//! Crowd tagging of paper metadata (the *Arxiv* application, paper §4.1).
//!
//! In this application the browser is used as a user interface rather than a
//! processing environment: each input is the metadata of one paper and the
//! "processing" is a human volunteer deciding whether the paper is relevant.
//! The paper excludes it from the throughput evaluation for that reason; the
//! reproduction keeps it as an example of the dataflow, with a simulated
//! volunteer whose decisions are deterministic keyword matches and whose
//! response time is human-scale.

use std::time::Duration;

/// Metadata of one paper to be tagged.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PaperMeta {
    /// Stable identifier (for example `1803.08426`).
    pub id: String,
    /// Title of the paper.
    pub title: String,
    /// Abstract of the paper.
    pub abstract_text: String,
}

/// The verdict of a volunteer on one paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Tag {
    /// Worth reading for the project at hand.
    Interesting,
    /// Not relevant.
    NotRelevant,
    /// The volunteer could not decide.
    Unsure,
}

/// A simulated volunteer: tags papers by keyword matching, with a configurable
/// per-paper "reading time" so deployments exhibit human-scale latencies.
#[derive(Debug, Clone)]
pub struct SimulatedTagger {
    /// Keywords that make a paper interesting.
    pub interests: Vec<String>,
    /// Keywords that make a paper irrelevant.
    pub rejections: Vec<String>,
    /// Simulated reading time per paper.
    pub reading_time: Duration,
}

impl Default for SimulatedTagger {
    fn default() -> Self {
        Self {
            interests: vec!["volunteer".into(), "browser".into(), "stream".into()],
            rejections: vec!["blockchain marketing".into()],
            reading_time: Duration::ZERO,
        }
    }
}

impl SimulatedTagger {
    /// Tags one paper. Sleeps for the configured reading time to emulate the
    /// human in the loop.
    pub fn tag(&self, paper: &PaperMeta) -> Tag {
        if !self.reading_time.is_zero() {
            std::thread::sleep(self.reading_time);
        }
        let text = format!("{} {}", paper.title, paper.abstract_text).to_lowercase();
        if self.rejections.iter().any(|k| text.contains(&k.to_lowercase())) {
            Tag::NotRelevant
        } else if self.interests.iter().any(|k| text.contains(&k.to_lowercase())) {
            Tag::Interesting
        } else {
            Tag::Unsure
        }
    }
}

/// A small corpus of synthetic paper metadata used by the examples.
pub fn sample_corpus(n: usize) -> Vec<PaperMeta> {
    let topics = [
        (
            "Personal volunteer computing in browsers",
            "We present a tool to use volunteer devices through their browser.",
        ),
        (
            "A new cache coherence protocol",
            "We evaluate a directory protocol on a simulated multicore.",
        ),
        (
            "Streaming abstractions for distributed systems",
            "A declarative stream model simplifies distribution.",
        ),
        (
            "Deep learning for image segmentation",
            "A convolutional architecture for satellite images.",
        ),
        ("Blockchain marketing strategies", "How to sell more tokens with less effort."),
    ];
    (0..n)
        .map(|i| {
            let (title, abstract_text) = topics[i % topics.len()];
            PaperMeta {
                id: format!("25{:02}.{:05}", i % 12 + 1, i),
                title: title.to_string(),
                abstract_text: abstract_text.to_string(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_matching_tags_papers() {
        let tagger = SimulatedTagger::default();
        let corpus = sample_corpus(5);
        assert_eq!(tagger.tag(&corpus[0]), Tag::Interesting); // volunteer computing
        assert_eq!(tagger.tag(&corpus[1]), Tag::Unsure); // cache coherence
        assert_eq!(tagger.tag(&corpus[2]), Tag::Interesting); // streaming
        assert_eq!(tagger.tag(&corpus[3]), Tag::Unsure); // deep learning
        assert_eq!(tagger.tag(&corpus[4]), Tag::NotRelevant); // blockchain marketing
    }

    #[test]
    fn corpus_is_deterministic_and_sized() {
        assert_eq!(sample_corpus(12).len(), 12);
        assert_eq!(sample_corpus(3), sample_corpus(3));
        assert_ne!(sample_corpus(2)[0].id, sample_corpus(2)[1].id);
    }

    #[test]
    fn reading_time_is_respected() {
        let tagger = SimulatedTagger {
            reading_time: Duration::from_millis(30),
            ..SimulatedTagger::default()
        };
        let paper = &sample_corpus(1)[0];
        let start = std::time::Instant::now();
        tagger.tag(paper);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }
}
