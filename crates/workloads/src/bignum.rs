//! A minimal arbitrary-precision unsigned integer.
//!
//! The paper's Collatz application was compiled from MATLAB and adapted to a
//! BigNumber JavaScript library because the interesting Collatz trajectories
//! overflow 64-bit integers. This module provides the handful of operations
//! the trajectory computation needs: construction from `u64`, addition,
//! multiplication by a small factor, division by two, parity and comparison.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer stored as base-2^32 limbs, least
/// significant limb first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Creates a big integer from a `u64`.
    pub fn from_u64(value: u64) -> Self {
        let mut limbs = vec![(value & 0xffff_ffff) as u32, (value >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Self { limbs }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map(|l| l % 2 == 0).unwrap_or(true)
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of bits in the binary representation (zero for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// The value as a `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Adds `other` to `self` in place.
    pub fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        for i in 0..other.limbs.len().max(self.limbs.len()) {
            if i >= self.limbs.len() {
                self.limbs.push(0);
            }
            let sum =
                self.limbs[i] as u64 + other.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            self.limbs[i] = (sum & 0xffff_ffff) as u32;
            carry = sum >> 32;
        }
        if carry > 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Adds a small value in place.
    pub fn add_small(&mut self, value: u32) {
        let mut carry = value as u64;
        let mut i = 0;
        while carry > 0 {
            if i >= self.limbs.len() {
                self.limbs.push(0);
            }
            let sum = self.limbs[i] as u64 + carry;
            self.limbs[i] = (sum & 0xffff_ffff) as u32;
            carry = sum >> 32;
            i += 1;
        }
    }

    /// Multiplies by a small factor in place.
    pub fn mul_small(&mut self, factor: u32) {
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let product = *limb as u64 * factor as u64 + carry;
            *limb = (product & 0xffff_ffff) as u32;
            carry = product >> 32;
        }
        while carry > 0 {
            self.limbs.push((carry & 0xffff_ffff) as u32);
            carry >>= 32;
        }
        if factor == 0 {
            self.limbs.clear();
        }
    }

    /// Divides by two in place (integer division).
    pub fn div2(&mut self) {
        let mut carry = 0u32;
        for limb in self.limbs.iter_mut().rev() {
            let value = *limb;
            *limb = (value >> 1) | (carry << 31);
            carry = value & 1;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Compares two big integers.
    pub fn compare(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl From<u64> for BigUint {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^9; slow but only used for display.
        let mut digits = Vec::new();
        let mut value = self.clone();
        while !value.is_zero() {
            let mut remainder = 0u64;
            for limb in value.limbs.iter_mut().rev() {
                let acc = (remainder << 32) | *limb as u64;
                *limb = (acc / 1_000_000_000) as u32;
                remainder = acc % 1_000_000_000;
            }
            while value.limbs.last() == Some(&0) {
                value.limbs.pop();
            }
            digits.push(remainder);
        }
        let mut out = String::new();
        for (i, digit) in digits.iter().rev().enumerate() {
            if i == 0 {
                out.push_str(&digit.to_string());
            } else {
                out.push_str(&format!("{digit:09}"));
            }
        }
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::one().to_string(), "1");
        assert_eq!(BigUint::from_u64(1234567890123456789).to_string(), "1234567890123456789");
        assert_eq!(BigUint::from(42u64).to_u64(), Some(42));
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert!(BigUint::from_u64(1 << 40).is_even());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::from_u64(3).is_one());
    }

    #[test]
    fn addition_with_carries() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.add_assign(&BigUint::one());
        assert_eq!(a.to_string(), "18446744073709551616");
        assert_eq!(a.to_u64(), None);
        a.add_small(5);
        assert_eq!(a.to_string(), "18446744073709551621");
    }

    #[test]
    fn multiplication_by_small_factor() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.mul_small(3);
        assert_eq!(a.to_string(), "55340232221128654845");
        let mut zero = BigUint::from_u64(99);
        zero.mul_small(0);
        assert!(zero.is_zero());
    }

    #[test]
    fn division_by_two() {
        let mut a = BigUint::from_u64(u64::MAX);
        a.mul_small(4);
        a.div2();
        a.div2();
        assert_eq!(a.to_u64(), Some(u64::MAX));
        let mut one = BigUint::one();
        one.div2();
        assert!(one.is_zero());
    }

    #[test]
    fn comparison() {
        let small = BigUint::from_u64(100);
        let big = BigUint::from_u64(u64::MAX);
        let mut bigger = big.clone();
        bigger.mul_small(2);
        assert!(small < big);
        assert!(big < bigger);
        assert_eq!(big.compare(&BigUint::from_u64(u64::MAX)), Ordering::Equal);
    }

    #[test]
    fn bit_length() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::from_u64(255).bit_len(), 8);
        assert_eq!(BigUint::from_u64(256).bit_len(), 9);
        let mut big = BigUint::from_u64(1);
        for _ in 0..100 {
            big.mul_small(2);
        }
        assert_eq!(big.bit_len(), 101);
    }

    #[test]
    fn collatz_like_sequence_3n_plus_1() {
        // 27 has a famously long trajectory; check a few steps manually.
        let mut n = BigUint::from_u64(27);
        n.mul_small(3);
        n.add_small(1); // 82
        assert_eq!(n.to_u64(), Some(82));
        n.div2(); // 41
        assert_eq!(n.to_u64(), Some(41));
    }
}
