//! The uniform `'/pando/1.0.0'` application interface.
//!
//! Pando applications expose a single processing function that takes a string
//! input and returns a string output through a callback (paper Figure 2).
//! [`PandoApp`] is the Rust equivalent: a trait with string-based inputs and
//! outputs so the distributed-map layer, the device models and the benchmark
//! harness can treat all seven applications uniformly. Structured data is
//! carried in the strings with small hand-rolled encodings (numbers, comma
//! separated fields, base64-like payload sizes), matching how the original
//! tool passes values on Unix pipes.

use crate::{arxiv, collatz, crypto, imageproc, mlagent, raytrace, sl_test};
use pando_pull_stream::StreamError;
use std::fmt;
use std::sync::Arc;

/// A Pando application: a named processing function over a stream of string
/// values, plus an input generator for experiments.
pub trait PandoApp: Send + Sync {
    /// Short machine-friendly name (used on the command line of the bench
    /// harness).
    fn name(&self) -> &'static str;

    /// The throughput unit reported in the paper's Table 2.
    fn unit(&self) -> &'static str;

    /// The `i`-th input value of the experiment workload.
    fn input(&self, i: u64) -> String;

    /// Applies the processing function to one input (the body of the
    /// `module.exports['/pando/1.0.0']` function).
    ///
    /// # Errors
    ///
    /// Returns an error if the input cannot be parsed or the computation
    /// fails; Pando forwards it like the JavaScript callback `cb(err)`.
    fn process(&self, input: &str) -> Result<String, StreamError>;

    /// Approximate size in bytes of one input value on the wire.
    fn input_size(&self) -> usize {
        32
    }

    /// Approximate size in bytes of one result value on the wire.
    fn output_size(&self) -> usize {
        32
    }

    /// How many processed items one throughput "item" of Table 2 corresponds
    /// to (1 for most applications; the hash count per attempt for mining).
    fn items_per_input(&self) -> u64 {
        1
    }
}

/// The applications of the paper's evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AppKind {
    /// Collatz-conjecture step counting.
    Collatz,
    /// SHA-256 proof-of-work mining.
    CryptoMining,
    /// Randomized StreamLender executions.
    StreamLenderTesting,
    /// Ray-traced animation frames.
    Raytrace,
    /// Landsat-like tile blurring.
    ImageProcessing,
    /// Q-learning hyper-parameter evaluation.
    MlAgentTraining,
    /// Crowd tagging (browser as a UI; excluded from throughput tables).
    Arxiv,
}

impl AppKind {
    /// Every application kind, in the column order of Table 2.
    pub fn all() -> [AppKind; 7] {
        [
            AppKind::Collatz,
            AppKind::CryptoMining,
            AppKind::StreamLenderTesting,
            AppKind::Raytrace,
            AppKind::ImageProcessing,
            AppKind::MlAgentTraining,
            AppKind::Arxiv,
        ]
    }

    /// The six applications measured in Table 2 (everything except Arxiv).
    pub fn measured() -> [AppKind; 6] {
        [
            AppKind::Collatz,
            AppKind::CryptoMining,
            AppKind::StreamLenderTesting,
            AppKind::Raytrace,
            AppKind::ImageProcessing,
            AppKind::MlAgentTraining,
        ]
    }

    /// Builds the application implementation for this kind, with workload
    /// parameters small enough for interactive test runs.
    pub fn instantiate(self) -> Arc<dyn PandoApp> {
        match self {
            AppKind::Collatz => Arc::new(CollatzApp::default()),
            AppKind::CryptoMining => Arc::new(CryptoApp::default()),
            AppKind::StreamLenderTesting => Arc::new(SlTestApp),
            AppKind::Raytrace => Arc::new(RaytraceApp::default()),
            AppKind::ImageProcessing => Arc::new(ImageProcApp::default()),
            AppKind::MlAgentTraining => Arc::new(MlAgentApp::default()),
            AppKind::Arxiv => Arc::new(ArxivApp::default()),
        }
    }

    /// Parses a kind from its command-line name.
    pub fn from_name(name: &str) -> Option<AppKind> {
        Self::all().into_iter().find(|kind| kind.instantiate().name() == name)
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.instantiate().name())
    }
}

/// Collatz step counting over a range of starting values.
#[derive(Debug, Clone)]
pub struct CollatzApp {
    /// Starting offset of the searched range.
    pub first: u64,
}

impl Default for CollatzApp {
    fn default() -> Self {
        // Values in the billions take a few hundred big-number steps each.
        Self { first: 1_000_000_007 }
    }
}

impl PandoApp for CollatzApp {
    fn name(&self) -> &'static str {
        "collatz"
    }
    fn unit(&self) -> &'static str {
        "BigNums/s"
    }
    fn input(&self, i: u64) -> String {
        (self.first + i).to_string()
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let start: u64 = input
            .trim()
            .parse()
            .map_err(|_| StreamError::new(format!("collatz input is not an integer: {input:?}")))?;
        let result = collatz::collatz_steps(start);
        Ok(format!("{},{}", result.start, result.steps))
    }
}

/// SHA-256 proof-of-work over consecutive nonce ranges.
#[derive(Debug, Clone)]
pub struct CryptoApp {
    /// Block header being mined.
    pub block: String,
    /// Number of nonces per work unit.
    pub range_size: u64,
    /// Difficulty in leading zero bits.
    pub difficulty_bits: u32,
}

impl Default for CryptoApp {
    fn default() -> Self {
        Self { block: "pando-block-1".to_string(), range_size: 2_000, difficulty_bits: 20 }
    }
}

impl PandoApp for CryptoApp {
    fn name(&self) -> &'static str {
        "crypto-mining"
    }
    fn unit(&self) -> &'static str {
        "Hashes/s"
    }
    fn input(&self, i: u64) -> String {
        let start = i * self.range_size;
        format!("{}|{}|{}|{}", self.block, start, start + self.range_size, self.difficulty_bits)
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let mut parts = input.split('|');
        let (block, start, end, bits) = (
            parts.next().ok_or_else(|| StreamError::new("missing block"))?,
            parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| StreamError::new("bad start"))?,
            parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| StreamError::new("bad end"))?,
            parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| StreamError::new("bad bits"))?,
        );
        let outcome = crypto::mine(&crypto::MiningAttempt {
            block: block.to_string(),
            nonce_start: start,
            nonce_end: end,
            difficulty_bits: bits,
        });
        Ok(match outcome.nonce {
            Some(nonce) => format!("found,{nonce},{}", outcome.hashes),
            None => format!("failed,,{}", outcome.hashes),
        })
    }
    fn items_per_input(&self) -> u64 {
        self.range_size
    }
}

/// Randomized StreamLender executions, one seed per input.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlTestApp;

impl PandoApp for SlTestApp {
    fn name(&self) -> &'static str {
        "streamlender-testing"
    }
    fn unit(&self) -> &'static str {
        "Tests/s"
    }
    fn input(&self, i: u64) -> String {
        i.to_string()
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let seed: u64 = input
            .trim()
            .parse()
            .map_err(|_| StreamError::new(format!("seed is not an integer: {input:?}")))?;
        let verdict = sl_test::run_random_execution(seed);
        Ok(format!("{},{}", verdict.seed, if verdict.passed() { "pass" } else { "fail" }))
    }
}

/// Ray tracing of animation frames.
#[derive(Debug, Clone)]
pub struct RaytraceApp {
    /// Width of each rendered frame.
    pub width: usize,
    /// Height of each rendered frame.
    pub height: usize,
    /// Number of frames in the full animation.
    pub frames: usize,
    scene: raytrace::Scene,
}

impl Default for RaytraceApp {
    fn default() -> Self {
        // Small frames, like the paper's evaluation which shrank the image to
        // fit WebRTC message limits (§5.1).
        Self { width: 96, height: 72, frames: 60, scene: raytrace::Scene::default() }
    }
}

impl PandoApp for RaytraceApp {
    fn name(&self) -> &'static str {
        "raytrace"
    }
    fn unit(&self) -> &'static str {
        "Frames/s"
    }
    fn input(&self, i: u64) -> String {
        let angles = raytrace::animation_angles(self.frames);
        format!("{:.6}", angles[(i as usize) % self.frames])
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let angle: f64 = input
            .trim()
            .parse()
            .map_err(|_| StreamError::new(format!("camera angle is not a number: {input:?}")))?;
        let pixels = self.scene.render(angle, self.width, self.height);
        // Results travel base64 encoded, as in the paper's glue code.
        Ok(pando_netsim_base64(&pixels))
    }
    fn output_size(&self) -> usize {
        self.width * self.height * 3 * 4 / 3
    }
}

/// Blur filtering of synthetic Landsat-like tiles.
#[derive(Debug, Clone)]
pub struct ImageProcApp {
    /// Width and height of each square tile.
    pub tile_size: usize,
    /// Blur radius.
    pub radius: usize,
}

impl Default for ImageProcApp {
    fn default() -> Self {
        Self { tile_size: 410, radius: 3 }
    }
}

impl PandoApp for ImageProcApp {
    fn name(&self) -> &'static str {
        "image-processing"
    }
    fn unit(&self) -> &'static str {
        "Images/s"
    }
    fn input(&self, i: u64) -> String {
        // The input identifies which tile to fetch from the (external) data
        // distribution, exactly like the http/DAT/WebTorrent variants of the
        // paper carry image identifiers rather than the bytes themselves.
        i.to_string()
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let seed: u64 = input
            .trim()
            .parse()
            .map_err(|_| StreamError::new(format!("tile id is not an integer: {input:?}")))?;
        let tile = imageproc::synthetic_tile(seed, self.tile_size, self.tile_size);
        let blurred = imageproc::box_blur(&tile, self.radius);
        // Return a digest of the blurred tile: the actual bytes travel through
        // the external data distribution channel (paper §4.3).
        Ok(format!("{seed},{}", crypto::sha256_hex(&blurred.pixels)))
    }
    fn input_size(&self) -> usize {
        self.tile_size * self.tile_size
    }
    fn output_size(&self) -> usize {
        80
    }
}

/// Q-learning training runs, one learning-rate candidate per input.
#[derive(Debug, Clone, Default)]
pub struct MlAgentApp {
    config: mlagent::TrainingConfig,
}

impl PandoApp for MlAgentApp {
    fn name(&self) -> &'static str {
        "ml-agent"
    }
    fn unit(&self) -> &'static str {
        "Steps/s"
    }
    fn input(&self, i: u64) -> String {
        let candidates = mlagent::learning_rate_candidates(32);
        format!("{:.8}", candidates[(i as usize) % candidates.len()])
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let learning_rate: f64 = input
            .trim()
            .parse()
            .map_err(|_| StreamError::new(format!("learning rate is not a number: {input:?}")))?;
        let outcome = mlagent::train(learning_rate, &self.config);
        Ok(format!("{:.8},{:.4},{}", outcome.learning_rate, outcome.final_reward, outcome.steps))
    }
}

/// Crowd tagging with a simulated volunteer.
#[derive(Debug, Clone, Default)]
pub struct ArxivApp {
    tagger: arxiv::SimulatedTagger,
}

impl PandoApp for ArxivApp {
    fn name(&self) -> &'static str {
        "arxiv-tagging"
    }
    fn unit(&self) -> &'static str {
        "Papers/s"
    }
    fn input(&self, i: u64) -> String {
        let corpus = arxiv::sample_corpus((i + 1) as usize);
        let paper = &corpus[i as usize];
        format!("{}|{}|{}", paper.id, paper.title, paper.abstract_text)
    }
    fn process(&self, input: &str) -> Result<String, StreamError> {
        let mut parts = input.splitn(3, '|');
        let paper = arxiv::PaperMeta {
            id: parts.next().unwrap_or_default().to_string(),
            title: parts.next().unwrap_or_default().to_string(),
            abstract_text: parts.next().unwrap_or_default().to_string(),
        };
        let tag = self.tagger.tag(&paper);
        Ok(format!("{},{:?}", paper.id, tag))
    }
}

/// Minimal base64 encoding (kept local so the workloads crate does not depend
/// on the network crate).
fn pando_netsim_base64(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], chunk.get(1).copied().unwrap_or(0), chunk.get(2).copied().unwrap_or(0)];
        let triple = u32::from_be_bytes([0, b[0], b[1], b[2]]);
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measured_app_round_trips_an_input() {
        for kind in AppKind::measured() {
            let app = kind.instantiate();
            let input = app.input(0);
            let output = app.process(&input).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(!output.is_empty(), "{} produced an empty result", app.name());
        }
    }

    #[test]
    fn app_names_and_units_are_distinct() {
        let apps: Vec<_> = AppKind::all().iter().map(|k| k.instantiate()).collect();
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), apps.len());
        for app in &apps {
            assert!(app.unit().ends_with("/s"));
        }
    }

    #[test]
    fn from_name_round_trips() {
        for kind in AppKind::all() {
            let name = kind.instantiate().name();
            assert_eq!(AppKind::from_name(name), Some(kind));
            assert_eq!(kind.to_string(), name);
        }
        assert_eq!(AppKind::from_name("unknown"), None);
    }

    #[test]
    fn collatz_app_parses_and_computes() {
        let app = CollatzApp { first: 27 };
        assert_eq!(app.input(0), "27");
        assert_eq!(app.process("27").unwrap(), "27,111");
        assert!(app.process("not-a-number").is_err());
    }

    #[test]
    fn crypto_app_reports_hashes() {
        let app = CryptoApp { range_size: 50, difficulty_bits: 1, ..CryptoApp::default() };
        let result = app.process(&app.input(0)).unwrap();
        let fields: Vec<&str> = result.split(',').collect();
        assert_eq!(fields.len(), 3);
        assert!(fields[0] == "found" || fields[0] == "failed");
        assert!(app.process("garbage").is_err());
        assert_eq!(app.items_per_input(), 50);
    }

    #[test]
    fn raytrace_app_produces_base64_frames() {
        let app = RaytraceApp { width: 16, height: 12, frames: 4, ..RaytraceApp::default() };
        let frame = app.process(&app.input(1)).unwrap();
        assert_eq!(frame.len(), (16 * 12 * 3_usize).div_ceil(3) * 4);
        assert!(frame
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '/' || c == '='));
        assert!(app.process("angle?").is_err());
    }

    #[test]
    fn image_processing_app_digests_tiles() {
        let app = ImageProcApp { tile_size: 64, radius: 2 };
        let out_a = app.process("3").unwrap();
        let out_b = app.process("3").unwrap();
        assert_eq!(out_a, out_b, "processing is deterministic");
        assert_ne!(out_a, app.process("4").unwrap());
        assert!(app.process("x").is_err());
    }

    #[test]
    fn ml_agent_app_reports_reward_and_steps() {
        let app = MlAgentApp::default();
        let out = app.process("0.4").unwrap();
        let fields: Vec<&str> = out.split(',').collect();
        assert_eq!(fields.len(), 3);
        assert!(fields[2].parse::<u64>().unwrap() > 0);
        assert!(app.process("fast").is_err());
    }

    #[test]
    fn arxiv_app_tags_papers() {
        let app = ArxivApp::default();
        let out = app.process(&app.input(0)).unwrap();
        assert!(out.contains("Interesting"));
    }

    #[test]
    fn sl_test_app_passes_its_executions() {
        let app = SlTestApp;
        for seed in 0..5 {
            let out = app.process(&seed.to_string()).unwrap();
            assert!(out.ends_with(",pass"), "seed {seed}: {out}");
        }
        assert!(app.process("3.5").is_err());
    }
}
