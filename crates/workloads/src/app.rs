//! The uniform application interface and the per-application wire codecs.
//!
//! The original Pando passes every value as a string (paper Figure 2), which
//! forces binary results through base64 (+33% on the wire) and a parse per
//! task. Here each application defines its *native* task and result types
//! plus a [`TaskCodec`] with a compact binary layout — raytraced pixels and
//! image digests travel as raw bytes, integers as fixed-width big-endian
//! words, floats as IEEE-754 bits. [`PandoApp`] is the dyn-friendly facade
//! over the same codecs: binary payloads in, binary payloads out, so the
//! distributed-map layer, the device models and the benchmark harness can
//! treat all seven applications interchangeably.

use crate::{arxiv, collatz, crypto, imageproc, mlagent, raytrace, sl_test};
use bytes::Bytes;
use pando_pull_stream::codec::{read_f64, read_u32, read_u64, split_at, Payload, TaskCodec};
use pando_pull_stream::StreamError;
use std::fmt;
use std::sync::Arc;

/// A Pando application: a named processing function over a stream of binary
/// payloads, plus an input generator for experiments.
///
/// The payloads are produced and consumed by the application's [`TaskCodec`];
/// this trait is the object-safe view the harness uses when the concrete
/// task/result types do not matter.
pub trait PandoApp: Send + Sync {
    /// Short machine-friendly name (used on the command line of the bench
    /// harness).
    fn name(&self) -> &'static str;

    /// The throughput unit reported in the paper's Table 2.
    fn unit(&self) -> &'static str;

    /// The `i`-th input value of the experiment workload, in wire form.
    fn input(&self, i: u64) -> Bytes;

    /// Applies the processing function to one encoded input and returns the
    /// encoded result (the body of the `module.exports['/pando/1.0.0']`
    /// function, minus the string convention). The input is a cheap
    /// reference-counted buffer, so byte-shaped tasks decode zero-copy.
    ///
    /// # Errors
    ///
    /// Returns an error if the input cannot be decoded or the computation
    /// fails; Pando forwards it like the JavaScript callback `cb(err)`.
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError>;

    /// Approximate size in bytes of one input value on the wire.
    fn input_size(&self) -> usize {
        32
    }

    /// Approximate size in bytes of one result value on the wire.
    fn output_size(&self) -> usize {
        32
    }

    /// How many processed items one throughput "item" of Table 2 corresponds
    /// to (1 for most applications; the hash count per attempt for mining).
    fn items_per_input(&self) -> u64 {
        1
    }
}

/// The applications of the paper's evaluation, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AppKind {
    /// Collatz-conjecture step counting.
    Collatz,
    /// SHA-256 proof-of-work mining.
    CryptoMining,
    /// Randomized StreamLender executions.
    StreamLenderTesting,
    /// Ray-traced animation frames.
    Raytrace,
    /// Landsat-like tile blurring.
    ImageProcessing,
    /// Q-learning hyper-parameter evaluation.
    MlAgentTraining,
    /// Crowd tagging (browser as a UI; excluded from throughput tables).
    Arxiv,
}

impl AppKind {
    /// Every application kind, in the column order of Table 2.
    pub fn all() -> [AppKind; 7] {
        [
            AppKind::Collatz,
            AppKind::CryptoMining,
            AppKind::StreamLenderTesting,
            AppKind::Raytrace,
            AppKind::ImageProcessing,
            AppKind::MlAgentTraining,
            AppKind::Arxiv,
        ]
    }

    /// The six applications measured in Table 2 (everything except Arxiv).
    pub fn measured() -> [AppKind; 6] {
        [
            AppKind::Collatz,
            AppKind::CryptoMining,
            AppKind::StreamLenderTesting,
            AppKind::Raytrace,
            AppKind::ImageProcessing,
            AppKind::MlAgentTraining,
        ]
    }

    /// Builds the application implementation for this kind, with workload
    /// parameters small enough for interactive test runs.
    pub fn instantiate(self) -> Arc<dyn PandoApp> {
        match self {
            AppKind::Collatz => Arc::new(CollatzApp::default()),
            AppKind::CryptoMining => Arc::new(CryptoApp::default()),
            AppKind::StreamLenderTesting => Arc::new(SlTestApp),
            AppKind::Raytrace => Arc::new(RaytraceApp::default()),
            AppKind::ImageProcessing => Arc::new(ImageProcApp::default()),
            AppKind::MlAgentTraining => Arc::new(MlAgentApp::default()),
            AppKind::Arxiv => Arc::new(ArxivApp::default()),
        }
    }

    /// Parses a kind from its command-line name.
    pub fn from_name(name: &str) -> Option<AppKind> {
        Self::all().into_iter().find(|kind| kind.instantiate().name() == name)
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.instantiate().name())
    }
}

// ---------------------------------------------------------------------------
// Collatz
// ---------------------------------------------------------------------------

/// Wire codec for the Collatz application: a starting value as an 8-byte
/// big-endian word, a [`collatz::CollatzResult`] as three of them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollatzCodec;

impl TaskCodec for CollatzCodec {
    type Task = u64;
    type Result = collatz::CollatzResult;

    fn encode_task(&self, task: &u64) -> Bytes {
        Bytes::copy_from_slice(&task.to_be_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<u64, StreamError> {
        let start = read_u64(bytes)?;
        if start == 0 {
            return Err(StreamError::protocol("collatz start must be positive"));
        }
        Ok(start)
    }

    fn encode_result(&self, result: &collatz::CollatzResult) -> Bytes {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&result.start.to_be_bytes());
        out.extend_from_slice(&result.steps.to_be_bytes());
        out.extend_from_slice(&result.peak_bits.to_be_bytes());
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<collatz::CollatzResult, StreamError> {
        let (start, rest) = split_at(bytes, 8)?;
        let (steps, peak) = split_at(rest, 8)?;
        Ok(collatz::CollatzResult {
            start: read_u64(start)?,
            steps: read_u64(steps)?,
            peak_bits: read_u64(peak)?,
        })
    }
}

/// Collatz step counting over a range of starting values.
#[derive(Debug, Clone)]
pub struct CollatzApp {
    /// Starting offset of the searched range.
    pub first: u64,
}

impl Default for CollatzApp {
    fn default() -> Self {
        // Values in the billions take a few hundred big-number steps each.
        Self { first: 1_000_000_007 }
    }
}

impl PandoApp for CollatzApp {
    fn name(&self) -> &'static str {
        "collatz"
    }
    fn unit(&self) -> &'static str {
        "BigNums/s"
    }
    fn input(&self, i: u64) -> Bytes {
        CollatzCodec.encode_task(&(self.first + i))
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let start = CollatzCodec.decode_task(input)?;
        Ok(CollatzCodec.encode_result(&collatz::collatz_steps(start)))
    }
    fn input_size(&self) -> usize {
        8
    }
    fn output_size(&self) -> usize {
        24
    }
}

// ---------------------------------------------------------------------------
// Crypto mining
// ---------------------------------------------------------------------------

/// Wire codec for the mining application: a [`crypto::MiningAttempt`] as two
/// nonce words, the difficulty and the raw block header bytes; a
/// [`crypto::MiningOutcome`] as a found flag, the nonce and the hash count.
#[derive(Debug, Clone, Copy, Default)]
pub struct CryptoCodec;

impl TaskCodec for CryptoCodec {
    type Task = crypto::MiningAttempt;
    type Result = crypto::MiningOutcome;

    fn encode_task(&self, task: &crypto::MiningAttempt) -> Bytes {
        let block = task.block.as_bytes();
        let mut out = Vec::with_capacity(20 + block.len());
        out.extend_from_slice(&task.nonce_start.to_be_bytes());
        out.extend_from_slice(&task.nonce_end.to_be_bytes());
        out.extend_from_slice(&task.difficulty_bits.to_be_bytes());
        out.extend_from_slice(block);
        Bytes::from(out)
    }

    fn decode_task(&self, bytes: &Payload) -> Result<crypto::MiningAttempt, StreamError> {
        let (start, rest) = split_at(bytes, 8)?;
        let (end, rest) = split_at(rest, 8)?;
        let (bits, block) = split_at(rest, 4)?;
        Ok(crypto::MiningAttempt {
            block: std::str::from_utf8(block)
                .map_err(|_| StreamError::protocol("block header is not valid UTF-8"))?
                .to_string(),
            nonce_start: read_u64(start)?,
            nonce_end: read_u64(end)?,
            difficulty_bits: read_u32(bits)?,
        })
    }

    fn encode_result(&self, result: &crypto::MiningOutcome) -> Bytes {
        let mut out = Vec::with_capacity(17);
        out.push(result.nonce.is_some() as u8);
        out.extend_from_slice(&result.nonce.unwrap_or(0).to_be_bytes());
        out.extend_from_slice(&result.hashes.to_be_bytes());
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<crypto::MiningOutcome, StreamError> {
        let (flag, rest) = split_at(bytes, 1)?;
        let (nonce, hashes) = split_at(rest, 8)?;
        Ok(crypto::MiningOutcome {
            nonce: match flag[0] {
                0 => None,
                1 => Some(read_u64(nonce)?),
                other => {
                    return Err(StreamError::protocol(format!("bad found flag {other}")));
                }
            },
            hashes: read_u64(hashes)?,
        })
    }
}

/// SHA-256 proof-of-work over consecutive nonce ranges.
#[derive(Debug, Clone)]
pub struct CryptoApp {
    /// Block header being mined.
    pub block: String,
    /// Number of nonces per work unit.
    pub range_size: u64,
    /// Difficulty in leading zero bits.
    pub difficulty_bits: u32,
}

impl Default for CryptoApp {
    fn default() -> Self {
        Self { block: "pando-block-1".to_string(), range_size: 2_000, difficulty_bits: 20 }
    }
}

impl CryptoApp {
    /// The `i`-th mining attempt of the workload, in native form.
    pub fn attempt(&self, i: u64) -> crypto::MiningAttempt {
        let start = i * self.range_size;
        crypto::MiningAttempt {
            block: self.block.clone(),
            nonce_start: start,
            nonce_end: start + self.range_size,
            difficulty_bits: self.difficulty_bits,
        }
    }
}

impl PandoApp for CryptoApp {
    fn name(&self) -> &'static str {
        "crypto-mining"
    }
    fn unit(&self) -> &'static str {
        "Hashes/s"
    }
    fn input(&self, i: u64) -> Bytes {
        CryptoCodec.encode_task(&self.attempt(i))
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let attempt = CryptoCodec.decode_task(input)?;
        Ok(CryptoCodec.encode_result(&crypto::mine(&attempt)))
    }
    fn items_per_input(&self) -> u64 {
        self.range_size
    }
}

// ---------------------------------------------------------------------------
// StreamLender testing
// ---------------------------------------------------------------------------

/// Wire codec for the StreamLender-testing application: a seed word in, an
/// [`sl_test::ExecutionVerdict`] out (violation text as length-implied
/// trailing bytes).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlTestCodec;

impl TaskCodec for SlTestCodec {
    type Task = u64;
    type Result = sl_test::ExecutionVerdict;

    fn encode_task(&self, task: &u64) -> Bytes {
        Bytes::copy_from_slice(&task.to_be_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<u64, StreamError> {
        read_u64(bytes)
    }

    fn encode_result(&self, result: &sl_test::ExecutionVerdict) -> Bytes {
        let violation = result.violation.as_deref().unwrap_or("");
        let mut out = Vec::with_capacity(21 + violation.len());
        out.extend_from_slice(&result.seed.to_be_bytes());
        out.extend_from_slice(&result.inputs.to_be_bytes());
        out.extend_from_slice(&result.steps.to_be_bytes());
        out.push(result.violation.is_some() as u8);
        out.extend_from_slice(violation.as_bytes());
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<sl_test::ExecutionVerdict, StreamError> {
        let (seed, rest) = split_at(bytes, 8)?;
        let (inputs, rest) = split_at(rest, 8)?;
        let (steps, rest) = split_at(rest, 4)?;
        let (flag, violation) = split_at(rest, 1)?;
        Ok(sl_test::ExecutionVerdict {
            seed: read_u64(seed)?,
            inputs: read_u64(inputs)?,
            steps: read_u32(steps)?,
            violation: if flag[0] == 0 {
                None
            } else {
                Some(
                    std::str::from_utf8(violation)
                        .map_err(|_| StreamError::protocol("violation is not valid UTF-8"))?
                        .to_string(),
                )
            },
        })
    }
}

/// Randomized StreamLender executions, one seed per input.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlTestApp;

impl PandoApp for SlTestApp {
    fn name(&self) -> &'static str {
        "streamlender-testing"
    }
    fn unit(&self) -> &'static str {
        "Tests/s"
    }
    fn input(&self, i: u64) -> Bytes {
        SlTestCodec.encode_task(&i)
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let seed = SlTestCodec.decode_task(input)?;
        Ok(SlTestCodec.encode_result(&sl_test::run_random_execution(seed)))
    }
    fn input_size(&self) -> usize {
        8
    }
}

// ---------------------------------------------------------------------------
// Raytracing
// ---------------------------------------------------------------------------

/// Wire codec for the raytracer: a camera angle as IEEE-754 bits, a rendered
/// frame as its raw RGB pixel buffer — the payload the original tool had to
/// base64-encode into a 4/3-sized string.
#[derive(Debug, Clone, Copy, Default)]
pub struct RaytraceCodec;

impl TaskCodec for RaytraceCodec {
    type Task = f64;
    type Result = Bytes;

    fn encode_task(&self, task: &f64) -> Bytes {
        Bytes::copy_from_slice(&task.to_bits().to_be_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<f64, StreamError> {
        let angle = read_f64(bytes)?;
        if !angle.is_finite() {
            return Err(StreamError::protocol("camera angle must be finite"));
        }
        Ok(angle)
    }

    fn encode_result(&self, result: &Bytes) -> Bytes {
        result.clone()
    }

    fn decode_result(&self, bytes: &Payload) -> Result<Bytes, StreamError> {
        // Zero-copy: the frame's pixel buffer is shared, not duplicated.
        Ok(bytes.clone())
    }
}

/// Ray tracing of animation frames.
#[derive(Debug, Clone)]
pub struct RaytraceApp {
    /// Width of each rendered frame.
    pub width: usize,
    /// Height of each rendered frame.
    pub height: usize,
    /// Number of frames in the full animation.
    pub frames: usize,
    scene: raytrace::Scene,
}

impl Default for RaytraceApp {
    fn default() -> Self {
        // Small frames, like the paper's evaluation which shrank the image to
        // fit WebRTC message limits (§5.1).
        Self { width: 96, height: 72, frames: 60, scene: raytrace::Scene::default() }
    }
}

impl RaytraceApp {
    /// Renders the frame for `angle` and returns the raw RGB pixels.
    pub fn render(&self, angle: f64) -> Vec<u8> {
        self.scene.render(angle, self.width, self.height)
    }
}

impl PandoApp for RaytraceApp {
    fn name(&self) -> &'static str {
        "raytrace"
    }
    fn unit(&self) -> &'static str {
        "Frames/s"
    }
    fn input(&self, i: u64) -> Bytes {
        let angles = raytrace::animation_angles(self.frames);
        RaytraceCodec.encode_task(&angles[(i as usize) % self.frames])
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let angle = RaytraceCodec.decode_task(input)?;
        // Raw pixels on the wire: no base64 inflation, no copy on decode.
        Ok(Bytes::from(self.render(angle)))
    }
    fn input_size(&self) -> usize {
        8
    }
    fn output_size(&self) -> usize {
        self.width * self.height * 3
    }
}

// ---------------------------------------------------------------------------
// Image processing
// ---------------------------------------------------------------------------

/// A blurred-tile digest: the tile id and the SHA-256 of the blurred pixels
/// (the pixels themselves travel through the external data distribution
/// channel, paper §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileDigest {
    /// The tile identifier (doubles as the synthesis seed).
    pub seed: u64,
    /// SHA-256 of the blurred tile's pixels.
    pub digest: [u8; 32],
}

/// Wire codec for the image-processing application: a tile id in, a
/// [`TileDigest`] out as the id plus 32 raw digest bytes (the original tool
/// shipped a 64-character hex string).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImageProcCodec;

impl TaskCodec for ImageProcCodec {
    type Task = u64;
    type Result = TileDigest;

    fn encode_task(&self, task: &u64) -> Bytes {
        Bytes::copy_from_slice(&task.to_be_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<u64, StreamError> {
        read_u64(bytes)
    }

    fn encode_result(&self, result: &TileDigest) -> Bytes {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&result.seed.to_be_bytes());
        out.extend_from_slice(&result.digest);
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<TileDigest, StreamError> {
        let (seed, digest) = split_at(bytes, 8)?;
        Ok(TileDigest {
            seed: read_u64(seed)?,
            digest: digest
                .try_into()
                .map_err(|_| StreamError::protocol("digest must be 32 bytes"))?,
        })
    }
}

/// Blur filtering of synthetic Landsat-like tiles.
#[derive(Debug, Clone)]
pub struct ImageProcApp {
    /// Width and height of each square tile.
    pub tile_size: usize,
    /// Blur radius.
    pub radius: usize,
}

impl Default for ImageProcApp {
    fn default() -> Self {
        Self { tile_size: 410, radius: 3 }
    }
}

impl ImageProcApp {
    /// Blurs the tile identified by `seed` and returns its digest.
    pub fn digest(&self, seed: u64) -> TileDigest {
        let tile = imageproc::synthetic_tile(seed, self.tile_size, self.tile_size);
        let blurred = imageproc::box_blur(&tile, self.radius);
        TileDigest { seed, digest: crypto::sha256(&blurred.pixels) }
    }
}

impl PandoApp for ImageProcApp {
    fn name(&self) -> &'static str {
        "image-processing"
    }
    fn unit(&self) -> &'static str {
        "Images/s"
    }
    fn input(&self, i: u64) -> Bytes {
        // The input identifies which tile to fetch from the (external) data
        // distribution, exactly like the http/DAT/WebTorrent variants of the
        // paper carry image identifiers rather than the bytes themselves.
        ImageProcCodec.encode_task(&i)
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let seed = ImageProcCodec.decode_task(input)?;
        Ok(ImageProcCodec.encode_result(&self.digest(seed)))
    }
    fn input_size(&self) -> usize {
        self.tile_size * self.tile_size
    }
    fn output_size(&self) -> usize {
        40
    }
}

// ---------------------------------------------------------------------------
// ML agent training
// ---------------------------------------------------------------------------

/// Wire codec for the hyper-parameter search: a learning rate as IEEE-754
/// bits, a [`mlagent::TrainingOutcome`] as two doubles, a step count and a
/// success count.
#[derive(Debug, Clone, Copy, Default)]
pub struct MlAgentCodec;

impl TaskCodec for MlAgentCodec {
    type Task = f64;
    type Result = mlagent::TrainingOutcome;

    fn encode_task(&self, task: &f64) -> Bytes {
        Bytes::copy_from_slice(&task.to_bits().to_be_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<f64, StreamError> {
        let rate = read_f64(bytes)?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StreamError::protocol("learning rate must be positive and finite"));
        }
        Ok(rate)
    }

    fn encode_result(&self, result: &mlagent::TrainingOutcome) -> Bytes {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(&result.learning_rate.to_bits().to_be_bytes());
        out.extend_from_slice(&result.final_reward.to_bits().to_be_bytes());
        out.extend_from_slice(&result.steps.to_be_bytes());
        out.extend_from_slice(&result.successes.to_be_bytes());
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<mlagent::TrainingOutcome, StreamError> {
        let (rate, rest) = split_at(bytes, 8)?;
        let (reward, rest) = split_at(rest, 8)?;
        let (steps, successes) = split_at(rest, 8)?;
        Ok(mlagent::TrainingOutcome {
            learning_rate: read_f64(rate)?,
            final_reward: read_f64(reward)?,
            steps: read_u64(steps)?,
            successes: read_u32(successes)?,
        })
    }
}

/// Q-learning training runs, one learning-rate candidate per input.
#[derive(Debug, Clone, Default)]
pub struct MlAgentApp {
    config: mlagent::TrainingConfig,
}

impl PandoApp for MlAgentApp {
    fn name(&self) -> &'static str {
        "ml-agent"
    }
    fn unit(&self) -> &'static str {
        "Steps/s"
    }
    fn input(&self, i: u64) -> Bytes {
        let candidates = mlagent::learning_rate_candidates(32);
        MlAgentCodec.encode_task(&candidates[(i as usize) % candidates.len()])
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let learning_rate = MlAgentCodec.decode_task(input)?;
        Ok(MlAgentCodec.encode_result(&mlagent::train(learning_rate, &self.config)))
    }
    fn input_size(&self) -> usize {
        8
    }
    fn output_size(&self) -> usize {
        28
    }
}

// ---------------------------------------------------------------------------
// Arxiv tagging
// ---------------------------------------------------------------------------

/// A tagged paper, the arxiv application's result type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedPaper {
    /// Identifier of the paper.
    pub id: String,
    /// The volunteer's verdict.
    pub tag: arxiv::Tag,
}

/// Wire codec for the crowd-tagging application: a [`arxiv::PaperMeta`] as
/// three length-prefixed UTF-8 fields, a [`TaggedPaper`] as the id and a tag
/// byte.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArxivCodec;

fn put_str(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_be_bytes());
    out.extend_from_slice(text.as_bytes());
}

fn take_str(bytes: &[u8]) -> Result<(String, &[u8]), StreamError> {
    let (len, rest) = split_at(bytes, 4)?;
    let len = read_u32(len)? as usize;
    let (text, rest) = split_at(rest, len)?;
    Ok((
        std::str::from_utf8(text)
            .map_err(|_| StreamError::protocol("field is not valid UTF-8"))?
            .to_string(),
        rest,
    ))
}

impl TaskCodec for ArxivCodec {
    type Task = arxiv::PaperMeta;
    type Result = TaggedPaper;

    fn encode_task(&self, task: &arxiv::PaperMeta) -> Bytes {
        let mut out =
            Vec::with_capacity(12 + task.id.len() + task.title.len() + task.abstract_text.len());
        put_str(&mut out, &task.id);
        put_str(&mut out, &task.title);
        put_str(&mut out, &task.abstract_text);
        Bytes::from(out)
    }

    fn decode_task(&self, bytes: &Payload) -> Result<arxiv::PaperMeta, StreamError> {
        let (id, rest) = take_str(bytes)?;
        let (title, rest) = take_str(rest)?;
        let (abstract_text, rest) = take_str(rest)?;
        if !rest.is_empty() {
            return Err(StreamError::protocol("trailing bytes after paper metadata"));
        }
        Ok(arxiv::PaperMeta { id, title, abstract_text })
    }

    fn encode_result(&self, result: &TaggedPaper) -> Bytes {
        let mut out = Vec::with_capacity(5 + result.id.len());
        put_str(&mut out, &result.id);
        out.push(match result.tag {
            arxiv::Tag::Interesting => 0,
            arxiv::Tag::NotRelevant => 1,
            arxiv::Tag::Unsure => 2,
        });
        Bytes::from(out)
    }

    fn decode_result(&self, bytes: &Payload) -> Result<TaggedPaper, StreamError> {
        let (id, rest) = take_str(bytes)?;
        let (tag, rest) = split_at(rest, 1)?;
        if !rest.is_empty() {
            return Err(StreamError::protocol("trailing bytes after tag"));
        }
        Ok(TaggedPaper {
            id,
            tag: match tag[0] {
                0 => arxiv::Tag::Interesting,
                1 => arxiv::Tag::NotRelevant,
                2 => arxiv::Tag::Unsure,
                other => {
                    return Err(StreamError::protocol(format!("unknown tag byte {other}")));
                }
            },
        })
    }
}

/// Crowd tagging with a simulated volunteer.
#[derive(Debug, Clone, Default)]
pub struct ArxivApp {
    tagger: arxiv::SimulatedTagger,
}

impl PandoApp for ArxivApp {
    fn name(&self) -> &'static str {
        "arxiv-tagging"
    }
    fn unit(&self) -> &'static str {
        "Papers/s"
    }
    fn input(&self, i: u64) -> Bytes {
        let corpus = arxiv::sample_corpus((i + 1) as usize);
        ArxivCodec.encode_task(&corpus[i as usize])
    }
    fn process(&self, input: &Payload) -> Result<Bytes, StreamError> {
        let paper = ArxivCodec.decode_task(input)?;
        let tag = self.tagger.tag(&paper);
        Ok(ArxivCodec.encode_result(&TaggedPaper { id: paper.id, tag }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_measured_app_round_trips_an_input() {
        for kind in AppKind::measured() {
            let app = kind.instantiate();
            let input = app.input(0);
            let output = app.process(&input).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(!output.is_empty(), "{} produced an empty result", app.name());
        }
    }

    #[test]
    fn app_names_and_units_are_distinct() {
        let apps: Vec<_> = AppKind::all().iter().map(|k| k.instantiate()).collect();
        let names: std::collections::HashSet<_> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), apps.len());
        for app in &apps {
            assert!(app.unit().ends_with("/s"));
        }
    }

    #[test]
    fn from_name_round_trips() {
        for kind in AppKind::all() {
            let name = kind.instantiate().name();
            assert_eq!(AppKind::from_name(name), Some(kind));
            assert_eq!(kind.to_string(), name);
        }
        assert_eq!(AppKind::from_name("unknown"), None);
    }

    #[test]
    fn collatz_codec_round_trips_and_computes() {
        let app = CollatzApp { first: 27 };
        assert_eq!(CollatzCodec.decode_task(&app.input(0)).unwrap(), 27);
        let result = CollatzCodec.decode_result(&app.process(&app.input(0)).unwrap()).unwrap();
        assert_eq!((result.start, result.steps), (27, 111));
        // Zero and garbage are rejected instead of panicking the worker.
        assert!(CollatzCodec.decode_task(&Bytes::copy_from_slice(&0u64.to_be_bytes())).is_err());
        assert!(app.process(&Bytes::copy_from_slice(b"xyz")).is_err());
    }

    #[test]
    fn crypto_codec_round_trips_attempts_and_outcomes() {
        let app = CryptoApp { range_size: 50, difficulty_bits: 1, ..CryptoApp::default() };
        let attempt = app.attempt(0);
        assert_eq!(CryptoCodec.decode_task(&CryptoCodec.encode_task(&attempt)).unwrap(), attempt);
        let outcome = CryptoCodec.decode_result(&app.process(&app.input(0)).unwrap()).unwrap();
        assert!(outcome.hashes > 0);
        for result in [
            crypto::MiningOutcome { nonce: Some(42), hashes: 100 },
            crypto::MiningOutcome { nonce: None, hashes: 50 },
        ] {
            assert_eq!(
                CryptoCodec.decode_result(&CryptoCodec.encode_result(&result)).unwrap(),
                result
            );
        }
        assert!(app.process(&Bytes::copy_from_slice(b"garbage")).is_err());
        assert_eq!(app.items_per_input(), 50);
    }

    #[test]
    fn raytrace_frames_travel_as_raw_pixels() {
        let app = RaytraceApp { width: 16, height: 12, frames: 4, ..RaytraceApp::default() };
        let frame = app.process(&app.input(1)).unwrap();
        // Exactly width*height RGB bytes: no base64 inflation (the string
        // protocol shipped (16*12*3)/3*4 = 768 characters for this frame).
        assert_eq!(frame.len(), 16 * 12 * 3);
        assert_eq!(app.output_size(), 16 * 12 * 3);
        assert!(app.process(&Bytes::copy_from_slice(b"angle?")).is_err());
        let not_finite = RaytraceCodec.encode_task(&f64::NAN);
        assert!(RaytraceCodec.decode_task(&not_finite).is_err());
    }

    #[test]
    fn image_processing_digests_are_deterministic() {
        let app = ImageProcApp { tile_size: 64, radius: 2 };
        let out_a = app.process(&ImageProcCodec.encode_task(&3)).unwrap();
        let out_b = app.process(&ImageProcCodec.encode_task(&3)).unwrap();
        assert_eq!(out_a, out_b, "processing is deterministic");
        assert_ne!(out_a, app.process(&ImageProcCodec.encode_task(&4)).unwrap());
        let digest = ImageProcCodec.decode_result(&out_a).unwrap();
        assert_eq!(digest.seed, 3);
        assert!(app.process(&Bytes::copy_from_slice(b"x")).is_err());
        assert!(ImageProcCodec.decode_result(&Bytes::copy_from_slice(b"too-short")).is_err());
    }

    #[test]
    fn ml_agent_codec_round_trips_outcomes() {
        let app = MlAgentApp::default();
        let outcome = MlAgentCodec
            .decode_result(&app.process(&MlAgentCodec.encode_task(&0.4)).unwrap())
            .unwrap();
        assert_eq!(outcome.learning_rate, 0.4);
        assert!(outcome.steps > 0);
        assert!(MlAgentCodec.decode_task(&MlAgentCodec.encode_task(&-1.0)).is_err());
        assert!(app.process(&Bytes::copy_from_slice(b"fast")).is_err());
    }

    #[test]
    fn arxiv_codec_round_trips_papers_and_tags() {
        let app = ArxivApp::default();
        let paper = arxiv::sample_corpus(1).remove(0);
        let wire = ArxivCodec.encode_task(&paper);
        assert_eq!(ArxivCodec.decode_task(&wire).unwrap(), paper);
        let tagged = ArxivCodec.decode_result(&app.process(&wire).unwrap()).unwrap();
        assert_eq!(tagged.id, paper.id);
        for tag in [arxiv::Tag::Interesting, arxiv::Tag::NotRelevant, arxiv::Tag::Unsure] {
            let result = TaggedPaper { id: "p1".into(), tag };
            assert_eq!(
                ArxivCodec.decode_result(&ArxivCodec.encode_result(&result)).unwrap(),
                result
            );
        }
        assert!(ArxivCodec.decode_task(&Bytes::copy_from_slice(b"\x00\x00\x00\xffhi")).is_err());
    }

    #[test]
    fn sl_test_verdicts_round_trip_including_violations() {
        let app = SlTestApp;
        for seed in 0..5u64 {
            let out = app.process(&SlTestCodec.encode_task(&seed)).unwrap();
            let verdict = SlTestCodec.decode_result(&out).unwrap();
            assert!(verdict.passed(), "seed {seed}: {verdict:?}");
            assert_eq!(verdict.seed, seed);
        }
        let failed = sl_test::ExecutionVerdict {
            seed: 9,
            inputs: 10,
            steps: 3,
            violation: Some("value 4 lost".to_string()),
        };
        assert_eq!(SlTestCodec.decode_result(&SlTestCodec.encode_result(&failed)).unwrap(), failed);
        assert!(app.process(&Bytes::copy_from_slice(b"3.5")).is_err());
    }
}
