//! The compute-bound applications evaluated with Pando (paper §4).
//!
//! Each application is implemented from scratch in Rust with the same
//! computational structure as the original JavaScript version:
//!
//! | Module | Paper application | Input | Output | Unit in Table 2 |
//! |---|---|---|---|---|
//! | [`collatz`] | Collatz conjecture (BOINC-style) | integer | number of steps | BigNums/s |
//! | [`crypto`] | Crypto-currency mining | block + nonce range | valid nonce or failure | Hashes/s |
//! | [`sl_test`] | StreamLender random testing | RNG seed | execution verdict | Tests/s |
//! | [`raytrace`] | Animation frame rendering | camera angle | pixel buffer | Frames/s |
//! | [`imageproc`] | Landsat-8 blur filtering | image tile | blurred tile | Images/s |
//! | [`mlagent`] | Hyper-parameter search for an RL agent | learning rate | reward curve | Steps/s |
//! | [`arxiv`] | Crowd tagging of papers | paper metadata | tag | (not measured) |
//!
//! The [`app`] module exposes every application two ways: a native
//! [`TaskCodec`](pando_pull_stream::codec::TaskCodec) per application (typed
//! tasks and results with compact binary wire layouts — raw pixels,
//! big-endian words, IEEE-754 bits) and the uniform binary-payload
//! [`app::PandoApp`] facade over those codecs, so the
//! distributed-map layer can treat them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod arxiv;
pub mod bignum;
pub mod collatz;
pub mod crypto;
pub mod imageproc;
pub mod mlagent;
pub mod raytrace;
pub mod sl_test;

pub use app::{AppKind, PandoApp};
