//! Hyper-parameter search for a reinforcement-learning agent (paper §4.1).
//!
//! The paper trains an autonomous agent in a simulated environment and
//! searches for the learning rate that makes it learn reward-producing
//! action sequences the fastest. The reproduction uses a classic grid-world:
//! the agent starts in a corner, must reach a goal while avoiding pits, and
//! is trained with tabular Q-learning. Each Pando input is one learning-rate
//! candidate; the output is the average reward over the final episodes, from
//! which the best hyper-parameter is selected downstream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of the square grid world.
pub const GRID: usize = 8;

/// The four movement actions.
const ACTIONS: [(i32, i32); 4] = [(0, 1), (0, -1), (1, 0), (-1, 0)];

/// Result of training one hyper-parameter candidate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingOutcome {
    /// The learning rate that was evaluated.
    pub learning_rate: f64,
    /// Average reward per episode over the last quarter of training.
    pub final_reward: f64,
    /// Total number of environment steps simulated (the unit of Table 2).
    pub steps: u64,
    /// Number of episodes that reached the goal.
    pub successes: u32,
}

/// Configuration of one training run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingConfig {
    /// Number of episodes to train for.
    pub episodes: u32,
    /// Maximum steps per episode before it is truncated.
    pub max_steps: u32,
    /// Discount factor.
    pub gamma: f64,
    /// Exploration rate (epsilon-greedy).
    pub epsilon: f64,
    /// Seed of the environment and exploration randomness.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self { episodes: 300, max_steps: 200, gamma: 0.97, epsilon: 0.15, seed: 7 }
    }
}

fn cell_reward(x: usize, y: usize) -> (f64, bool) {
    // Goal in the far corner, two pits on the way.
    if (x, y) == (GRID - 1, GRID - 1) {
        (10.0, true)
    } else if (x, y) == (3, 3) || (x, y) == (5, 2) {
        (-5.0, true)
    } else {
        (-0.05, false)
    }
}

/// Trains a tabular Q-learning agent with the given learning rate and returns
/// how well it ended up performing.
///
/// The computation is deterministic for a given `(learning_rate, config)`
/// pair, which keeps the distributed runs reproducible.
pub fn train(learning_rate: f64, config: &TrainingConfig) -> TrainingOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed ^ learning_rate.to_bits());
    let mut q = vec![[0.0f64; 4]; GRID * GRID];
    let mut steps = 0u64;
    let mut successes = 0u32;
    let mut final_rewards = Vec::new();
    let evaluation_window = (config.episodes / 4).max(1);

    for episode in 0..config.episodes {
        let (mut x, mut y) = (0usize, 0usize);
        let mut episode_reward = 0.0;
        for _ in 0..config.max_steps {
            let state = y * GRID + x;
            let action = if rng.gen::<f64>() < config.epsilon {
                rng.gen_range(0..4)
            } else {
                (0..4).max_by(|&a, &b| q[state][a].partial_cmp(&q[state][b]).unwrap()).unwrap()
            };
            let (dx, dy) = ACTIONS[action];
            let nx = (x as i32 + dx).clamp(0, GRID as i32 - 1) as usize;
            let ny = (y as i32 + dy).clamp(0, GRID as i32 - 1) as usize;
            let (reward, terminal) = cell_reward(nx, ny);
            let next_state = ny * GRID + nx;
            let best_next = q[next_state].iter().cloned().fold(f64::MIN, f64::max);
            let target = if terminal { reward } else { reward + config.gamma * best_next };
            q[state][action] += learning_rate * (target - q[state][action]);
            episode_reward += reward;
            steps += 1;
            x = nx;
            y = ny;
            if terminal {
                if reward > 0.0 {
                    successes += 1;
                }
                break;
            }
        }
        if episode + evaluation_window >= config.episodes {
            final_rewards.push(episode_reward);
        }
    }
    TrainingOutcome {
        learning_rate,
        final_reward: final_rewards.iter().sum::<f64>() / final_rewards.len() as f64,
        steps,
        successes,
    }
}

/// The hyper-parameter grid searched in the examples: learning rates spread
/// logarithmically between 0.01 and 1.0.
pub fn learning_rate_candidates(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = if n <= 1 { 0.0 } else { i as f64 / (n - 1) as f64 };
            10f64.powf(-2.0 + 2.0 * t)
        })
        .collect()
}

/// Picks the candidate with the highest final reward (the post-processing
/// stage of the hyper-parameter search pipeline).
pub fn best_candidate(
    outcomes: impl IntoIterator<Item = TrainingOutcome>,
) -> Option<TrainingOutcome> {
    outcomes.into_iter().max_by(|a, b| a.final_reward.partial_cmp(&b.final_reward).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_is_deterministic() {
        let config = TrainingConfig::default();
        assert_eq!(train(0.3, &config), train(0.3, &config));
    }

    #[test]
    fn reasonable_learning_rate_learns_the_task() {
        let config = TrainingConfig::default();
        let outcome = train(0.4, &config);
        assert!(outcome.successes > config.episodes / 4, "the agent should reach the goal often");
        assert!(
            outcome.final_reward > 0.0,
            "final reward {} should be positive",
            outcome.final_reward
        );
        assert!(outcome.steps > 0);
    }

    #[test]
    fn tiny_learning_rate_learns_worse() {
        let config = TrainingConfig::default();
        let good = train(0.4, &config);
        let bad = train(0.0001, &config);
        assert!(
            good.final_reward > bad.final_reward,
            "lr=0.4 ({}) must beat lr=0.0001 ({})",
            good.final_reward,
            bad.final_reward
        );
    }

    #[test]
    fn candidate_grid_is_log_spaced() {
        let candidates = learning_rate_candidates(5);
        assert_eq!(candidates.len(), 5);
        assert!((candidates[0] - 0.01).abs() < 1e-9);
        assert!((candidates[4] - 1.0).abs() < 1e-9);
        assert!(candidates.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(learning_rate_candidates(1), vec![0.01]);
    }

    #[test]
    fn best_candidate_selects_highest_reward() {
        let config = TrainingConfig { episodes: 120, ..TrainingConfig::default() };
        let outcomes: Vec<_> =
            learning_rate_candidates(4).into_iter().map(|lr| train(lr, &config)).collect();
        let best = best_candidate(outcomes.clone()).unwrap();
        assert!(outcomes.iter().all(|o| o.final_reward <= best.final_reward));
        assert!(best_candidate(std::iter::empty()).is_none());
    }

    #[test]
    fn different_learning_rates_give_different_results() {
        let config = TrainingConfig { episodes: 60, ..TrainingConfig::default() };
        assert_ne!(train(0.05, &config), train(0.8, &config));
    }
}
