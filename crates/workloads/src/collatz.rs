//! The Collatz-conjecture application (paper §4.1).
//!
//! For an input integer `n`, repeatedly apply `n -> n/2` when `n` is even and
//! `n -> 3n + 1` when it is odd, counting the steps until the value reaches 1.
//! The post-processing stage keeps the input with the largest step count. The
//! computation is done with [`crate::bignum::BigUint`] so that the
//! intermediate values may exceed 64 bits, as in the original BOINC project.

use crate::bignum::BigUint;

/// Result of one Collatz trajectory computation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CollatzResult {
    /// The starting value.
    pub start: u64,
    /// Number of steps needed to reach 1.
    pub steps: u64,
    /// Largest number of bits the trajectory reached.
    pub peak_bits: u64,
}

/// Counts the Collatz steps from `start` down to 1.
///
/// # Panics
///
/// Panics if `start` is zero: the Collatz map is defined on positive integers.
///
/// # Examples
///
/// ```
/// use pando_workloads::collatz::collatz_steps;
/// assert_eq!(collatz_steps(1).steps, 0);
/// assert_eq!(collatz_steps(6).steps, 8);
/// assert_eq!(collatz_steps(27).steps, 111);
/// ```
pub fn collatz_steps(start: u64) -> CollatzResult {
    assert!(start > 0, "the Collatz map is defined on positive integers");
    let mut value = BigUint::from_u64(start);
    let mut steps = 0u64;
    let mut peak_bits = value.bit_len() as u64;
    while !value.is_one() {
        if value.is_even() {
            value.div2();
        } else {
            value.mul_small(3);
            value.add_small(1);
        }
        steps += 1;
        peak_bits = peak_bits.max(value.bit_len() as u64);
    }
    CollatzResult { start, steps, peak_bits }
}

/// Finds, among `starts`, the value with the longest Collatz trajectory — the
/// post-processing stage of the pipeline (paper Figure 10: "Max").
pub fn longest_trajectory(starts: impl IntoIterator<Item = u64>) -> Option<CollatzResult> {
    starts.into_iter().map(collatz_steps).max_by_key(|r| r.steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_step_counts() {
        // Reference values of the standard Collatz step counts.
        let expected =
            [(1u64, 0u64), (2, 1), (3, 7), (4, 2), (5, 5), (6, 8), (7, 16), (27, 111), (97, 118)];
        for (start, steps) in expected {
            assert_eq!(collatz_steps(start).steps, steps, "steps({start})");
        }
    }

    #[test]
    #[should_panic(expected = "positive integers")]
    fn zero_is_rejected() {
        let _ = collatz_steps(0);
    }

    #[test]
    fn peak_exceeds_start_for_odd_inputs() {
        let result = collatz_steps(27);
        assert!(result.peak_bits > BigUint::from_u64(27).bit_len() as u64);
    }

    #[test]
    fn longest_trajectory_in_range() {
        let best = longest_trajectory(1..=100).unwrap();
        assert_eq!(best.start, 97);
        assert_eq!(best.steps, 118);
        assert!(longest_trajectory(std::iter::empty()).is_none());
    }

    #[test]
    fn trajectories_terminate_for_a_large_sample() {
        for start in 1..500u64 {
            let result = collatz_steps(start);
            assert!(result.steps < 1000, "start {start} took too many steps");
        }
    }
}
