//! Crypto-currency mining: SHA-256 proof-of-work (paper §4.2).
//!
//! The synchronous parallel search application: a monitor hands each worker a
//! block header and a nonce range; the worker hashes every nonce in the range
//! and reports either a nonce whose double-SHA-256 hash is below the target
//! or a failure, after which the monitor issues new ranges until the block is
//! solved. SHA-256 is implemented from scratch (FIPS 180-4).

/// Computes the SHA-256 digest of `data`.
///
/// # Examples
///
/// ```
/// use pando_workloads::crypto::sha256_hex;
/// assert_eq!(
///     sha256_hex(b"abc"),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Padding: 0x80, zeros, then the bit length as a 64-bit big-endian value.
    let mut message = data.to_vec();
    let bit_len = (data.len() as u64) * 8;
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in message.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 digest as a lowercase hexadecimal string.
pub fn sha256_hex(data: &[u8]) -> String {
    sha256(data).iter().map(|b| format!("{b:02x}")).collect()
}

/// A mining work unit: try every nonce in `nonce_range` against `block`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MiningAttempt {
    /// Serialized block header (transactions digest, previous hash, ...).
    pub block: String,
    /// First nonce to try (inclusive).
    pub nonce_start: u64,
    /// Last nonce to try (exclusive).
    pub nonce_end: u64,
    /// Difficulty: number of leading zero bits required in the hash.
    pub difficulty_bits: u32,
}

/// The outcome of one [`MiningAttempt`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MiningOutcome {
    /// The nonce that satisfied the difficulty, if any was found in the range.
    pub nonce: Option<u64>,
    /// Number of hashes computed (for throughput accounting).
    pub hashes: u64,
}

/// Returns `true` if `hash` has at least `bits` leading zero bits.
pub fn meets_difficulty(hash: &[u8; 32], bits: u32) -> bool {
    let mut remaining = bits;
    for byte in hash {
        if remaining == 0 {
            return true;
        }
        let zeros = byte.leading_zeros();
        if remaining <= 8 {
            return zeros >= remaining;
        }
        if *byte != 0 {
            return false;
        }
        remaining -= 8;
    }
    remaining == 0
}

/// Hashes every nonce of the attempt (double SHA-256 as in Bitcoin) and
/// reports the first nonce meeting the difficulty, if any.
pub fn mine(attempt: &MiningAttempt) -> MiningOutcome {
    let mut hashes = 0u64;
    for nonce in attempt.nonce_start..attempt.nonce_end {
        let material = format!("{}:{nonce}", attempt.block);
        let digest = sha256(&sha256(material.as_bytes()));
        hashes += 1;
        if meets_difficulty(&digest, attempt.difficulty_bits) {
            return MiningOutcome { nonce: Some(nonce), hashes };
        }
    }
    MiningOutcome { nonce: None, hashes }
}

/// Verifies that `nonce` solves `block` at the given difficulty.
pub fn verify(block: &str, nonce: u64, difficulty_bits: u32) -> bool {
    let digest = sha256(&sha256(format!("{block}:{nonce}").as_bytes()));
    meets_difficulty(&digest, difficulty_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A message longer than one block.
        assert_eq!(
            sha256_hex(&[b'a'; 1000]),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn difficulty_check_counts_leading_zero_bits() {
        let mut hash = [0u8; 32];
        hash[0] = 0b0000_1111;
        assert!(meets_difficulty(&hash, 4));
        assert!(!meets_difficulty(&hash, 5));
        assert!(meets_difficulty(&[0u8; 32], 256));
        assert!(meets_difficulty(&[0xffu8; 32], 0));
        let mut two_bytes = [0xffu8; 32];
        two_bytes[0] = 0;
        two_bytes[1] = 0x7f;
        assert!(meets_difficulty(&two_bytes, 9));
        assert!(!meets_difficulty(&two_bytes, 10));
    }

    #[test]
    fn mining_finds_a_verifiable_nonce() {
        let attempt = MiningAttempt {
            block: "block-42:prev-hash-abcdef".to_string(),
            nonce_start: 0,
            nonce_end: 100_000,
            difficulty_bits: 10,
        };
        let outcome = mine(&attempt);
        let nonce = outcome.nonce.expect("difficulty 10 is found quickly");
        assert!(verify(&attempt.block, nonce, attempt.difficulty_bits));
        assert!(outcome.hashes >= nonce - attempt.nonce_start);
    }

    #[test]
    fn mining_reports_failure_when_range_is_exhausted() {
        let attempt = MiningAttempt {
            block: "hard block".to_string(),
            nonce_start: 0,
            nonce_end: 10,
            difficulty_bits: 40,
        };
        let outcome = mine(&attempt);
        assert_eq!(outcome.nonce, None);
        assert_eq!(outcome.hashes, 10);
    }

    #[test]
    fn different_blocks_need_different_nonces() {
        let a = mine(&MiningAttempt {
            block: "block-a".into(),
            nonce_start: 0,
            nonce_end: 1 << 20,
            difficulty_bits: 12,
        });
        let b = mine(&MiningAttempt {
            block: "block-b".into(),
            nonce_start: 0,
            nonce_end: 1 << 20,
            difficulty_bits: 12,
        });
        assert!(a.nonce.is_some() && b.nonce.is_some());
        assert_ne!(a.nonce, b.nonce, "hash function must depend on the block");
    }

    #[test]
    fn verify_rejects_wrong_nonce() {
        let attempt = MiningAttempt {
            block: "block".into(),
            nonce_start: 0,
            nonce_end: 1 << 20,
            difficulty_bits: 12,
        };
        let nonce = mine(&attempt).nonce.unwrap();
        assert!(verify("block", nonce, 12));
        assert!(!verify("block", nonce + 1, 12) || nonce + 1 == mine(&attempt).nonce.unwrap());
    }
}
