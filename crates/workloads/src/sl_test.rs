//! StreamLender random-execution testing (paper §4.1).
//!
//! The paper distributes randomized executions of the StreamLender itself as
//! a workload: each input is an RNG seed, each worker runs a random schedule
//! of borrows, returns, crashes and joins against a fresh StreamLender and
//! checks that the invariants of the pull-stream protocol and of the
//! programming model hold. The same harness is reused here both as a
//! workload (one `Tests/s` unit of Table 2 is one seeded execution) and as a
//! correctness amplifier alongside the proptest suites.

use pando_pull_stream::lender::{Lend, StreamLender, SubStream};
use pando_pull_stream::source::count;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The verdict of one randomized execution.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecutionVerdict {
    /// The seed that drove the execution.
    pub seed: u64,
    /// Number of input values in the execution.
    pub inputs: u64,
    /// Number of schedule steps executed.
    pub steps: u32,
    /// `None` if all invariants held, otherwise a description of the failure.
    pub violation: Option<String>,
}

impl ExecutionVerdict {
    /// Returns `true` if the execution upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

struct RandomWorker {
    sub: Option<SubStream<u64, u64>>,
    held: Vec<Lend<u64>>,
}

/// Runs one randomized StreamLender execution driven by `seed` and checks the
/// programming-model invariants: the output is the ordered map of the input
/// and no value is lost or duplicated despite crashes and late joins.
pub fn run_random_execution(seed: u64) -> ExecutionVerdict {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = rng.gen_range(0..60u64);
    let steps = rng.gen_range(0..120u32);
    let lender: StreamLender<u64, u64> = StreamLender::new(count(inputs));
    let mut workers: Vec<RandomWorker> = (0..rng.gen_range(1..4))
        .map(|_| RandomWorker { sub: Some(lender.lend()), held: Vec::new() })
        .collect();

    for _ in 0..steps {
        let idx = rng.gen_range(0..workers.len());
        match rng.gen_range(0..10) {
            0..=4 => {
                let worker = &mut workers[idx];
                if let Some(sub) = worker.sub.as_mut() {
                    if let Some(lend) = sub.try_next_task() {
                        worker.held.push(lend);
                    }
                }
            }
            5..=7 => {
                let worker = &mut workers[idx];
                if let Some(sub) = worker.sub.as_mut() {
                    if !worker.held.is_empty() {
                        let at = rng.gen_range(0..worker.held.len());
                        let lend = worker.held.remove(at);
                        if sub.push_result(lend.seq, lend.value * 2).is_err() {
                            return ExecutionVerdict {
                                seed,
                                inputs,
                                steps,
                                violation: Some(format!(
                                    "result for held value {} was rejected",
                                    lend.seq
                                )),
                            };
                        }
                    }
                }
            }
            8 => {
                let worker = &mut workers[idx];
                worker.sub = None;
                worker.held.clear();
            }
            _ => workers.push(RandomWorker { sub: Some(lender.lend()), held: Vec::new() }),
        }
    }

    // Finish deterministically: survivors return what they hold, one reliable
    // worker drains the rest, and the output is checked.
    for worker in &mut workers {
        if let Some(sub) = worker.sub.as_mut() {
            for lend in worker.held.drain(..) {
                let _ = sub.push_result(lend.seq, lend.value * 2);
            }
        }
    }
    workers.clear();
    let finisher = {
        let mut sub = lender.lend();
        std::thread::spawn(move || {
            while let Some(task) = sub.next_task() {
                let _ = sub.push_result(task.seq, task.value * 2);
            }
            sub.complete();
        })
    };
    let output = match pando_pull_stream::sink::collect(lender.output()) {
        Ok(values) => values,
        Err(err) => {
            return ExecutionVerdict {
                seed,
                inputs,
                steps,
                violation: Some(format!("output stream failed: {err}")),
            }
        }
    };
    finisher.join().expect("finisher thread never panics");

    let expected: Vec<u64> = (1..=inputs).map(|v| v * 2).collect();
    let violation = if output != expected {
        Some(format!(
            "output mismatch: expected {} ordered results, got {}",
            expected.len(),
            output.len()
        ))
    } else {
        None
    };
    ExecutionVerdict { seed, inputs, steps, violation }
}

/// Runs `n` consecutive seeded executions and reports how many passed.
pub fn run_batch(first_seed: u64, n: u64) -> (u64, Vec<ExecutionVerdict>) {
    let verdicts: Vec<ExecutionVerdict> =
        (first_seed..first_seed + n).map(run_random_execution).collect();
    let passed = verdicts.iter().filter(|v| v.passed()).count() as u64;
    (passed, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_execution_passes() {
        let verdict = run_random_execution(1);
        assert!(verdict.passed(), "violation: {:?}", verdict.violation);
        assert_eq!(verdict.seed, 1);
    }

    #[test]
    fn executions_are_deterministic_per_seed() {
        assert_eq!(run_random_execution(17), run_random_execution(17));
    }

    #[test]
    fn a_batch_of_executions_all_pass() {
        let (passed, verdicts) = run_batch(0, 40);
        let failures: Vec<_> = verdicts.iter().filter(|v| !v.passed()).collect();
        assert!(failures.is_empty(), "failures: {failures:?}");
        assert_eq!(passed, 40);
    }
}
