//! Stubborn processing (`pull-stubborn`): resubmission of inputs whose
//! results could not be confirmed.
//!
//! When result data is distributed through an external, failure-prone
//! protocol (paper §4.3: DAT or WebTorrent), a worker may report success while
//! the actual data transfer later fails. The *stubborn* module closes that
//! loop: inputs are produced from an underlying source plus a resubmission
//! queue; the application confirms each result after it has fully downloaded
//! the associated data, and resubmits the input otherwise. An input keeps
//! being resubmitted until it is confirmed or until a configurable retry
//! budget is exhausted.

use crate::error::StreamError;
use crate::protocol::{Answer, Request};
use crate::source::{BoxSource, Source};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

#[derive(Debug)]
struct StubbornState<T> {
    /// Inputs waiting to be (re)submitted, most urgent first.
    pending_retries: VecDeque<(u64, T)>,
    /// Inputs currently submitted and not yet confirmed.
    outstanding: HashMap<u64, (T, u32)>,
    /// Identifier for the next fresh input read from the underlying source.
    next_id: u64,
    /// Number of confirmations received.
    confirmed: u64,
    /// Number of resubmissions performed.
    resubmissions: u64,
    /// Inputs dropped because they exhausted the retry budget.
    abandoned: Vec<T>,
    upstream_done: bool,
    upstream_error: Option<StreamError>,
    closed: bool,
}

/// Shared coordination between the [`StubbornQueue`] source and its
/// [`StubbornHandle`].
#[derive(Debug)]
struct StubbornShared<T> {
    state: Mutex<StubbornState<T>>,
    changed: Condvar,
    max_attempts: u32,
}

/// An input produced by a [`StubbornQueue`], tagged with a tracking
/// identifier to confirm or resubmit it later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tracked<T = ()> {
    /// Identifier used with [`StubbornHandle::confirm`] / [`StubbornHandle::resubmit`].
    pub id: u64,
    /// Attempt number, starting at 1 for the first submission.
    pub attempt: u32,
    /// The input value.
    pub value: T,
}

/// Source of inputs that keeps resubmitting unconfirmed values.
///
/// `StubbornQueue` wraps an underlying source of inputs. Values flow out of
/// it like any other source; the application must eventually call
/// [`StubbornHandle::confirm`] for every produced value or
/// [`StubbornHandle::resubmit`] to schedule it again. The queue terminates
/// only when the underlying source is exhausted **and** every produced value
/// has been confirmed or abandoned — the stubborn part.
///
/// # Examples
///
/// ```
/// use pando_pull_stream::stubborn::StubbornQueue;
/// use pando_pull_stream::source::{values, SourceExt};
/// use pando_pull_stream::{Answer, Request, Source};
///
/// let (mut queue, handle) = StubbornQueue::new(values(vec!["img-1"]), 3);
/// let first = match queue.pull(Request::Ask) {
///     Answer::Value(tracked) => tracked,
///     other => panic!("unexpected {other:?}"),
/// };
/// // The download failed: resubmit, the value comes out again.
/// handle.resubmit(first.id).unwrap();
/// let second = match queue.pull(Request::Ask) {
///     Answer::Value(tracked) => tracked,
///     other => panic!("unexpected {other:?}"),
/// };
/// assert_eq!(second.value, "img-1");
/// assert_eq!(second.attempt, 2);
/// handle.confirm(second.id).unwrap();
/// assert_eq!(queue.pull(Request::Ask), Answer::Done);
/// ```
pub struct StubbornQueue<T> {
    shared: Arc<StubbornShared<T>>,
    upstream: BoxSource<T>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for StubbornQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StubbornQueue").finish_non_exhaustive()
    }
}

/// Handle used to confirm or resubmit values produced by a [`StubbornQueue`].
#[derive(Debug)]
pub struct StubbornHandle<T> {
    shared: Arc<StubbornShared<T>>,
}

impl<T> Clone for StubbornHandle<T> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

/// Counters observed by a [`StubbornQueue`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StubbornStats {
    /// Number of confirmations received.
    pub confirmed: u64,
    /// Number of resubmissions performed.
    pub resubmissions: u64,
    /// Number of inputs abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Number of inputs currently outstanding (submitted, unconfirmed).
    pub outstanding: u64,
}

impl<T: Clone + Send + 'static> StubbornQueue<T> {
    /// Wraps `upstream`, allowing each value at most `max_attempts`
    /// submissions (the first submission counts as one attempt).
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(upstream: impl Source<T> + 'static, max_attempts: u32) -> (Self, StubbornHandle<T>) {
        assert!(max_attempts > 0, "max_attempts must be at least 1");
        let shared = Arc::new(StubbornShared {
            state: Mutex::new(StubbornState {
                pending_retries: VecDeque::new(),
                outstanding: HashMap::new(),
                next_id: 0,
                confirmed: 0,
                resubmissions: 0,
                abandoned: Vec::new(),
                upstream_done: false,
                upstream_error: None,
                closed: false,
            }),
            changed: Condvar::new(),
            max_attempts,
        });
        (Self { shared: shared.clone(), upstream: Box::new(upstream) }, StubbornHandle { shared })
    }
}

impl<T: Clone + Send + 'static> Source<Tracked<T>> for StubbornQueue<T> {
    fn pull(&mut self, request: Request) -> Answer<Tracked<T>> {
        if request.is_termination() {
            let mut state = self.shared.state.lock();
            state.closed = true;
            drop(state);
            self.shared.changed.notify_all();
            let _ = self.upstream.pull(request.clone());
            return match request {
                Request::Fail(err) => Answer::Err(err),
                _ => Answer::Done,
            };
        }
        loop {
            // 1. Resubmissions take priority over fresh values.
            {
                let mut state = self.shared.state.lock();
                if state.closed {
                    return Answer::Done;
                }
                if let Some((id, value)) = state.pending_retries.pop_front() {
                    let attempts = state.outstanding.get(&id).map(|(_, a)| *a).unwrap_or(0) + 1;
                    state.outstanding.insert(id, (value.clone(), attempts));
                    return Answer::Value(Tracked { id, attempt: attempts, value });
                }
                if state.upstream_done {
                    if state.outstanding.is_empty() {
                        return match state.upstream_error.clone() {
                            Some(err) => Answer::Err(err),
                            None => Answer::Done,
                        };
                    }
                    // Wait stubbornly: a confirmation or resubmission will
                    // wake us up.
                    self.shared.changed.wait(&mut state);
                    continue;
                }
            }
            // 2. Read a fresh value from the underlying source (outside the
            //    lock so confirmations are never blocked by a slow source).
            match self.upstream.pull(Request::Ask) {
                Answer::Value(value) => {
                    let mut state = self.shared.state.lock();
                    let id = state.next_id;
                    state.next_id += 1;
                    state.outstanding.insert(id, (value.clone(), 1));
                    return Answer::Value(Tracked { id, attempt: 1, value });
                }
                Answer::Done => {
                    let mut state = self.shared.state.lock();
                    state.upstream_done = true;
                }
                Answer::Err(err) => {
                    let mut state = self.shared.state.lock();
                    state.upstream_done = true;
                    state.upstream_error = Some(err);
                }
            }
        }
    }
}

impl<T: Clone + Send + 'static> StubbornHandle<T> {
    /// Confirms that the result for the value identified by `id` was fully
    /// received; the value will never be resubmitted.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if `id` is unknown or already settled.
    pub fn confirm(&self, id: u64) -> Result<(), StreamError> {
        let mut state = self.shared.state.lock();
        if state.outstanding.remove(&id).is_none() {
            return Err(StreamError::protocol(format!("confirm for unknown input {id}")));
        }
        state.confirmed += 1;
        drop(state);
        self.shared.changed.notify_all();
        Ok(())
    }

    /// Schedules the value identified by `id` for resubmission, typically
    /// because the external data transfer failed.
    ///
    /// If the value already used its full retry budget it is abandoned
    /// instead and `Ok(false)` is returned.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if `id` is unknown or already settled.
    pub fn resubmit(&self, id: u64) -> Result<bool, StreamError> {
        let mut state = self.shared.state.lock();
        let Some((value, attempts)) = state.outstanding.get(&id).cloned() else {
            return Err(StreamError::protocol(format!("resubmit for unknown input {id}")));
        };
        if attempts >= self.shared.max_attempts {
            state.outstanding.remove(&id);
            state.abandoned.push(value);
            drop(state);
            self.shared.changed.notify_all();
            return Ok(false);
        }
        state.resubmissions += 1;
        state.pending_retries.push_back((id, value));
        drop(state);
        self.shared.changed.notify_all();
        Ok(true)
    }

    /// A snapshot of the queue's counters.
    pub fn stats(&self) -> StubbornStats {
        let state = self.shared.state.lock();
        StubbornStats {
            confirmed: state.confirmed,
            resubmissions: state.resubmissions,
            abandoned: state.abandoned.len() as u64,
            outstanding: state.outstanding.len() as u64,
        }
    }

    /// The inputs abandoned after exhausting their retry budget.
    pub fn abandoned(&self) -> Vec<T> {
        self.shared.state.lock().abandoned.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{count, values};
    use std::thread;
    use std::time::Duration;

    fn pull_value<T: Clone + Send + 'static>(queue: &mut StubbornQueue<T>) -> Tracked<T> {
        match queue.pull(Request::Ask) {
            Answer::Value(v) => v,
            other => panic!("expected a value, got {:?}", other.is_done()),
        }
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempts_panics() {
        let _ = StubbornQueue::new(count(1), 0);
    }

    #[test]
    fn all_confirmed_terminates() {
        let (mut queue, handle) = StubbornQueue::new(count(3), 3);
        for expected in 1..=3u64 {
            let tracked = pull_value(&mut queue);
            assert_eq!(tracked.value, expected);
            assert_eq!(tracked.attempt, 1);
            handle.confirm(tracked.id).unwrap();
        }
        assert_eq!(queue.pull(Request::Ask), Answer::Done);
        assert_eq!(handle.stats().confirmed, 3);
    }

    #[test]
    fn resubmitted_value_comes_back() {
        let (mut queue, handle) = StubbornQueue::new(values(vec!["a", "b"]), 5);
        let a1 = pull_value(&mut queue);
        let b1 = pull_value(&mut queue);
        assert!(handle.resubmit(a1.id).unwrap());
        handle.confirm(b1.id).unwrap();
        let a2 = pull_value(&mut queue);
        assert_eq!(a2.value, "a");
        assert_eq!(a2.attempt, 2);
        assert_eq!(a2.id, a1.id);
        handle.confirm(a2.id).unwrap();
        assert_eq!(queue.pull(Request::Ask), Answer::Done);
        assert_eq!(handle.stats().resubmissions, 1);
    }

    #[test]
    fn retry_budget_abandons_value() {
        let (mut queue, handle) = StubbornQueue::new(values(vec![42u32]), 2);
        let first = pull_value(&mut queue);
        assert!(handle.resubmit(first.id).unwrap());
        let second = pull_value(&mut queue);
        assert_eq!(second.attempt, 2);
        // Budget exhausted: the resubmission is refused and the value abandoned.
        assert!(!handle.resubmit(second.id).unwrap());
        assert_eq!(queue.pull(Request::Ask), Answer::Done);
        assert_eq!(handle.abandoned(), vec![42]);
        assert_eq!(handle.stats().abandoned, 1);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (_queue, handle) = StubbornQueue::new(count(1), 2);
        assert!(handle.confirm(7).unwrap_err().is_protocol());
        assert!(handle.resubmit(7).unwrap_err().is_protocol());
    }

    #[test]
    fn double_confirm_is_rejected() {
        let (mut queue, handle) = StubbornQueue::new(count(1), 2);
        let t = pull_value(&mut queue);
        handle.confirm(t.id).unwrap();
        assert!(handle.confirm(t.id).is_err());
    }

    #[test]
    fn waits_for_late_confirmation_before_terminating() {
        let (mut queue, handle) = StubbornQueue::new(count(1), 3);
        let t = pull_value(&mut queue);
        // Confirm from another thread after a delay: the pull below must block
        // stubbornly until then instead of terminating early.
        let confirmer = {
            let handle = handle.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(50));
                handle.confirm(t.id).unwrap();
            })
        };
        assert_eq!(queue.pull(Request::Ask), Answer::Done);
        confirmer.join().unwrap();
    }

    #[test]
    fn abort_terminates_even_with_outstanding_values() {
        let (mut queue, handle) = StubbornQueue::new(count(10), 3);
        let t = pull_value(&mut queue);
        assert_eq!(queue.pull(Request::Abort), Answer::Done);
        assert_eq!(queue.pull(Request::Ask), Answer::Done);
        // Confirming afterwards is still accepted (the value was outstanding).
        handle.confirm(t.id).unwrap();
    }

    #[test]
    fn upstream_error_is_reported_after_outstanding_settled() {
        let (mut queue, handle) =
            StubbornQueue::new(crate::source::failing::<u32>(StreamError::new("source broke")), 2);
        let answer = queue.pull(Request::Ask);
        assert_eq!(answer, Answer::Err(StreamError::new("source broke")));
        assert_eq!(handle.stats().outstanding, 0);
    }

    #[test]
    fn stats_track_outstanding() {
        let (mut queue, handle) = StubbornQueue::new(count(5), 3);
        let _a = pull_value(&mut queue);
        let _b = pull_value(&mut queue);
        assert_eq!(handle.stats().outstanding, 2);
    }
}
