//! Sources: the producing end of a pull-stream, plus constructors for common
//! sources and the [`SourceExt`] combinator extension trait.

use crate::error::StreamError;
use crate::iter::IntoValues;
use crate::protocol::{Answer, Request};
use crate::sink;
use crate::through;

/// The producing end of a pull-stream.
///
/// A source is pulled by its consumer: every call to [`Source::pull`] with
/// [`Request::Ask`] produces at most one value. A source must obey the
/// protocol discipline of the pull-stream pattern:
///
/// * after answering [`Answer::Done`] or [`Answer::Err`], every subsequent
///   pull must keep answering a termination (idempotent termination);
/// * after receiving [`Request::Abort`] or [`Request::Fail`], the source must
///   release its resources and answer with a termination.
///
/// Sources provided by this crate follow the discipline; combinators in
/// [`SourceExt`] preserve it.
///
/// # Examples
///
/// ```
/// use pando_pull_stream::{Answer, Request, Source};
/// use pando_pull_stream::source::count;
///
/// let mut source = count(2);
/// assert_eq!(source.pull(Request::Ask), Answer::Value(1));
/// assert_eq!(source.pull(Request::Ask), Answer::Value(2));
/// assert_eq!(source.pull(Request::Ask), Answer::Done);
/// // Termination is idempotent.
/// assert_eq!(source.pull(Request::Ask), Answer::Done);
/// ```
pub trait Source<T>: Send {
    /// Answers a single request from the downstream consumer.
    fn pull(&mut self, request: Request) -> Answer<T>;

    /// Non-blocking ask: `Some(answer)` if the source can answer *right now*
    /// without waiting on another party, `None` if it would have to wait.
    ///
    /// The default conservatively reports `None` ("would block"), which is
    /// the safe answer for interactive sources (a stubborn queue waiting for
    /// resubmissions, a network endpoint, standard input). In-memory sources
    /// and pure adapters override it, which is what lets the batching
    /// dispatcher of the master coalesce whatever is immediately available
    /// into one frame without risking a deadlock on values it has not sent
    /// yet.
    fn try_pull(&mut self) -> Option<Answer<T>> {
        None
    }
}

/// A boxed, type-erased [`Source`].
pub type BoxSource<T> = Box<dyn Source<T> + Send>;

impl<T> Source<T> for BoxSource<T> {
    fn pull(&mut self, request: Request) -> Answer<T> {
        self.as_mut().pull(request)
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        self.as_mut().try_pull()
    }
}

impl<T, F> Source<T> for F
where
    F: FnMut(Request) -> Answer<T> + Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        self(request)
    }
}

/// Extension methods available on every [`Source`].
///
/// These mirror the pull-stream module ecosystem used by Pando: `map`,
/// `asyncMap` ([`SourceExt::try_map`]), `filter`, `take`, `drain`, `collect`,
/// and free-form composition with [`SourceExt::through`].
pub trait SourceExt<T>: Source<T> + Sized + 'static
where
    T: Send + 'static,
{
    /// Boxes the source, erasing its concrete type.
    fn boxed(self) -> BoxSource<T> {
        Box::new(self)
    }

    /// Transforms every value with `f` (the pull-stream `map` module).
    ///
    /// ```
    /// use pando_pull_stream::source::{count, SourceExt};
    /// let doubled: Vec<u64> = count(3).map_values(|x| x * 2).collect_values().unwrap();
    /// assert_eq!(doubled, vec![2, 4, 6]);
    /// ```
    fn map_values<U, F>(self, f: F) -> through::Map<Self, F, T>
    where
        U: Send + 'static,
        F: FnMut(T) -> U + Send + 'static,
    {
        through::Map::new(self, f)
    }

    /// Transforms every value with a fallible `f` (the pull-stream `asyncMap`
    /// module used by Pando workers). The first error terminates the stream
    /// with [`Answer::Err`] and aborts the upstream source.
    ///
    /// ```
    /// use pando_pull_stream::source::{count, SourceExt};
    /// use pando_pull_stream::StreamError;
    /// let result = count(10)
    ///     .try_map(|x| if x < 4 { Ok(x) } else { Err(StreamError::new("too big")) })
    ///     .collect_values();
    /// assert!(result.is_err());
    /// ```
    fn try_map<U, F>(self, f: F) -> through::TryMap<Self, F, T>
    where
        U: Send + 'static,
        F: FnMut(T) -> Result<U, StreamError> + Send + 'static,
    {
        through::TryMap::new(self, f)
    }

    /// Keeps only the values for which `predicate` returns `true`.
    ///
    /// ```
    /// use pando_pull_stream::source::{count, SourceExt};
    /// let even: Vec<u64> = count(6).filter_values(|x| x % 2 == 0).collect_values().unwrap();
    /// assert_eq!(even, vec![2, 4, 6]);
    /// ```
    fn filter_values<F>(self, predicate: F) -> through::Filter<Self, F>
    where
        F: FnMut(&T) -> bool + Send + 'static,
    {
        through::Filter::new(self, predicate)
    }

    /// Maps and filters in a single pass.
    fn filter_map_values<U, F>(self, f: F) -> through::FilterMap<Self, F, T>
    where
        U: Send + 'static,
        F: FnMut(T) -> Option<U> + Send + 'static,
    {
        through::FilterMap::new(self, f)
    }

    /// Passes at most `n` values through, then aborts the upstream source.
    ///
    /// ```
    /// use pando_pull_stream::source::{infinite, SourceExt};
    /// let three: Vec<u64> = infinite(|i| i).take_values(3).collect_values().unwrap();
    /// assert_eq!(three, vec![0, 1, 2]);
    /// ```
    fn take_values(self, n: usize) -> through::Take<Self> {
        through::Take::new(self, n)
    }

    /// Calls `f` on a reference to every value flowing through, unchanged.
    fn inspect_values<F>(self, f: F) -> through::Inspect<Self, F>
    where
        F: FnMut(&T) + Send + 'static,
    {
        through::Inspect::new(self, f)
    }

    /// Applies an arbitrary through (transformer) constructor, enabling
    /// pipeline composition in the style of `pull(source, through, sink)`.
    ///
    /// ```
    /// use pando_pull_stream::source::{count, SourceExt};
    /// use pando_pull_stream::through::Map;
    /// let out: Vec<u64> = count(3)
    ///     .through(|s| Map::new(s, |x: u64| x + 10))
    ///     .collect_values()
    ///     .unwrap();
    /// assert_eq!(out, vec![11, 12, 13]);
    /// ```
    fn through<U, S, F>(self, f: F) -> S
    where
        S: Source<U>,
        F: FnOnce(Self) -> S,
    {
        f(self)
    }

    /// Drives the stream to completion, discarding values (the `drain` sink).
    ///
    /// # Errors
    ///
    /// Returns the stream error if the source terminates with one.
    fn drain_all(self) -> Result<usize, StreamError> {
        sink::drain(self)
    }

    /// Collects every value into a `Vec` (the `collect` sink).
    ///
    /// # Errors
    ///
    /// Returns the stream error if the source terminates with one.
    fn collect_values(self) -> Result<Vec<T>, StreamError> {
        sink::collect(self)
    }

    /// Calls `f` for every value until the stream terminates.
    ///
    /// # Errors
    ///
    /// Returns the stream error if the source terminates with one.
    fn for_each_value<F>(self, f: F) -> Result<(), StreamError>
    where
        F: FnMut(T),
    {
        sink::for_each(self, f)
    }

    /// Converts the source into a standard [`Iterator`] over its values.
    ///
    /// Errors terminate the iteration; use [`IntoValues::end`] afterwards to
    /// learn how the stream terminated.
    fn into_values(self) -> IntoValues<Self, T> {
        IntoValues::new(self)
    }
}

impl<T, S> SourceExt<T> for S
where
    S: Source<T> + Sized + 'static,
    T: Send + 'static,
{
}

/// A source over the items of any [`IntoIterator`].
///
/// ```
/// use pando_pull_stream::source::{from_iter, SourceExt};
/// let out: Vec<&str> = from_iter(["a", "b"]).collect_values().unwrap();
/// assert_eq!(out, vec!["a", "b"]);
/// ```
pub fn from_iter<I>(iter: I) -> IterSource<I::IntoIter>
where
    I: IntoIterator,
    I::IntoIter: Send,
    I::Item: Send,
{
    IterSource { iter: Some(iter.into_iter()) }
}

/// A source over an explicit vector of values (the pull-stream `values` module).
pub fn values<T: Send>(values: Vec<T>) -> IterSource<std::vec::IntoIter<T>> {
    from_iter(values)
}

/// A lazy source counting from 1 to `n` (paper Figure 5).
///
/// ```
/// use pando_pull_stream::source::{count, SourceExt};
/// assert_eq!(count(4).collect_values().unwrap(), vec![1, 2, 3, 4]);
/// ```
pub fn count(n: u64) -> IterSource<std::ops::RangeInclusive<u64>> {
    from_iter(1..=n)
}

/// A source that never produces a value and immediately answers `Done`.
pub fn empty<T: Send>() -> IterSource<std::iter::Empty<T>> {
    from_iter(std::iter::empty())
}

/// A source producing a single value.
pub fn once<T: Send>(value: T) -> IterSource<std::iter::Once<T>> {
    from_iter(std::iter::once(value))
}

/// An infinite source calling `f(i)` for `i = 0, 1, 2, ...` on every ask.
///
/// Infinite sources are the reason Pando is *lazy*: values are only generated
/// when a participating device has capacity to process them.
pub fn infinite<T, F>(f: F) -> Generate<F>
where
    T: Send,
    F: FnMut(u64) -> T + Send,
{
    Generate { f, next: 0, terminated: false }
}

/// A source calling `f(i)` until it returns `None`.
pub fn generate<T, F>(f: F) -> GenerateWhile<F>
where
    T: Send,
    F: FnMut(u64) -> Option<T> + Send,
{
    GenerateWhile { f, next: 0, terminated: false }
}

/// A source that immediately terminates with the given error.
pub fn failing<T: Send>(error: StreamError) -> Failing<T> {
    Failing { error, _marker: std::marker::PhantomData }
}

/// Source over an iterator. Created by [`from_iter`], [`values`], [`count`],
/// [`empty`] and [`once`].
#[derive(Debug)]
pub struct IterSource<I> {
    iter: Option<I>,
}

impl<I> Source<I::Item> for IterSource<I>
where
    I: Iterator + Send,
    I::Item: Send,
{
    fn pull(&mut self, request: Request) -> Answer<I::Item> {
        if request.is_termination() {
            self.iter = None;
            return match request {
                Request::Fail(err) => Answer::Err(err),
                _ => Answer::Done,
            };
        }
        match self.iter.as_mut().and_then(Iterator::next) {
            Some(value) => Answer::Value(value),
            None => {
                self.iter = None;
                Answer::Done
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<I::Item>> {
        // In-memory: the next item is always immediately available.
        Some(self.pull(Request::Ask))
    }
}

/// Infinite generator source. Created by [`infinite`].
#[derive(Debug)]
pub struct Generate<F> {
    f: F,
    next: u64,
    terminated: bool,
}

impl<T, F> Source<T> for Generate<F>
where
    T: Send,
    F: FnMut(u64) -> T + Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if self.terminated || request.is_termination() {
            self.terminated = true;
            return match request {
                Request::Fail(err) => Answer::Err(err),
                _ => Answer::Done,
            };
        }
        let index = self.next;
        self.next += 1;
        Answer::Value((self.f)(index))
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        // Generators compute rather than wait; answering is immediate.
        Some(self.pull(Request::Ask))
    }
}

/// Bounded generator source. Created by [`generate`].
#[derive(Debug)]
pub struct GenerateWhile<F> {
    f: F,
    next: u64,
    terminated: bool,
}

impl<T, F> Source<T> for GenerateWhile<F>
where
    T: Send,
    F: FnMut(u64) -> Option<T> + Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if self.terminated || request.is_termination() {
            self.terminated = true;
            return match request {
                Request::Fail(err) => Answer::Err(err),
                _ => Answer::Done,
            };
        }
        let index = self.next;
        self.next += 1;
        match (self.f)(index) {
            Some(value) => Answer::Value(value),
            None => {
                self.terminated = true;
                Answer::Done
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        Some(self.pull(Request::Ask))
    }
}

/// Source terminating immediately with an error. Created by [`failing`].
#[derive(Debug)]
pub struct Failing<T> {
    error: StreamError,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Send> Source<T> for Failing<T> {
    fn pull(&mut self, _request: Request) -> Answer<T> {
        Answer::Err(self.error.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_produces_one_to_n() {
        let out = count(5).collect_values().unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn count_zero_is_empty() {
        let out = count(0).collect_values().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn values_round_trip() {
        let out = values(vec!["x", "y", "z"]).collect_values().unwrap();
        assert_eq!(out, vec!["x", "y", "z"]);
    }

    #[test]
    fn empty_and_once() {
        assert!(empty::<u8>().collect_values().unwrap().is_empty());
        assert_eq!(once(7).collect_values().unwrap(), vec![7]);
    }

    #[test]
    fn termination_is_idempotent() {
        let mut src = count(1);
        assert_eq!(src.pull(Request::Ask), Answer::Value(1));
        assert_eq!(src.pull(Request::Ask), Answer::Done);
        assert_eq!(src.pull(Request::Ask), Answer::Done);
    }

    #[test]
    fn abort_releases_source() {
        let mut src = count(100);
        assert_eq!(src.pull(Request::Ask), Answer::Value(1));
        assert_eq!(src.pull(Request::Abort), Answer::Done);
        assert_eq!(src.pull(Request::Ask), Answer::Done);
    }

    #[test]
    fn fail_echoes_error() {
        let mut src = count(100);
        let answer = src.pull(Request::Fail(StreamError::new("downstream")));
        assert_eq!(answer, Answer::Err(StreamError::new("downstream")));
    }

    #[test]
    fn infinite_is_lazy_and_unbounded() {
        let out = infinite(|i| i * i).take_values(4).collect_values().unwrap();
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn generate_stops_on_none() {
        let out = generate(|i| if i < 3 { Some(i) } else { None }).collect_values().unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn generate_termination_idempotent_after_none() {
        let mut src = generate(|i| if i == 0 { Some(i) } else { None });
        assert_eq!(src.pull(Request::Ask), Answer::Value(0));
        assert_eq!(src.pull(Request::Ask), Answer::Done);
        assert_eq!(src.pull(Request::Ask), Answer::Done);
    }

    #[test]
    fn failing_source_reports_error() {
        let err = failing::<u8>(StreamError::new("nope")).collect_values().unwrap_err();
        assert_eq!(err.message(), "nope");
    }

    #[test]
    fn closure_is_a_source() {
        let mut remaining = 2;
        let closure = move |req: Request| -> Answer<u32> {
            if req.is_termination() || remaining == 0 {
                Answer::Done
            } else {
                remaining -= 1;
                Answer::Value(remaining)
            }
        };
        let out = closure.collect_values().unwrap();
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn boxed_source_is_still_a_source() {
        let boxed: BoxSource<u64> = count(3).boxed();
        assert_eq!(boxed.collect_values().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn for_each_and_drain() {
        let mut sum = 0;
        count(4).for_each_value(|v| sum += v).unwrap();
        assert_eq!(sum, 10);
        assert_eq!(count(4).drain_all().unwrap(), 4);
    }
}
