//! Error type shared by every pull-stream module.

use std::error::Error;
use std::fmt;

/// Error produced or propagated by a pull-stream module.
///
/// The pull-stream protocol carries errors *in band*: an upstream module may
/// answer an `ask` with [`Answer::Err`](crate::Answer::Err) and a downstream
/// module may terminate a stream early with [`Request::Fail`](crate::Request::Fail).
/// `StreamError` is intentionally a simple, cloneable message-carrying type so
/// it can travel in both directions and across threads.
///
/// # Examples
///
/// ```
/// use pando_pull_stream::StreamError;
///
/// let err = StreamError::new("worker disconnected");
/// assert_eq!(err.to_string(), "worker disconnected");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamError {
    message: String,
    kind: ErrorKind,
}

/// Broad classification of a [`StreamError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A failure raised by application code (the mapped function, a sink, ...).
    Application,
    /// A transport failure: the channel to a device closed or timed out.
    Transport,
    /// A protocol violation: a module answered after `done`, returned a result
    /// for a value it never borrowed, etc.
    Protocol,
    /// The stream was cancelled by the consumer.
    Cancelled,
}

impl StreamError {
    /// Creates an application-level error with the given message.
    ///
    /// ```
    /// # use pando_pull_stream::StreamError;
    /// let err = StreamError::new("bad input");
    /// assert!(err.is_application());
    /// ```
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), kind: ErrorKind::Application }
    }

    /// Creates a transport-level error (channel closed, heartbeat timeout, ...).
    pub fn transport(message: impl Into<String>) -> Self {
        Self { message: message.into(), kind: ErrorKind::Transport }
    }

    /// Creates a protocol-violation error.
    pub fn protocol(message: impl Into<String>) -> Self {
        Self { message: message.into(), kind: ErrorKind::Protocol }
    }

    /// Creates a cancellation error.
    pub fn cancelled(message: impl Into<String>) -> Self {
        Self { message: message.into(), kind: ErrorKind::Cancelled }
    }

    /// The human readable message carried by the error.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The broad classification of the error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Returns `true` if the error was raised by application code.
    pub fn is_application(&self) -> bool {
        self.kind == ErrorKind::Application
    }

    /// Returns `true` if the error came from the transport layer.
    pub fn is_transport(&self) -> bool {
        self.kind == ErrorKind::Transport
    }

    /// Returns `true` if the error marks a pull-stream protocol violation.
    pub fn is_protocol(&self) -> bool {
        self.kind == ErrorKind::Protocol
    }

    /// Returns `true` if the error marks a cancellation by the consumer.
    pub fn is_cancelled(&self) -> bool {
        self.kind == ErrorKind::Cancelled
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for StreamError {}

impl From<&str> for StreamError {
    fn from(message: &str) -> Self {
        StreamError::new(message)
    }
}

impl From<String> for StreamError {
    fn from(message: String) -> Self {
        StreamError::new(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_message() {
        let err = StreamError::new("boom");
        assert_eq!(format!("{err}"), "boom");
        assert_eq!(err.message(), "boom");
    }

    #[test]
    fn kinds_are_reported() {
        assert!(StreamError::new("a").is_application());
        assert!(StreamError::transport("t").is_transport());
        assert!(StreamError::protocol("p").is_protocol());
        assert!(StreamError::cancelled("c").is_cancelled());
        assert!(!StreamError::transport("t").is_application());
    }

    #[test]
    fn conversions_from_strings() {
        let a: StreamError = "oops".into();
        let b: StreamError = String::from("oops").into();
        assert_eq!(a, b);
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StreamError>();
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(StreamError::new("x"));
    }
}
