//! Duplex streams: a paired source and sink, the shape of a bidirectional
//! channel endpoint and of a StreamLender sub-stream.

use crate::error::StreamError;
use crate::sink::{BoxSink, Sink};
use crate::source::{BoxSource, Source};
use std::thread::{self, JoinHandle};

/// A bidirectional stream endpoint.
///
/// Values of type `Out` flow *out of* the endpoint through [`Duplex::source`];
/// values of type `In` flow *into* it through [`Duplex::sink`]. A network
/// channel endpoint, a Pando worker, and a StreamLender sub-stream are all
/// duplexes, which is what lets them be composed freely (paper Figure 7).
pub struct Duplex<In, Out> {
    /// The stream of values produced by this endpoint.
    pub source: BoxSource<Out>,
    /// The consumer of values sent to this endpoint.
    pub sink: BoxSink<In>,
}

impl<In, Out> Duplex<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    /// Creates a duplex from a source and a sink.
    pub fn new(source: impl Source<Out> + 'static, sink: impl Sink<In> + 'static) -> Self {
        Self { source: Box::new(source), sink: Box::new(sink) }
    }

    /// Splits the duplex into its source and sink halves.
    pub fn split(self) -> (BoxSource<Out>, BoxSink<In>) {
        (self.source, self.sink)
    }
}

impl<In, Out> std::fmt::Debug for Duplex<In, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duplex").finish_non_exhaustive()
    }
}

/// Drains `source` into `sink` on the calling thread, the equivalent of
/// `pull(source, sink)` in the JavaScript pull-stream library.
///
/// # Errors
///
/// Returns the stream error if either side terminates with one.
pub fn pipe<T: Send + 'static>(
    source: impl Source<T> + 'static,
    mut sink: impl Sink<T>,
) -> Result<(), StreamError> {
    sink.drain(Box::new(source))
}

/// Connects two duplex endpoints with two pump threads: everything produced
/// by `a` is sent into `b`, and everything produced by `b` is sent into `a`.
///
/// This is how the Pando master connects a StreamLender sub-stream to the
/// (limited) channel towards a volunteer device: tasks flow one way, results
/// flow back the other way, in parallel.
pub fn connect<A, B>(a: Duplex<A, B>, b: Duplex<B, A>) -> DuplexLink
where
    A: Send + 'static,
    B: Send + 'static,
{
    let Duplex { source: a_source, sink: mut a_sink } = a;
    let Duplex { source: b_source, sink: mut b_sink } = b;
    let forward = thread::Builder::new()
        .name("pull-duplex-forward".into())
        .spawn(move || b_sink.drain(a_source))
        .expect("spawn duplex forward pump");
    let backward = thread::Builder::new()
        .name("pull-duplex-backward".into())
        .spawn(move || a_sink.drain(b_source))
        .expect("spawn duplex backward pump");
    DuplexLink { forward, backward }
}

/// Handle on the two pump threads created by [`connect`].
#[derive(Debug)]
pub struct DuplexLink {
    forward: JoinHandle<Result<(), StreamError>>,
    backward: JoinHandle<Result<(), StreamError>>,
}

impl DuplexLink {
    /// Waits for both pump threads to finish and reports the first error.
    ///
    /// # Errors
    ///
    /// Returns the first stream error reported by either direction.
    pub fn join(self) -> Result<(), StreamError> {
        let forward = self
            .forward
            .join()
            .map_err(|_| StreamError::protocol("duplex forward pump panicked"))?;
        let backward = self
            .backward
            .join()
            .map_err(|_| StreamError::protocol("duplex backward pump panicked"))?;
        forward.and(backward)
    }

    /// Returns `true` once both pump threads have finished.
    pub fn is_finished(&self) -> bool {
        self.forward.is_finished() && self.backward.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::fn_sink;
    use crate::source::{count, SourceExt};
    use crossbeam::channel;

    #[test]
    fn pipe_moves_all_values() {
        let (tx, rx) = channel::unbounded();
        pipe(
            count(5),
            fn_sink(move |v: u64| {
                tx.send(v).map_err(|_| StreamError::transport("receiver dropped"))
            }),
        )
        .unwrap();
        let received: Vec<u64> = rx.try_iter().collect();
        assert_eq!(received, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn connect_pumps_both_directions() {
        // Endpoint A produces 1..=10 and records what it receives.
        let (a_recv_tx, a_recv_rx) = channel::unbounded();
        let a = Duplex::new(
            count(10),
            fn_sink(move |v: u64| a_recv_tx.send(v).map_err(|_| StreamError::transport("closed"))),
        );
        // Endpoint B produces 100..=104 and records what it receives.
        let (b_recv_tx, b_recv_rx) = channel::unbounded();
        let b = Duplex::new(
            count(5).map_values(|v| v + 99),
            fn_sink(move |v: u64| b_recv_tx.send(v).map_err(|_| StreamError::transport("closed"))),
        );
        connect(a, b).join().unwrap();
        let to_b: Vec<u64> = b_recv_rx.try_iter().collect();
        let to_a: Vec<u64> = a_recv_rx.try_iter().collect();
        assert_eq!(to_b, (1..=10).collect::<Vec<_>>());
        assert_eq!(to_a, (100..=104).collect::<Vec<_>>());
    }

    #[test]
    fn split_gives_back_halves() {
        let duplex: Duplex<u64, u64> = Duplex::new(count(2), fn_sink(|_v: u64| Ok(())));
        let (source, mut sink) = duplex.split();
        assert_eq!(sink.drain(source), Ok(()));
    }

    #[test]
    fn link_error_is_reported() {
        let a: Duplex<u64, u64> = Duplex::new(
            count(3),
            fn_sink(|_v: u64| Err(StreamError::new("cannot accept results"))),
        );
        let b: Duplex<u64, u64> = Duplex::new(count(3), fn_sink(|_v: u64| Ok(())));
        let err = connect(a, b).join().unwrap_err();
        assert_eq!(err.message(), "cannot accept results");
    }
}
