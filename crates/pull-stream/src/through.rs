//! Through modules (transformers): stream stages that both consume and
//! produce values, sitting between a source and a sink (paper Figure 6).

use crate::error::StreamError;
use crate::protocol::{Answer, Request};
use crate::source::Source;

/// Maps every value with a function. Created by
/// [`SourceExt::map_values`](crate::SourceExt::map_values).
#[derive(Debug)]
pub struct Map<S, F, T> {
    upstream: S,
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<S, F, T> Map<S, F, T> {
    /// Wraps `upstream`, applying `f` to every value.
    pub fn new(upstream: S, f: F) -> Self {
        Self { upstream, f, _marker: std::marker::PhantomData }
    }
}

impl<T, U, S, F> Source<U> for Map<S, F, T>
where
    S: Source<T>,
    F: FnMut(T) -> U + Send,
    T: Send,
    U: Send,
{
    fn pull(&mut self, request: Request) -> Answer<U> {
        self.upstream.pull(request).map(&mut self.f)
    }

    fn try_pull(&mut self) -> Option<Answer<U>> {
        self.upstream.try_pull().map(|answer| answer.map(&mut self.f))
    }
}

/// Maps every value with a fallible function; the first error aborts the
/// upstream and terminates the stream. Created by
/// [`SourceExt::try_map`](crate::SourceExt::try_map).
///
/// This is the analogue of the pull-stream `asyncMap` module that Pando
/// workers use to apply the user-provided function `f` to each input.
#[derive(Debug)]
pub struct TryMap<S, F, T> {
    upstream: S,
    f: F,
    failed: bool,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<S, F, T> TryMap<S, F, T> {
    /// Wraps `upstream`, applying the fallible `f` to every value.
    pub fn new(upstream: S, f: F) -> Self {
        Self { upstream, f, failed: false, _marker: std::marker::PhantomData }
    }
}

impl<T, U, S, F> Source<U> for TryMap<S, F, T>
where
    S: Source<T>,
    F: FnMut(T) -> Result<U, StreamError> + Send,
    T: Send,
    U: Send,
{
    fn pull(&mut self, request: Request) -> Answer<U> {
        if self.failed {
            return Answer::Done;
        }
        match self.upstream.pull(request) {
            Answer::Value(v) => match (self.f)(v) {
                Ok(mapped) => Answer::Value(mapped),
                Err(err) => {
                    self.failed = true;
                    // Release the upstream before reporting the failure.
                    let _ = self.upstream.pull(Request::Fail(err.clone()));
                    Answer::Err(err)
                }
            },
            Answer::Done => Answer::Done,
            Answer::Err(err) => Answer::Err(err),
        }
    }

    fn try_pull(&mut self) -> Option<Answer<U>> {
        if self.failed {
            return Some(Answer::Done);
        }
        Some(match self.upstream.try_pull()? {
            Answer::Value(v) => match (self.f)(v) {
                Ok(mapped) => Answer::Value(mapped),
                Err(err) => {
                    self.failed = true;
                    let _ = self.upstream.pull(Request::Fail(err.clone()));
                    Answer::Err(err)
                }
            },
            Answer::Done => Answer::Done,
            Answer::Err(err) => Answer::Err(err),
        })
    }
}

/// Keeps only values matching a predicate. Created by
/// [`SourceExt::filter_values`](crate::SourceExt::filter_values).
#[derive(Debug)]
pub struct Filter<S, F> {
    upstream: S,
    predicate: F,
}

impl<S, F> Filter<S, F> {
    /// Wraps `upstream`, keeping only values for which `predicate` is true.
    pub fn new(upstream: S, predicate: F) -> Self {
        Self { upstream, predicate }
    }
}

impl<T, S, F> Source<T> for Filter<S, F>
where
    S: Source<T>,
    F: FnMut(&T) -> bool + Send,
    T: Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if request.is_termination() {
            return self.upstream.pull(request);
        }
        loop {
            match self.upstream.pull(Request::Ask) {
                Answer::Value(v) if (self.predicate)(&v) => return Answer::Value(v),
                Answer::Value(_) => continue,
                other => return other,
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        loop {
            match self.upstream.try_pull()? {
                Answer::Value(v) if (self.predicate)(&v) => return Some(Answer::Value(v)),
                Answer::Value(_) => continue,
                other => return Some(other),
            }
        }
    }
}

/// Maps and filters in a single pass. Created by
/// [`SourceExt::filter_map_values`](crate::SourceExt::filter_map_values).
#[derive(Debug)]
pub struct FilterMap<S, F, T> {
    upstream: S,
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<S, F, T> FilterMap<S, F, T> {
    /// Wraps `upstream`, applying `f` and dropping `None` results.
    pub fn new(upstream: S, f: F) -> Self {
        Self { upstream, f, _marker: std::marker::PhantomData }
    }
}

impl<T, U, S, F> Source<U> for FilterMap<S, F, T>
where
    S: Source<T>,
    F: FnMut(T) -> Option<U> + Send,
    T: Send,
    U: Send,
{
    fn pull(&mut self, request: Request) -> Answer<U> {
        if request.is_termination() {
            return match self.upstream.pull(request) {
                Answer::Err(e) => Answer::Err(e),
                _ => Answer::Done,
            };
        }
        loop {
            match self.upstream.pull(Request::Ask) {
                Answer::Value(v) => match (self.f)(v) {
                    Some(mapped) => return Answer::Value(mapped),
                    None => continue,
                },
                Answer::Done => return Answer::Done,
                Answer::Err(e) => return Answer::Err(e),
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<U>> {
        loop {
            match self.upstream.try_pull()? {
                Answer::Value(v) => match (self.f)(v) {
                    Some(mapped) => return Some(Answer::Value(mapped)),
                    None => continue,
                },
                Answer::Done => return Some(Answer::Done),
                Answer::Err(e) => return Some(Answer::Err(e)),
            }
        }
    }
}

/// Lets at most `n` values through, then aborts the upstream. Created by
/// [`SourceExt::take_values`](crate::SourceExt::take_values).
#[derive(Debug)]
pub struct Take<S> {
    upstream: S,
    remaining: usize,
    terminated: bool,
}

impl<S> Take<S> {
    /// Wraps `upstream`, letting at most `n` values through.
    pub fn new(upstream: S, n: usize) -> Self {
        Self { upstream, remaining: n, terminated: false }
    }
}

impl<T, S> Source<T> for Take<S>
where
    S: Source<T>,
    T: Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if self.terminated {
            return Answer::Done;
        }
        if request.is_termination() {
            self.terminated = true;
            return self.upstream.pull(request);
        }
        if self.remaining == 0 {
            self.terminated = true;
            // Normal early termination: release the upstream.
            let _ = self.upstream.pull(Request::Abort);
            return Answer::Done;
        }
        match self.upstream.pull(Request::Ask) {
            Answer::Value(v) => {
                self.remaining -= 1;
                Answer::Value(v)
            }
            other => {
                self.terminated = true;
                other
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        if self.terminated {
            return Some(Answer::Done);
        }
        if self.remaining == 0 {
            self.terminated = true;
            let _ = self.upstream.pull(Request::Abort);
            return Some(Answer::Done);
        }
        Some(match self.upstream.try_pull()? {
            Answer::Value(v) => {
                self.remaining -= 1;
                Answer::Value(v)
            }
            other => {
                self.terminated = true;
                other
            }
        })
    }
}

/// Observes every value flowing through without modifying it. Created by
/// [`SourceExt::inspect_values`](crate::SourceExt::inspect_values).
#[derive(Debug)]
pub struct Inspect<S, F> {
    upstream: S,
    f: F,
}

impl<S, F> Inspect<S, F> {
    /// Wraps `upstream`, calling `f` on every value.
    pub fn new(upstream: S, f: F) -> Self {
        Self { upstream, f }
    }
}

impl<T, S, F> Source<T> for Inspect<S, F>
where
    S: Source<T>,
    F: FnMut(&T) + Send,
    T: Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        match self.upstream.pull(request) {
            Answer::Value(v) => {
                (self.f)(&v);
                Answer::Value(v)
            }
            other => other,
        }
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        match self.upstream.try_pull()? {
            Answer::Value(v) => {
                (self.f)(&v);
                Some(Answer::Value(v))
            }
            other => Some(other),
        }
    }
}

/// Flattens a source of vectors into a source of values, used to unbatch
/// grouped network messages on the worker side.
#[derive(Debug)]
pub struct Unbatch<S, T> {
    upstream: S,
    buffer: std::collections::VecDeque<T>,
    terminated: Option<Answer<T>>,
}

impl<S, T> Unbatch<S, T> {
    /// Wraps a source of `Vec<T>`, producing its elements one by one.
    pub fn new(upstream: S) -> Self {
        Self { upstream, buffer: std::collections::VecDeque::new(), terminated: None }
    }
}

impl<T, S> Source<T> for Unbatch<S, T>
where
    S: Source<Vec<T>>,
    T: Send,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if request.is_termination() {
            self.buffer.clear();
            return match self.upstream.pull(request) {
                Answer::Err(e) => Answer::Err(e),
                _ => Answer::Done,
            };
        }
        loop {
            if let Some(v) = self.buffer.pop_front() {
                return Answer::Value(v);
            }
            if let Some(end) = &self.terminated {
                return end.clone_end();
            }
            match self.upstream.pull(Request::Ask) {
                Answer::Value(batch) => self.buffer.extend(batch),
                Answer::Done => self.terminated = Some(Answer::Done),
                Answer::Err(e) => self.terminated = Some(Answer::Err(e)),
            }
        }
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        loop {
            if let Some(v) = self.buffer.pop_front() {
                return Some(Answer::Value(v));
            }
            if let Some(end) = &self.terminated {
                return Some(end.clone_end());
            }
            match self.upstream.try_pull()? {
                Answer::Value(batch) => self.buffer.extend(batch),
                Answer::Done => self.terminated = Some(Answer::Done),
                Answer::Err(e) => self.terminated = Some(Answer::Err(e)),
            }
        }
    }
}

trait CloneEnd<T> {
    fn clone_end(&self) -> Answer<T>;
}

impl<T> CloneEnd<T> for Answer<T> {
    fn clone_end(&self) -> Answer<T> {
        match self {
            Answer::Done => Answer::Done,
            Answer::Err(e) => Answer::Err(e.clone()),
            Answer::Value(_) => unreachable!("terminated marker never holds a value"),
        }
    }
}

/// Groups consecutive values into vectors of at most `size` elements, used to
/// batch values before sending them over a high-latency network link
/// (paper §5: "by batching inputs for distribution, the network latency could
/// be hidden").
#[derive(Debug)]
pub struct Batch<S> {
    upstream: S,
    size: usize,
    terminated: bool,
}

impl<S> Batch<S> {
    /// Wraps `upstream`, grouping values into vectors of at most `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(upstream: S, size: usize) -> Self {
        assert!(size > 0, "batch size must be at least 1");
        Self { upstream, size, terminated: false }
    }
}

impl<T, S> Source<Vec<T>> for Batch<S>
where
    S: Source<T>,
    T: Send,
{
    fn pull(&mut self, request: Request) -> Answer<Vec<T>> {
        if self.terminated {
            return Answer::Done;
        }
        if request.is_termination() {
            self.terminated = true;
            return match self.upstream.pull(request) {
                Answer::Err(e) => Answer::Err(e),
                _ => Answer::Done,
            };
        }
        let mut batch = Vec::with_capacity(self.size);
        while batch.len() < self.size {
            match self.upstream.pull(Request::Ask) {
                Answer::Value(v) => batch.push(v),
                Answer::Done => {
                    self.terminated = true;
                    break;
                }
                Answer::Err(e) => {
                    self.terminated = true;
                    if batch.is_empty() {
                        return Answer::Err(e);
                    }
                    break;
                }
            }
        }
        if batch.is_empty() {
            Answer::Done
        } else {
            Answer::Value(batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{count, failing, infinite, values, SourceExt};

    #[test]
    fn map_transforms_values() {
        let out = count(3).map_values(|x| x * 10).collect_values().unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn map_propagates_errors() {
        let err =
            failing::<u64>(StreamError::new("up")).map_values(|x| x).collect_values().unwrap_err();
        assert_eq!(err.message(), "up");
    }

    #[test]
    fn try_map_success() {
        let out = count(3).try_map(|x| Ok(x + 1)).collect_values().unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn try_map_error_aborts_upstream() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let saw_termination = Arc::new(AtomicBool::new(false));
        let flag = saw_termination.clone();
        let mut upstream_calls = 0u64;
        let upstream = move |req: Request| -> Answer<u64> {
            if req.is_termination() {
                flag.store(true, Ordering::SeqCst);
                return Answer::Done;
            }
            upstream_calls += 1;
            Answer::Value(upstream_calls)
        };
        let err = upstream
            .try_map(|x| if x < 3 { Ok(x) } else { Err(StreamError::new("boom")) })
            .collect_values()
            .unwrap_err();
        assert_eq!(err.message(), "boom");
        assert!(saw_termination.load(Ordering::SeqCst), "upstream must be released");
    }

    #[test]
    fn try_map_is_done_after_failure() {
        let mut stream = count(10).try_map(|_| Err::<u64, _>(StreamError::new("x")));
        assert!(matches!(stream.pull(Request::Ask), Answer::Err(_)));
        assert_eq!(stream.pull(Request::Ask), Answer::Done);
    }

    #[test]
    fn filter_keeps_matching_values() {
        let out = count(10).filter_values(|x| x % 3 == 0).collect_values().unwrap();
        assert_eq!(out, vec![3, 6, 9]);
    }

    #[test]
    fn filter_forwards_abort() {
        let mut filtered = count(10).filter_values(|_| true);
        assert_eq!(filtered.pull(Request::Abort), Answer::Done);
    }

    #[test]
    fn filter_map_combines() {
        let out = count(6)
            .filter_map_values(|x| if x % 2 == 0 { Some(x * 100) } else { None })
            .collect_values()
            .unwrap();
        assert_eq!(out, vec![200, 400, 600]);
    }

    #[test]
    fn take_limits_and_aborts_upstream() {
        let out = infinite(|i| i).take_values(5).collect_values().unwrap();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn take_zero_is_empty() {
        let out = count(10).take_values(0).collect_values().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn take_is_idempotent_after_done() {
        let mut take = count(2).take_values(1);
        assert_eq!(take.pull(Request::Ask), Answer::Value(1));
        assert_eq!(take.pull(Request::Ask), Answer::Done);
        assert_eq!(take.pull(Request::Ask), Answer::Done);
    }

    #[test]
    fn inspect_observes_without_changing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicU64::new(0));
        let counter = seen.clone();
        let out = count(3)
            .inspect_values(move |v| {
                counter.fetch_add(*v, Ordering::SeqCst);
            })
            .collect_values()
            .unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(seen.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn batch_groups_values() {
        let out: Vec<Vec<u64>> = count(7).through(|s| Batch::new(s, 3)).collect_values().unwrap();
        assert_eq!(out, vec![vec![1, 2, 3], vec![4, 5, 6], vec![7]]);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batch_of_zero_panics() {
        let _ = Batch::new(count(1), 0);
    }

    #[test]
    fn unbatch_flattens() {
        let out: Vec<u64> = values(vec![vec![1, 2], vec![], vec![3]])
            .through(Unbatch::new)
            .collect_values()
            .unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn batch_then_unbatch_is_identity() {
        let out: Vec<u64> =
            count(25).through(|s| Batch::new(s, 4)).through(Unbatch::new).collect_values().unwrap();
        assert_eq!(out, (1..=25).collect::<Vec<_>>());
    }

    #[test]
    fn unbatch_propagates_error_after_flushing() {
        let mut calls = 0;
        let upstream = move |req: Request| -> Answer<Vec<u64>> {
            if req.is_termination() {
                return Answer::Done;
            }
            calls += 1;
            if calls == 1 {
                Answer::Value(vec![1, 2])
            } else {
                Answer::Err(StreamError::new("late failure"))
            }
        };
        let mut unbatched = Unbatch::new(upstream);
        assert_eq!(unbatched.pull(Request::Ask), Answer::Value(1));
        assert_eq!(unbatched.pull(Request::Ask), Answer::Value(2));
        assert!(matches!(unbatched.pull(Request::Ask), Answer::Err(_)));
        assert!(matches!(unbatched.pull(Request::Ask), Answer::Err(_)));
    }
}
