//! The StreamLender (`pull-lend-stream`): Pando's core coordination
//! abstraction.
//!
//! A [`StreamLender`] consumes one input stream and *lends* its values to any
//! number of concurrent sub-streams — one per participating device — then
//! merges the results back into a single output stream. It encapsulates the
//! programming-model properties of paper Table 1:
//!
//! | Property | How it is provided |
//! |---|---|
//! | Streaming map | every input value is turned into exactly one output value |
//! | Ordered | outputs are emitted in the order of their inputs (reorder buffer) |
//! | Dynamic | [`StreamLender::lend`] may be called at any time |
//! | Unbounded | there is no a-priori limit on the number of sub-streams |
//! | Lazy | the input is only pulled when a sub-stream asks for work |
//! | Fault-tolerant | values borrowed by a crashed sub-stream are re-lent |
//! | Conservative | a value is lent to at most one sub-stream at a time |
//! | Adaptive | faster sub-streams ask more often and receive more values |
//!
//! The implementation mirrors Algorithm 1 of the paper: a sub-stream `ask` is
//! answered first from the *failed* queue, then by lazily pulling the lender's
//! input, and otherwise waits until either the last result has been received
//! or a failure makes a value available again.

use crate::error::StreamError;
use crate::protocol::{Answer, Request};
use crate::sink::Sink;
use crate::source::{BoxSource, Source};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A value lent to a sub-stream, tagged with its position in the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lend<T> {
    /// Position of the value in the input stream (0-based).
    pub seq: u64,
    /// The borrowed value.
    pub value: T,
}

impl<T> Lend<T> {
    /// Creates a lend record.
    pub fn new(seq: u64, value: T) -> Self {
        Self { seq, value }
    }

    /// Maps the carried value, keeping the sequence number.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Lend<U> {
        Lend { seq: self.seq, value: f(self.value) }
    }
}

/// Identifier of a sub-stream, unique within one [`StreamLender`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubStreamId(u64);

impl SubStreamId {
    /// The numeric value of the identifier.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SubStreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// How a sub-stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubStreamEnd {
    /// The sub-stream completed gracefully via [`SubStream::complete`].
    Completed,
    /// The sub-stream crashed (dropped or explicitly failed); its borrowed
    /// values were re-lent to other sub-streams.
    Crashed,
}

/// Aggregate statistics observed by a [`StreamLender`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LenderStats {
    /// Number of values read from the input so far.
    pub values_read: u64,
    /// Number of results emitted on the output so far.
    pub results_emitted: u64,
    /// Number of lends performed (including re-lends after failures).
    pub lends: u64,
    /// Number of values that had to be re-lent because a sub-stream crashed.
    pub relends: u64,
    /// Number of sub-streams created so far.
    pub substreams_created: u64,
    /// Number of sub-streams that completed gracefully.
    pub substreams_completed: u64,
    /// Number of sub-streams that crashed.
    pub substreams_crashed: u64,
}

struct State<T, R> {
    /// The upstream input source; `None` while checked out by a borrower.
    input: Option<BoxSource<T>>,
    input_checked_out: bool,
    input_done: bool,
    input_error: Option<StreamError>,
    /// Next sequence number to assign to a freshly read input value.
    next_seq: u64,
    /// Values borrowed by a sub-stream that crashed, awaiting re-lend.
    failed: VecDeque<Lend<T>>,
    /// Copy of every value currently lent, keyed by sequence number, so a
    /// crash can recover it.
    in_flight: HashMap<u64, T>,
    /// Which sub-stream currently holds which sequence numbers. A sub-stream
    /// is alive exactly while it has an entry in this map.
    borrowed_by: HashMap<SubStreamId, HashSet<u64>>,
    /// Results waiting to be emitted in order.
    results: BTreeMap<u64, R>,
    /// Next sequence number to emit on the output.
    emit_next: u64,
    /// Set once the output consumer aborts or the lender is shut down.
    output_closed: bool,
    next_substream_id: u64,
    stats: LenderStats,
}

/// Change callback registered with [`StreamLender::add_waker`]: invoked on
/// every lender state change (a result arrived, a value became lendable, a
/// sub-stream ended, the stream terminated).
pub type LenderWaker = Arc<dyn Fn() + Send + Sync>;

struct Shared<T, R> {
    state: Mutex<State<T, R>>,
    /// Notified whenever work may have become available, a result arrived, or
    /// the stream terminated.
    changed: Condvar,
    /// External change callbacks, for event-driven consumers that cannot park
    /// on the condvar (a reactor multiplexing thousands of sub-streams).
    wakers: Mutex<Vec<LenderWaker>>,
}

impl<T, R> Shared<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn notify(&self) {
        self.changed.notify_all();
        let wakers = self.wakers.lock();
        for waker in wakers.iter() {
            waker();
        }
    }

    fn register_sub(&self) -> SubStreamId {
        let mut state = self.state.lock();
        let id = SubStreamId(state.next_substream_id);
        state.next_substream_id += 1;
        state.stats.substreams_created += 1;
        state.borrowed_by.insert(id, HashSet::new());
        drop(state);
        self.notify();
        id
    }

    /// The sub-stream `ask` of Algorithm 1.
    fn ask(&self, id: SubStreamId) -> Answer<Lend<T>> {
        let mut state = self.state.lock();
        loop {
            if state.output_closed || !state.borrowed_by.contains_key(&id) {
                return Answer::Done;
            }
            // 1. Answer with a failed value if one is pending.
            if let Some(lend) = Self::lend_from_failed(&mut state, id) {
                drop(state);
                self.notify();
                return Answer::Value(lend);
            }
            // 2. Lazily read a new value from the input.
            if !state.input_done {
                if !state.input_checked_out {
                    if let Some(lend) = self.pull_input_locked(&mut state, id) {
                        drop(state);
                        self.notify();
                        return Answer::Value(lend);
                    }
                    // Input terminated or nothing produced: loop to re-check.
                    continue;
                }
                // Another sub-stream is reading the input: wait for it.
                self.changed.wait(&mut state);
                continue;
            }
            // 3. Input exhausted: wait on others (a crash may still re-lend a
            //    value) unless everything has been resolved.
            if state.in_flight.is_empty() && state.failed.is_empty() {
                return Answer::Done;
            }
            self.changed.wait(&mut state);
        }
    }

    /// Non-blocking ask: `None` means "nothing available right now". The
    /// input is only consulted through [`Source::try_pull`], so an
    /// interactive input (a stubborn queue, a network endpoint) never blocks
    /// a caller that is merely coalescing a batch — blocking there could
    /// deadlock on a value the caller has borrowed but not yet sent.
    fn try_ask(&self, id: SubStreamId) -> Option<Lend<T>> {
        match self.try_ask_status(id) {
            Some(Answer::Value(lend)) => Some(lend),
            _ => None,
        }
    }

    /// Non-blocking ask that distinguishes "would block" from termination:
    /// `None` means nothing is available *right now* but more may come,
    /// `Some(Answer::Done)` means this sub-stream will never receive another
    /// value — exactly when the blocking [`Shared::ask`] would return `Done`.
    /// An event-driven dispatcher needs the distinction to know when to close
    /// its channel instead of waiting for a wake-up that never comes.
    fn try_ask_status(&self, id: SubStreamId) -> Option<Answer<Lend<T>>> {
        let mut state = self.state.lock();
        if state.output_closed || !state.borrowed_by.contains_key(&id) {
            return Some(Answer::Done);
        }
        if let Some(lend) = Self::lend_from_failed(&mut state, id) {
            drop(state);
            self.notify();
            return Some(Answer::Value(lend));
        }
        if state.input_done {
            // Same termination rule as the blocking ask: nothing in flight
            // anywhere and nothing waiting to be re-lent means no value can
            // ever appear again.
            if state.in_flight.is_empty() && state.failed.is_empty() {
                return Some(Answer::Done);
            }
            return None;
        }
        if state.input_checked_out {
            return None;
        }
        match self.pull_input_locked_with(&mut state, id, |input| input.try_pull()) {
            // The input would have to wait.
            None => None,
            Some(Some(lend)) => {
                drop(state);
                self.notify();
                Some(Answer::Value(lend))
            }
            // The input answered with a termination (or the value was
            // recovered because this sub-stream died mid-ask): re-evaluate,
            // which may now report Done.
            Some(None) => {
                if state.input_done && state.in_flight.is_empty() && state.failed.is_empty() {
                    return Some(Answer::Done);
                }
                None
            }
        }
    }

    fn lend_from_failed(
        state: &mut MutexGuard<'_, State<T, R>>,
        id: SubStreamId,
    ) -> Option<Lend<T>> {
        let lend = state.failed.pop_front()?;
        state.in_flight.insert(lend.seq, lend.value.clone());
        state
            .borrowed_by
            .get_mut(&id)
            .expect("caller checked the sub-stream is alive")
            .insert(lend.seq);
        state.stats.lends += 1;
        Some(lend)
    }

    /// Pulls the input while temporarily releasing the lock, so a slow input
    /// (for example standard input) does not block other sub-streams that
    /// could be answered from the failed queue.
    fn pull_input_locked(
        &self,
        state: &mut MutexGuard<'_, State<T, R>>,
        id: SubStreamId,
    ) -> Option<Lend<T>> {
        self.pull_input_locked_with(state, id, |input| Some(input.pull(Request::Ask)))
            .expect("blocking pull always answers")
    }

    /// Shared body of the blocking and non-blocking input reads: checks the
    /// input out, asks it through `ask` with the lock released, and books the
    /// answer. The outer `Option` is `None` only when `ask` reported "would
    /// block" (the input is left untouched).
    fn pull_input_locked_with(
        &self,
        state: &mut MutexGuard<'_, State<T, R>>,
        id: SubStreamId,
        ask: impl FnOnce(&mut BoxSource<T>) -> Option<Answer<T>>,
    ) -> Option<Option<Lend<T>>> {
        let mut input = state.input.take().expect("input present when not checked out");
        state.input_checked_out = true;
        let answer = MutexGuard::unlocked(state, || ask(&mut input));
        state.input = Some(input);
        state.input_checked_out = false;
        let answer = match answer {
            Some(answer) => answer,
            None => {
                // The input would have to wait: report nothing available, but
                // wake sub-streams that may have been waiting on the
                // checked-out input so they re-try it themselves. Only the
                // condvar fires — not the external wakers: no value became
                // available, and a waker fire here would re-kick the very
                // dispatcher whose failed ask we are reporting (a
                // kick/ask/kick busy loop).
                self.changed.notify_all();
                return None;
            }
        };
        Some(match answer {
            Answer::Value(value) => {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.stats.values_read += 1;
                state.stats.lends += 1;
                state.in_flight.insert(seq, value.clone());
                // The asking sub-stream may have ended while the lock was
                // released (its channel died mid-ask). Re-lend in that case.
                match state.borrowed_by.get_mut(&id) {
                    Some(borrowed) => {
                        borrowed.insert(seq);
                        Some(Lend::new(seq, value))
                    }
                    None => {
                        let recovered =
                            state.in_flight.remove(&seq).expect("value inserted just above");
                        state.failed.push_back(Lend::new(seq, recovered));
                        state.stats.relends += 1;
                        None
                    }
                }
            }
            Answer::Done => {
                state.input_done = true;
                None
            }
            Answer::Err(err) => {
                state.input_done = true;
                state.input_error = Some(err);
                None
            }
        })
    }

    fn push_result(&self, id: SubStreamId, seq: u64, result: R) -> Result<(), StreamError> {
        let mut state = self.state.lock();
        let borrowed = state
            .borrowed_by
            .get_mut(&id)
            .ok_or_else(|| StreamError::protocol("sub-stream already ended"))?;
        if !borrowed.remove(&seq) {
            return Err(StreamError::protocol(format!(
                "result for value {seq} that was not borrowed by {id}"
            )));
        }
        state.in_flight.remove(&seq);
        state.results.insert(seq, result);
        drop(state);
        self.notify();
        Ok(())
    }

    /// Ends a sub-stream; returns `false` if it had already ended.
    fn end_sub(&self, id: SubStreamId, how: SubStreamEnd) -> bool {
        let mut state = self.state.lock();
        let Some(borrowed) = state.borrowed_by.remove(&id) else {
            return false;
        };
        for seq in borrowed {
            if let Some(value) = state.in_flight.remove(&seq) {
                state.failed.push_back(Lend::new(seq, value));
                state.stats.relends += 1;
            }
        }
        match how {
            SubStreamEnd::Completed => state.stats.substreams_completed += 1,
            SubStreamEnd::Crashed => state.stats.substreams_crashed += 1,
        }
        drop(state);
        self.notify();
        true
    }

    fn borrowed_count(&self, id: SubStreamId) -> usize {
        self.state.lock().borrowed_by.get(&id).map(HashSet::len).unwrap_or(0)
    }

    fn poll_output(state: &mut MutexGuard<'_, State<T, R>>) -> Option<Answer<R>> {
        if state.output_closed {
            return Some(Answer::Done);
        }
        let emit_next = state.emit_next;
        if let Some(result) = state.results.remove(&emit_next) {
            state.emit_next += 1;
            state.stats.results_emitted += 1;
            return Some(Answer::Value(result));
        }
        let drained = state.input_done
            && state.in_flight.is_empty()
            && state.failed.is_empty()
            && state.results.is_empty()
            && state.emit_next == state.next_seq;
        if drained {
            return Some(match state.input_error.clone() {
                Some(err) => Answer::Err(err),
                None => Answer::Done,
            });
        }
        None
    }
}

/// Splits an input stream between concurrent sub-streams and merges the
/// results back in input order. See the [module documentation](self) for the
/// properties it provides and the crate documentation for a full example.
pub struct StreamLender<T, R> {
    shared: Arc<Shared<T, R>>,
}

impl<T, R> Clone for StreamLender<T, R> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

impl<T, R> std::fmt::Debug for StreamLender<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.state.lock();
        f.debug_struct("StreamLender")
            .field("next_seq", &state.next_seq)
            .field("emit_next", &state.emit_next)
            .field("input_done", &state.input_done)
            .field("active_substreams", &state.borrowed_by.len())
            .field("failed", &state.failed.len())
            .field("in_flight", &state.in_flight.len())
            .finish()
    }
}

impl<T, R> StreamLender<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Creates a lender over `input`.
    pub fn new(input: impl Source<T> + 'static) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    input: Some(Box::new(input)),
                    input_checked_out: false,
                    input_done: false,
                    input_error: None,
                    next_seq: 0,
                    failed: VecDeque::new(),
                    in_flight: HashMap::new(),
                    borrowed_by: HashMap::new(),
                    results: BTreeMap::new(),
                    emit_next: 0,
                    output_closed: false,
                    next_substream_id: 0,
                    stats: LenderStats::default(),
                }),
                changed: Condvar::new(),
                wakers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Registers a change callback invoked on every state change of the
    /// lender (a result arrived, a value became lendable, a sub-stream ended,
    /// the stream terminated). This is the waker hook used by event-driven
    /// consumers — for example a reactor that must re-poll starved
    /// sub-streams — instead of parking on the internal condvar.
    ///
    /// The callback must be cheap and must not call back into the lender or
    /// register further wakers.
    pub fn add_waker(&self, waker: LenderWaker) {
        self.shared.wakers.lock().push(waker);
    }

    /// Downgrades this handle to a [`WeakLender`] that does not keep the
    /// lender alive. Used by composite structures (the
    /// [`ShardedLender`](crate::shard::ShardedLender) splitter) that must
    /// reference their lenders without creating a reference cycle.
    pub fn downgrade(&self) -> WeakLender<T, R> {
        WeakLender { shared: Arc::downgrade(&self.shared) }
    }

    /// Returns `true` once the lender was shut down (explicitly or because
    /// its output consumer aborted): sub-streams are told `Done` on their
    /// next ask and no further value will ever be lent.
    pub fn is_shut_down(&self) -> bool {
        self.shared.state.lock().output_closed
    }

    /// Reads one value from the input — blocking if the input needs time —
    /// and stages it in the re-lend pool, where the next sub-stream ask picks
    /// it up. Returns `false` once no further value will ever be produced
    /// (input exhausted or errored, or the output closed).
    ///
    /// This is the *input pump* hook for event-driven deployments: reactor
    /// threads must never block, so when a sub-stream starves on an input
    /// that only answers blocking pulls (an interactive queue, a feedback
    /// loop), `prefetch_one` is called on demand — by a dedicated pump
    /// thread per shard in threaded deployments, or synchronously by the
    /// scheduler loop of the deterministic fleet simulator. Demand-driven
    /// pumping keeps the input lazy: at most the number of values actually
    /// asked for is read ahead.
    pub fn prefetch_one(&self) -> bool {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        loop {
            if state.output_closed || state.input_done {
                return false;
            }
            if !state.input_checked_out {
                break;
            }
            // Another thread holds the input; wait for it to come back.
            shared.changed.wait(&mut state);
        }
        let mut input = state.input.take().expect("input present when not checked out");
        state.input_checked_out = true;
        let answer = MutexGuard::unlocked(&mut state, || input.pull(Request::Ask));
        state.input = Some(input);
        state.input_checked_out = false;
        let produced = match answer {
            Answer::Value(value) => {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.stats.values_read += 1;
                // Staged, not lent: the value waits in the re-lend pool until
                // a sub-stream asks, so `lends` is counted at hand-out time.
                state.failed.push_back(Lend::new(seq, value));
                true
            }
            Answer::Done => {
                state.input_done = true;
                false
            }
            Answer::Err(err) => {
                state.input_done = true;
                state.input_error = Some(err);
                false
            }
        };
        drop(state);
        shared.notify();
        produced
    }

    /// Like [`StreamLender::prefetch_one`] but never waits for the input:
    /// if it is currently checked out by another caller, returns `false`
    /// immediately — the holder observes any state change itself when its
    /// pull returns. Intended for termination broadcasts, where the input
    /// is known to answer instantly once the end has been recorded.
    pub fn try_prefetch_one(&self) -> bool {
        let shared = &self.shared;
        let mut state = shared.state.lock();
        if state.output_closed || state.input_done || state.input_checked_out {
            return false;
        }
        let mut input = state.input.take().expect("input present when not checked out");
        state.input_checked_out = true;
        let answer = MutexGuard::unlocked(&mut state, || input.pull(Request::Ask));
        state.input = Some(input);
        state.input_checked_out = false;
        let produced = match answer {
            Answer::Value(value) => {
                let seq = state.next_seq;
                state.next_seq += 1;
                state.stats.values_read += 1;
                state.failed.push_back(Lend::new(seq, value));
                true
            }
            Answer::Done => {
                state.input_done = true;
                false
            }
            Answer::Err(err) => {
                state.input_done = true;
                state.input_error = Some(err);
                false
            }
        };
        drop(state);
        shared.notify();
        produced
    }

    /// Creates a new sub-stream. Sub-streams may be created at any time, even
    /// while other sub-streams are processing values (the *dynamic* property).
    pub fn lend(&self) -> SubStream<T, R> {
        let id = self.shared.register_sub();
        SubStream { shared: self.shared.clone(), id, ended: false }
    }

    /// Returns the ordered output stream of results.
    ///
    /// The output may be consumed from any thread; it blocks while waiting for
    /// the next in-order result.
    pub fn output(&self) -> LenderOutput<T, R> {
        LenderOutput { shared: self.shared.clone() }
    }

    /// A snapshot of the lender's counters.
    pub fn stats(&self) -> LenderStats {
        self.shared.state.lock().stats.clone()
    }

    /// Number of sub-streams currently alive.
    pub fn active_substreams(&self) -> usize {
        self.shared.state.lock().borrowed_by.len()
    }

    /// Number of values currently lent out and not yet returned.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().in_flight.len()
    }

    /// Number of values waiting to be re-lent after a sub-stream crash.
    pub fn failed_pending(&self) -> usize {
        self.shared.state.lock().failed.len()
    }

    /// Returns `true` once the input is exhausted and every read value has
    /// been emitted on the output.
    pub fn is_drained(&self) -> bool {
        let state = self.shared.state.lock();
        state.input_done
            && state.in_flight.is_empty()
            && state.failed.is_empty()
            && state.results.is_empty()
            && state.emit_next == state.next_seq
    }

    /// Shuts the lender down: the output terminates after the values already
    /// emitted, and sub-streams are told `Done` on their next ask.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock();
        state.output_closed = true;
        drop(state);
        self.shared.notify();
    }
}

/// A non-owning handle on a [`StreamLender`], created by
/// [`StreamLender::downgrade`]. Upgrading yields the lender again as long as
/// at least one strong handle is still alive.
pub struct WeakLender<T, R> {
    shared: std::sync::Weak<Shared<T, R>>,
}

impl<T, R> Clone for WeakLender<T, R> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

impl<T, R> std::fmt::Debug for WeakLender<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeakLender").finish_non_exhaustive()
    }
}

impl<T, R> WeakLender<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Attempts to upgrade to a strong [`StreamLender`] handle.
    pub fn upgrade(&self) -> Option<StreamLender<T, R>> {
        self.shared.upgrade().map(|shared| StreamLender { shared })
    }
}

/// A sub-stream lent to one participating device.
///
/// The device-facing loop is: call [`SubStream::next_task`] to borrow a value,
/// process it, then call [`SubStream::push_result`]. Dropping the sub-stream
/// without calling [`SubStream::complete`] is treated as a crash: every value
/// it still holds is re-lent to other sub-streams (crash-stop fault model).
pub struct SubStream<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    shared: Arc<Shared<T, R>>,
    id: SubStreamId,
    ended: bool,
}

impl<T, R> std::fmt::Debug for SubStream<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubStream").field("id", &self.id).field("ended", &self.ended).finish()
    }
}

impl<T, R> SubStream<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// The identifier of this sub-stream.
    pub fn id(&self) -> SubStreamId {
        self.id
    }

    /// Borrows the next value to process, blocking until one is available.
    ///
    /// Returns `None` when no value will ever be available again (the input is
    /// exhausted and every outstanding value has produced a result), at which
    /// point the device should disconnect or the caller should invoke
    /// [`SubStream::complete`].
    pub fn next_task(&mut self) -> Option<Lend<T>> {
        match self.ask() {
            Answer::Value(lend) => Some(lend),
            _ => None,
        }
    }

    /// Non-blocking variant of [`SubStream::next_task`]: returns immediately
    /// with `None` if no value is available right now (the stream may still
    /// produce more later).
    pub fn try_next_task(&mut self) -> Option<Lend<T>> {
        if self.ended {
            return None;
        }
        self.shared.try_ask(self.id)
    }

    /// Non-blocking ask that also reports termination: `None` means "would
    /// block" (a wake-up will follow when the state changes),
    /// `Some(Answer::Done)` means no value will ever be available again —
    /// the same condition under which [`SubStream::ask`] answers `Done`.
    pub fn poll_task(&mut self) -> Option<Answer<Lend<T>>> {
        if self.ended {
            return Some(Answer::Done);
        }
        self.shared.try_ask_status(self.id)
    }

    /// The pull-stream `ask` on the sub-stream's task source, following the
    /// paper's Algorithm 1.
    pub fn ask(&mut self) -> Answer<Lend<T>> {
        if self.ended {
            return Answer::Done;
        }
        self.shared.ask(self.id)
    }

    /// Returns the result for a previously borrowed value.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if `seq` was not borrowed by this sub-stream
    /// (for example it was already returned, or it was re-lent to another
    /// sub-stream after this one was considered crashed).
    pub fn push_result(&mut self, seq: u64, result: R) -> Result<(), StreamError> {
        if self.ended {
            return Err(StreamError::protocol("sub-stream already ended"));
        }
        self.shared.push_result(self.id, seq, result)
    }

    /// Ends the sub-stream gracefully. Values still borrowed (for example
    /// sitting in a network buffer) are re-lent to other sub-streams.
    pub fn complete(mut self) {
        self.end(SubStreamEnd::Completed);
    }

    /// Ends the sub-stream as crashed, explicitly. Equivalent to dropping it.
    pub fn fail(mut self) {
        self.end(SubStreamEnd::Crashed);
    }

    fn end(&mut self, how: SubStreamEnd) {
        if self.ended {
            return;
        }
        self.ended = true;
        self.shared.end_sub(self.id, how);
    }

    /// Number of values currently borrowed by this sub-stream.
    pub fn borrowed(&self) -> usize {
        self.shared.borrowed_count(self.id)
    }

    /// Splits the sub-stream into a pull-stream source of tasks and sink of
    /// results, the duplex shape used to wire a sub-stream to a network
    /// channel (paper Figure 9).
    pub fn into_duplex(mut self) -> (SubStreamSource<T, R>, SubStreamSink<T, R>) {
        // Ownership of the end-of-life decision moves to the guard shared by
        // the two halves, so disarm the `Drop` of `self`.
        self.ended = true;
        let guard = Arc::new(SubGuard {
            shared: self.shared.clone(),
            id: self.id,
            ended_clean: AtomicBool::new(false),
        });
        (SubStreamSource { guard: guard.clone() }, SubStreamSink { guard })
    }
}

impl<T, R> Drop for SubStream<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn drop(&mut self) {
        self.end(SubStreamEnd::Crashed);
    }
}

/// Shared end-of-life guard for the two duplex halves of a sub-stream.
struct SubGuard<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    shared: Arc<Shared<T, R>>,
    id: SubStreamId,
    ended_clean: AtomicBool,
}

impl<T, R> Drop for SubGuard<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn drop(&mut self) {
        let how = if self.ended_clean.load(Ordering::SeqCst) {
            SubStreamEnd::Completed
        } else {
            SubStreamEnd::Crashed
        };
        self.shared.end_sub(self.id, how);
    }
}

/// The sub-stream's task source as a pull-stream [`Source`], for composing
/// with channels and the [`Limiter`](crate::limit::Limiter).
pub struct SubStreamSource<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    guard: Arc<SubGuard<T, R>>,
}

impl<T, R> SubStreamSource<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Non-blocking pull: returns immediately with `None` when no value is
    /// available right now (more may arrive later). Used by the batching
    /// dispatcher to coalesce whatever is ready into one frame without
    /// stalling on values that are still in flight elsewhere.
    pub fn try_pull(&mut self) -> Option<Lend<T>> {
        self.guard.shared.try_ask(self.guard.id)
    }

    /// Non-blocking pull that also reports termination, the shape an
    /// event-driven dispatcher needs: `None` means "would block" (poll again
    /// after the lender's waker fires), `Some(Answer::Done)` means this
    /// sub-stream will never be handed another value, so the dispatcher can
    /// close its channel.
    pub fn poll_pull(&mut self) -> Option<Answer<Lend<T>>> {
        self.guard.shared.try_ask_status(self.guard.id)
    }
}

impl<T, R> Source<Lend<T>> for SubStreamSource<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn pull(&mut self, request: Request) -> Answer<Lend<T>> {
        if request.is_termination() {
            // Termination of the task flow alone does not end the sub-stream:
            // results may still be arriving on the other half.
            return Answer::Done;
        }
        self.guard.shared.ask(self.guard.id)
    }
}

/// The sub-stream's result sink as a pull-stream [`Sink`].
///
/// Draining a source of `Lend<R>` into this sink returns each result to the
/// lender. When the drained source terminates, the sub-stream ends: gracefully
/// on a clean `Done`, with crash semantics on an error.
pub struct SubStreamSink<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    guard: Arc<SubGuard<T, R>>,
}

impl<T, R> SubStreamSink<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Returns one result to the lender without draining a source, the shape
    /// used by a receive loop that demultiplexes batched result frames.
    ///
    /// A late result for a value that was already re-lent elsewhere is
    /// reported as a protocol error; callers following the conservative
    /// property simply drop it (the other copy is authoritative).
    ///
    /// # Errors
    ///
    /// Returns a protocol error if `seq` is not currently borrowed by this
    /// sub-stream.
    pub fn push(&self, seq: u64, result: R) -> Result<(), StreamError> {
        self.guard.shared.push_result(self.guard.id, seq, result)
    }

    /// Ends the sub-stream explicitly: gracefully when `clean`, with crash
    /// semantics (borrowed values re-lent) otherwise. Idempotent with the
    /// guard's drop-based end-of-life.
    pub fn finish(&self, clean: bool) {
        if clean {
            self.guard.ended_clean.store(true, Ordering::SeqCst);
            self.guard.shared.end_sub(self.guard.id, SubStreamEnd::Completed);
        } else {
            self.guard.shared.end_sub(self.guard.id, SubStreamEnd::Crashed);
        }
    }
}

impl<T, R> Sink<Lend<R>> for SubStreamSink<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn drain(&mut self, mut source: BoxSource<Lend<R>>) -> Result<(), StreamError> {
        loop {
            match source.pull(Request::Ask) {
                Answer::Value(lend) => {
                    // A late result for a value that was already re-lent is
                    // dropped: the conservative property means the other copy
                    // is authoritative.
                    let _ = self.guard.shared.push_result(self.guard.id, lend.seq, lend.value);
                }
                Answer::Done => {
                    self.guard.ended_clean.store(true, Ordering::SeqCst);
                    self.guard.shared.end_sub(self.guard.id, SubStreamEnd::Completed);
                    return Ok(());
                }
                Answer::Err(err) => {
                    self.guard.shared.end_sub(self.guard.id, SubStreamEnd::Crashed);
                    return Err(err);
                }
            }
        }
    }
}

/// The ordered output stream of a [`StreamLender`]. Implements [`Source`].
pub struct LenderOutput<T, R> {
    shared: Arc<Shared<T, R>>,
}

impl<T, R> std::fmt::Debug for LenderOutput<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LenderOutput").finish_non_exhaustive()
    }
}

impl<T, R> LenderOutput<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Pulls the next in-order result, waiting at most `timeout`.
    ///
    /// Returns `None` on timeout; the stream is left untouched, so the caller
    /// may retry. Useful for monitors that interleave other work.
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Answer<R>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(answer) = Shared::poll_output(&mut state) {
                drop(state);
                self.shared.notify();
                return Some(answer);
            }
            if self.shared.changed.wait_until(&mut state, deadline).timed_out() {
                return Shared::poll_output(&mut state);
            }
        }
    }
}

impl<T, R> Source<R> for LenderOutput<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn pull(&mut self, request: Request) -> Answer<R> {
        let mut state = self.shared.state.lock();
        if request.is_termination() {
            state.output_closed = true;
            state.input_done = true;
            // Release the upstream input if it is resting in place.
            if let Some(mut input) = state.input.take() {
                MutexGuard::unlocked(&mut state, || {
                    let _ = input.pull(Request::Abort);
                });
                state.input = Some(input);
            }
            drop(state);
            self.shared.notify();
            return match request {
                Request::Fail(err) => Answer::Err(err),
                _ => Answer::Done,
            };
        }
        loop {
            if let Some(answer) = Shared::poll_output(&mut state) {
                drop(state);
                self.shared.notify();
                return answer;
            }
            self.shared.changed.wait(&mut state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{count, failing, SourceExt};
    use std::thread;

    fn square_worker(mut sub: SubStream<u64, u64>) -> thread::JoinHandle<u64> {
        thread::spawn(move || {
            let mut processed = 0;
            while let Some(task) = sub.next_task() {
                sub.push_result(task.seq, task.value * task.value).unwrap();
                processed += 1;
            }
            sub.complete();
            processed
        })
    }

    #[test]
    fn single_substream_processes_everything_in_order() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(50));
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        assert_eq!(worker.join().unwrap(), 50);
        assert_eq!(output, (1..=50u64).map(|x| x * x).collect::<Vec<_>>());
        let stats = lender.stats();
        assert_eq!(stats.values_read, 50);
        assert_eq!(stats.results_emitted, 50);
        assert_eq!(stats.substreams_completed, 1);
        assert_eq!(stats.substreams_crashed, 0);
        assert_eq!(stats.relends, 0);
        assert!(lender.is_drained());
    }

    #[test]
    fn many_substreams_share_the_work() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(200));
        let workers: Vec<_> = (0..4).map(|_| square_worker(lender.lend())).collect();
        let output = lender.output().collect_values().unwrap();
        let processed: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(processed.iter().sum::<u64>(), 200, "every value processed exactly once");
        assert_eq!(output, (1..=200u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_terminates_immediately() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(0));
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        assert!(output.is_empty());
        assert_eq!(worker.join().unwrap(), 0);
    }

    #[test]
    fn output_without_any_substream_waits_until_one_joins() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(5));
        let output_handle = {
            let output = lender.output();
            thread::spawn(move || output.collect_values().unwrap())
        };
        // Give the output thread time to start waiting with no device around.
        thread::sleep(Duration::from_millis(30));
        let worker = square_worker(lender.lend());
        assert_eq!(output_handle.join().unwrap(), vec![1, 4, 9, 16, 25]);
        worker.join().unwrap();
    }

    #[test]
    fn crashed_substream_values_are_relent() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(10));
        // First sub-stream borrows three values and crashes without answering.
        let mut doomed = lender.lend();
        let t1 = doomed.next_task().unwrap();
        let t2 = doomed.next_task().unwrap();
        let t3 = doomed.next_task().unwrap();
        assert_eq!(doomed.borrowed(), 3);
        assert_eq!((t1.seq, t2.seq, t3.seq), (0, 1, 2));
        drop(doomed); // crash-stop

        assert_eq!(lender.failed_pending(), 3);
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        worker.join().unwrap();
        assert_eq!(output, (1..=10u64).map(|x| x * x).collect::<Vec<_>>());
        let stats = lender.stats();
        assert_eq!(stats.relends, 3);
        assert_eq!(stats.substreams_crashed, 1);
        // Only 10 input values were ever read despite the crash (laziness +
        // conservative re-lend, not re-read).
        assert_eq!(stats.values_read, 10);
    }

    #[test]
    fn graceful_complete_with_outstanding_values_relends_them() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(4));
        let mut polite = lender.lend();
        let task = polite.next_task().unwrap();
        assert_eq!(task.seq, 0);
        polite.complete(); // leaves without finishing its borrowed value
        assert_eq!(lender.failed_pending(), 1);
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        worker.join().unwrap();
        assert_eq!(output, vec![1, 4, 9, 16]);
        assert_eq!(lender.stats().substreams_completed, 2);
    }

    #[test]
    fn results_are_ordered_even_with_out_of_order_completion() {
        let lender: StreamLender<u64, String> = StreamLender::new(count(3));
        let mut sub = lender.lend();
        let a = sub.next_task().unwrap();
        let b = sub.next_task().unwrap();
        let c = sub.next_task().unwrap();
        // Push results out of order.
        sub.push_result(c.seq, format!("r{}", c.value)).unwrap();
        sub.push_result(a.seq, format!("r{}", a.value)).unwrap();
        sub.push_result(b.seq, format!("r{}", b.value)).unwrap();
        // One more ask discovers that the input is exhausted.
        assert!(sub.next_task().is_none());
        sub.complete();
        let output = lender.output().collect_values().unwrap();
        assert_eq!(output, vec!["r1", "r2", "r3"]);
    }

    #[test]
    fn push_result_for_unborrowed_value_is_rejected() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(3));
        let mut sub = lender.lend();
        let task = sub.next_task().unwrap();
        sub.push_result(task.seq, 1).unwrap();
        let err = sub.push_result(task.seq, 1).unwrap_err();
        assert!(err.is_protocol());
        let err = sub.push_result(99, 1).unwrap_err();
        assert!(err.is_protocol());
    }

    #[test]
    fn dynamic_join_mid_stream() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(100));
        let first = square_worker(lender.lend());
        // A second device joins while the first is already processing.
        thread::sleep(Duration::from_millis(5));
        let second = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        first.join().unwrap();
        second.join().unwrap();
        assert_eq!(output.len(), 100);
        assert_eq!(lender.stats().substreams_created, 2);
    }

    #[test]
    fn input_is_read_lazily() {
        use std::sync::atomic::AtomicU64;
        let reads = Arc::new(AtomicU64::new(0));
        let reads_clone = reads.clone();
        let input = crate::source::infinite(move |i| {
            reads_clone.fetch_add(1, Ordering::SeqCst);
            i
        });
        let lender: StreamLender<u64, u64> = StreamLender::new(input);
        // Nothing is read until a sub-stream asks.
        thread::sleep(Duration::from_millis(10));
        assert_eq!(reads.load(Ordering::SeqCst), 0);
        let mut sub = lender.lend();
        let _ = sub.next_task().unwrap();
        let _ = sub.next_task().unwrap();
        assert_eq!(reads.load(Ordering::SeqCst), 2, "exactly as many reads as asks");
        sub.complete();
        lender.shutdown();
    }

    #[test]
    fn conservative_lending_no_duplicate_processing() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(500));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut sub = lender.lend();
            let seen = seen.clone();
            handles.push(thread::spawn(move || {
                while let Some(task) = sub.next_task() {
                    seen.lock().push(task.seq);
                    sub.push_result(task.seq, task.value).unwrap();
                }
                sub.complete();
            }));
        }
        let output = lender.output().collect_values().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(output.len(), 500);
        let mut seqs = seen.lock().clone();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 500, "no value processed twice in a failure-free run");
    }

    #[test]
    fn adaptive_faster_substream_processes_more() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(300));
        let fast = {
            let mut sub = lender.lend();
            thread::spawn(move || {
                let mut n = 0u64;
                while let Some(task) = sub.next_task() {
                    sub.push_result(task.seq, task.value).unwrap();
                    n += 1;
                }
                sub.complete();
                n
            })
        };
        let slow = {
            let mut sub = lender.lend();
            thread::spawn(move || {
                let mut n = 0u64;
                while let Some(task) = sub.next_task() {
                    thread::sleep(Duration::from_millis(1));
                    sub.push_result(task.seq, task.value).unwrap();
                    n += 1;
                }
                sub.complete();
                n
            })
        };
        let output = lender.output().collect_values().unwrap();
        let fast_n = fast.join().unwrap();
        let slow_n = slow.join().unwrap();
        assert_eq!(output.len(), 300);
        assert_eq!(fast_n + slow_n, 300);
        assert!(
            fast_n > slow_n,
            "faster device must receive more values (fast={fast_n}, slow={slow_n})"
        );
    }

    #[test]
    fn input_error_is_propagated_after_pending_results() {
        let lender: StreamLender<u64, u64> =
            StreamLender::new(failing(StreamError::new("bad input")));
        let worker = square_worker(lender.lend());
        let err = lender.output().collect_values().unwrap_err();
        assert_eq!(err.message(), "bad input");
        worker.join().unwrap();
    }

    #[test]
    fn output_abort_shuts_everything_down() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(1_000_000));
        let mut sub = lender.lend();
        let task = sub.next_task().unwrap();
        sub.push_result(task.seq, task.value).unwrap();
        let mut output = lender.output();
        assert_eq!(output.pull(Request::Ask), Answer::Value(1));
        assert_eq!(output.pull(Request::Abort), Answer::Done);
        // The sub-stream is told Done on its next ask.
        assert!(sub.next_task().is_none());
        sub.complete();
    }

    #[test]
    fn shutdown_terminates_output() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(10));
        lender.shutdown();
        assert_eq!(lender.output().collect_values().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn try_next_task_does_not_block() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(1));
        let mut a = lender.lend();
        let mut b = lender.lend();
        let task = a.next_task().unwrap();
        // Input exhausted and the only value is borrowed by `a`: `b` must not
        // block here.
        assert!(b.try_next_task().is_none());
        a.push_result(task.seq, 7).unwrap();
        a.complete();
        b.complete();
        assert_eq!(lender.output().collect_values().unwrap(), vec![7]);
    }

    #[test]
    fn poll_task_distinguishes_would_block_from_done() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(1));
        let mut a = lender.lend();
        let mut b = lender.lend();
        let Some(Answer::Value(task)) = a.poll_task() else {
            panic!("a value is immediately available");
        };
        // The only value is borrowed by `a`: `b` must report "would block",
        // not termination — the value may be re-lent if `a` crashes.
        assert!(b.poll_task().is_none());
        a.push_result(task.seq, 7).unwrap();
        // Input exhausted and nothing in flight: now it is truly Done.
        assert!(matches!(b.poll_task(), Some(Answer::Done)));
        assert!(matches!(a.poll_task(), Some(Answer::Done)));
        a.complete();
        b.complete();
        assert_eq!(lender.output().collect_values().unwrap(), vec![7]);
    }

    #[test]
    fn poll_pull_reports_done_after_shutdown() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(5));
        let (mut source, sink) = lender.lend().into_duplex();
        assert!(matches!(source.poll_pull(), Some(Answer::Value(_))));
        lender.shutdown();
        assert!(matches!(source.poll_pull(), Some(Answer::Done)));
        sink.finish(true);
    }

    #[test]
    fn wakers_fire_on_state_changes() {
        use std::sync::atomic::AtomicUsize;
        let lender: StreamLender<u64, u64> = StreamLender::new(count(2));
        let wakeups = Arc::new(AtomicUsize::new(0));
        let counter = wakeups.clone();
        lender.add_waker(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        let mut sub = lender.lend();
        let before = wakeups.load(Ordering::SeqCst);
        assert!(before >= 1, "registering a sub-stream is a state change");
        let task = sub.next_task().unwrap();
        assert!(wakeups.load(Ordering::SeqCst) > before, "a lend is a state change");
        let before = wakeups.load(Ordering::SeqCst);
        sub.push_result(task.seq, 1).unwrap();
        assert!(wakeups.load(Ordering::SeqCst) > before, "a result is a state change");
        sub.complete();
        lender.shutdown();
    }

    #[test]
    fn prefetch_stages_values_for_later_asks() {
        // An input that only answers blocking pulls, like an interactive
        // queue: try_pull conservatively reports "would block".
        let input = |request: Request| -> Answer<u64> {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            if request.is_termination() {
                return Answer::Done;
            }
            let n = NEXT.fetch_add(1, Ordering::SeqCst);
            if n < 3 {
                Answer::Value(n)
            } else {
                Answer::Done
            }
        };
        let lender: StreamLender<u64, u64> = StreamLender::new(input);
        let mut sub = lender.lend();
        // Nothing available without the pump: the blanket FnMut source cannot
        // answer non-blocking asks.
        assert!(sub.poll_task().is_none());
        assert!(lender.prefetch_one());
        assert!(lender.prefetch_one());
        let a = sub.try_next_task().expect("prefetched value is available");
        let b = sub.try_next_task().expect("second prefetched value is available");
        assert_eq!((a.seq, b.seq), (0, 1));
        assert!(lender.prefetch_one());
        assert!(!lender.prefetch_one(), "the input is exhausted");
        let c = sub.next_task().unwrap();
        sub.push_result(a.seq, a.value).unwrap();
        sub.push_result(b.seq, b.value).unwrap();
        sub.push_result(c.seq, c.value).unwrap();
        assert!(matches!(sub.poll_task(), Some(Answer::Done)));
        sub.complete();
        assert_eq!(lender.output().collect_values().unwrap(), vec![0, 1, 2]);
        assert_eq!(lender.stats().values_read, 3);
        assert_eq!(lender.stats().relends, 0, "prefetching is not a re-lend");
    }

    #[test]
    fn next_timeout_returns_none_without_results() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(5));
        let mut output = lender.output();
        assert!(output.next_timeout(Duration::from_millis(20)).is_none());
        let _keep_alive = lender.lend();
    }

    #[test]
    fn lend_record_map_keeps_sequence() {
        let lend = Lend::new(4, 10u32).map(|v| v * 2);
        assert_eq!(lend, Lend::new(4, 20u32));
        assert_eq!(SubStreamId(3).to_string(), "sub-3");
        assert_eq!(SubStreamId(3).index(), 3);
    }

    #[test]
    fn duplex_adapters_complete_on_done() {
        use crate::duplex::Duplex;
        let lender: StreamLender<u64, u64> = StreamLender::new(count(20));
        let (sub_source, sub_sink) = lender.lend().into_duplex();
        // Worker that squares the lends it receives, as a duplex.
        let worker_duplex: Duplex<Lend<u64>, Lend<u64>> = {
            let (task_tx, task_rx) = crossbeam::channel::unbounded::<Lend<u64>>();
            let source = move |req: Request| -> Answer<Lend<u64>> {
                if req.is_termination() {
                    return Answer::Done;
                }
                match task_rx.recv() {
                    Ok(lend) => Answer::Value(lend.map(|v| v * v)),
                    Err(_) => Answer::Done,
                }
            };
            let sink = crate::sink::fn_sink(move |lend: Lend<u64>| {
                task_tx.send(lend).map_err(|_| StreamError::transport("worker gone"))
            });
            Duplex::new(source, sink)
        };
        let sub_duplex = Duplex::new(sub_source, sub_sink);
        let link = crate::duplex::connect(sub_duplex, worker_duplex);
        let output = lender.output().collect_values().unwrap();
        link.join().unwrap();
        assert_eq!(output, (1..=20u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(lender.stats().substreams_completed, 1);
    }

    #[test]
    fn duplex_adapter_crash_relends_values() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(6));
        let (mut sub_source, sub_sink) = lender.lend().into_duplex();
        // Borrow two values over the source half, then drop both halves
        // without pushing results: a crash.
        let a = sub_source.pull(Request::Ask);
        let b = sub_source.pull(Request::Ask);
        assert!(a.is_value() && b.is_value());
        drop(sub_source);
        drop(sub_sink);
        assert_eq!(lender.failed_pending(), 2);
        assert_eq!(lender.stats().substreams_crashed, 1);
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        worker.join().unwrap();
        assert_eq!(output, vec![1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn duplex_halves_support_nonblocking_batch_pumping() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(5));
        let (mut source, sink) = lender.lend().into_duplex();
        // Coalesce everything available without blocking.
        let mut batch = Vec::new();
        while let Some(lend) = source.try_pull() {
            batch.push(lend);
        }
        assert_eq!(batch.len(), 5, "all five values are immediately available");
        // Return results out of band, as a receive loop would.
        for lend in &batch {
            sink.push(lend.seq, lend.value + 100).unwrap();
        }
        // A second push for the same seq is a protocol error (conservative).
        assert!(sink.push(batch[0].seq, 0).is_err());
        sink.finish(true);
        drop(source);
        assert_eq!(lender.output().collect_values().unwrap(), vec![101, 102, 103, 104, 105]);
        assert_eq!(lender.stats().substreams_completed, 1);
        assert_eq!(lender.stats().substreams_crashed, 0);
    }

    #[test]
    fn sink_finish_unclean_relends_borrowed_values() {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(3));
        let (mut source, sink) = lender.lend().into_duplex();
        let first = source.try_pull().unwrap();
        assert_eq!(first.seq, 0);
        sink.finish(false);
        assert_eq!(lender.failed_pending(), 1);
        assert_eq!(lender.stats().substreams_crashed, 1);
        // The crashed half no longer hands out values.
        assert!(source.try_pull().is_none());
        drop(sink);
        drop(source);
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        worker.join().unwrap();
        assert_eq!(output, vec![1, 4, 9]);
    }

    #[test]
    fn liveness_after_repeated_crashes() {
        // Paper liveness property: once read, an input is eventually output as
        // long as some device remains active.
        let lender: StreamLender<u64, u64> = StreamLender::new(count(30));
        // Three generations of crashing workers, then one reliable worker.
        for _ in 0..3 {
            let mut sub = lender.lend();
            for _ in 0..5 {
                if let Some(task) = sub.next_task() {
                    // Processes a couple then crashes with values in hand.
                    if task.seq % 2 == 0 {
                        sub.push_result(task.seq, task.value * task.value).unwrap();
                    }
                }
            }
            drop(sub);
        }
        let worker = square_worker(lender.lend());
        let output = lender.output().collect_values().unwrap();
        worker.join().unwrap();
        assert_eq!(output, (1..=30u64).map(|x| x * x).collect::<Vec<_>>());
        assert!(lender.stats().relends > 0);
    }
}
