//! Sharded stream lenders: multi-core dispatch without a global lock.
//!
//! A [`StreamLender`] funnels every borrow and every result through one
//! mutex, which caps dispatch at a single core no matter how many threads
//! serve sub-streams. A [`ShardedLender`] removes that ceiling by running
//! `N` independent lenders — *shards* — side by side:
//!
//! ```text
//!                      ┌───────────┐   chunk-granular claims
//!   input ──► splitter │ seq space │──► shard 0: StreamLender ─► output 0 ─┐
//!                      │  0,1,2,…  │──► shard 1: StreamLender ─► output 1 ─┤ merge ─► ordered
//!                      └───────────┘──► shard N: StreamLender ─► output N ─┘         output
//! ```
//!
//! * **Splitter** — one shared stage pulls the real input source and hands
//!   each shard a *contiguous chunk* of the sequence space at a time.
//!   Chunks are claimed on demand: the shard that asks while the global
//!   read position sits in unassigned territory becomes the owner of the
//!   next chunk. Demand-driven claiming keeps the lender *lazy* (no value
//!   is read without a sub-stream asking; the read-ahead beyond delivered
//!   demand is bounded by one chunk per shard) and *adaptive* (fast shards
//!   claim more chunks), and it never strands work on a shard that has no
//!   devices.
//! * **Shards** — each claimed chunk is fed to the owning shard's private
//!   [`StreamLender`]. Borrow bookkeeping, result reordering and — crucially
//!   — the re-lending of values held by crashed sub-streams all happen under
//!   that shard's own lock: fault recovery never takes a cross-shard lock.
//! * **Merge** — [`ShardedLender::output`] replays the splitter's claim log
//!   chunk by chunk, pulling each chunk's results from its owner's ordered
//!   output, so the merged stream is in global input order, exactly like a
//!   single lender's output.
//!
//! With `shards = 1` the layout degenerates to today's single lender: one
//! claim covers the whole stream, the merge stage forwards one output, and
//! per-seq behaviour (order, laziness, fault re-lending) is unchanged.
//!
//! Each shard numbers its lends with its own *local* sequence counter (a
//! shard's [`Lend::seq`](crate::lender::Lend) restarts at 0); local order is
//! global order restricted to the shard, and the merge stage restores the
//! global interleaving from the claim log. Wire protocols built on top only
//! ever see one shard per channel, so local numbering is invisible to them.
//!
//! # Examples
//!
//! One shard worked synchronously; with a single consumer every chunk is
//! claimed by that shard, the merged output is the input order, and the
//! claim log records the chunk → shard assignment:
//!
//! ```
//! use pando_pull_stream::shard::ShardedLender;
//! use pando_pull_stream::source::{count, SourceExt};
//!
//! let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(6), 2, 2);
//! let mut sub = sharded.lend_on(1);
//! while let Some(task) = sub.next_task() {
//!     sub.push_result(task.seq, task.value * 10).unwrap();
//! }
//! sub.complete();
//! assert_eq!(sharded.output().collect_values().unwrap(), vec![10, 20, 30, 40, 50, 60]);
//! // Three data chunks plus the claim of the ask that found the input
//! // exhausted — all owned by the only shard that ever asked.
//! assert_eq!(sharded.claim_log(), vec![1, 1, 1, 1]);
//! ```
//!
//! Claim ordering is demand-driven, so under concurrent shards it depends on
//! scheduling; a single-threaded scheduler (such as the deterministic
//! fleet simulator of `pando_core::sim`) makes it — and therefore the whole
//! dispatch history — reproducible run over run.

use crate::error::StreamError;
use crate::lender::{LenderOutput, LenderStats, LenderWaker, StreamLender, SubStream, WeakLender};
use crate::protocol::{Answer, Request};
use crate::source::{BoxSource, Source};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the shared input terminated.
#[derive(Debug, Clone)]
enum Term {
    Done,
    Failed(StreamError),
}

impl Term {
    fn answer<V>(&self) -> Answer<V> {
        match self {
            Term::Done => Answer::Done,
            Term::Failed(err) => Answer::Err(err.clone()),
        }
    }
}

/// Per-shard termination notifier: nudges the shard's lender to pull its
/// port once so it books `input_done` without waiting for a device ask.
type Notifier = Box<dyn Fn() + Send + Sync>;

struct SplitterState<T> {
    /// The shared upstream source; `None` while checked out by a blocking
    /// puller, so the state lock is never held across a blocking pull (the
    /// checkout protocol of [`StreamLender`]'s own input).
    source: Option<BoxSource<T>>,
    source_checked_out: bool,
    /// Values read from the source so far; also the next global seq.
    pulled: u64,
    /// Chunk index → owning shard, in claim order. This is the log the
    /// merge stage replays to reassemble the global order.
    assignment: Vec<usize>,
    /// Values pulled past the asking shard's position, parked for the chunk
    /// owner until it asks. One pull parks at most `chunk - 1` values (it
    /// stops inside the asker's own fresh chunk), and un-popped parked
    /// values total at most one chunk per shard — the splitter's read-ahead
    /// beyond actual demand is bounded by `shards × chunk`.
    parked: Vec<VecDeque<T>>,
    term: Option<Term>,
}

struct Splitter<T> {
    chunk: u64,
    state: Mutex<SplitterState<T>>,
    /// Signals the merge stage that a chunk was claimed or the input ended.
    assign_cond: Condvar,
    /// Signals blocking pullers that the checked-out source came back (or
    /// that the stream terminated while they were waiting for it).
    source_cond: Condvar,
    /// Per-shard readiness callbacks, fired when a value was parked for the
    /// shard (its next non-blocking ask will succeed) or the input ended.
    wakers: Mutex<Vec<Vec<LenderWaker>>>,
    /// Per-shard termination broadcast (see [`Notifier`]); installed once at
    /// construction, after the lenders exist.
    notifiers: Mutex<Vec<Notifier>>,
}

impl<T> Splitter<T>
where
    T: Clone + Send + 'static,
{
    /// The owner of the next global position, claiming a fresh chunk for
    /// `asking` when the position enters unassigned territory.
    fn owner_of_next(&self, state: &mut SplitterState<T>, asking: usize) -> usize {
        let chunk_index = (state.pulled / self.chunk) as usize;
        if chunk_index == state.assignment.len() {
            state.assignment.push(asking);
            self.assign_cond.notify_all();
        }
        state.assignment[chunk_index]
    }

    /// Blocking pull of shard `shard`'s port: answers from the shard's
    /// parked values first, then drives the shared source forward — parking
    /// values owned by other shards — until a value lands in a chunk owned
    /// by `shard` or the input terminates.
    ///
    /// The source is pulled with the splitter lock *released* (checkout
    /// protocol): a slow interactive input (a stubborn queue, a feedback
    /// loop) must never hold the lock the merge stage and the non-blocking
    /// ask path need.
    fn pull_for(&self, shard: usize) -> Answer<T> {
        loop {
            let mut notify_parked: Option<usize> = None;
            let mut terminated = false;
            let delivered: Option<Answer<T>>;
            {
                let mut state = self.state.lock();
                if let Some(value) = state.parked[shard].pop_front() {
                    return Answer::Value(value);
                }
                if let Some(term) = &state.term {
                    return term.answer();
                }
                if state.source_checked_out {
                    // Another shard is pulling the source; its return (or a
                    // parked value / the termination) wakes us.
                    self.source_cond.wait(&mut state);
                    continue;
                }
                let owner = self.owner_of_next(&mut state, shard);
                let mut source = state.source.take().expect("source present when not checked out");
                state.source_checked_out = true;
                let answer =
                    parking_lot::MutexGuard::unlocked(&mut state, || source.pull(Request::Ask));
                state.source = Some(source);
                state.source_checked_out = false;
                if state.term.is_some() {
                    // Torn down while we were pulling: release the source
                    // (checkout protocol again — its abort handling may be
                    // slow); the pulled value (if any) dies with the stream,
                    // like a value read during a single lender's output
                    // abort.
                    Self::release_source(&mut state, Request::Abort);
                    delivered = Some(state.term.as_ref().expect("checked above").answer());
                } else {
                    match answer {
                        Answer::Value(value) => {
                            state.pulled += 1;
                            if owner == shard {
                                delivered = Some(Answer::Value(value));
                            } else {
                                state.parked[owner].push_back(value);
                                notify_parked = Some(owner);
                                delivered = None;
                            }
                        }
                        Answer::Done => {
                            state.term = Some(Term::Done);
                            terminated = true;
                            delivered = None;
                        }
                        Answer::Err(err) => {
                            state.term = Some(Term::Failed(err));
                            terminated = true;
                            delivered = None;
                        }
                    }
                }
            }
            // Out of the lock: wake checkout waiters, the owner of a parked
            // value, and — on termination — everyone.
            self.source_cond.notify_all();
            if let Some(owner) = notify_parked {
                self.fire_wakers(Some(owner));
            }
            if terminated {
                self.after_termination(shard);
            }
            if let Some(answer) = delivered {
                return answer;
            }
            // Either a value was parked for another shard (keep pulling for
            // ours) or the termination was just recorded (the next iteration
            // answers it).
        }
    }

    /// Non-blocking variant of [`Splitter::pull_for`]: `None` means "would
    /// block" — the source is checked out by a blocking puller or would
    /// itself have to wait. Parked values and the recorded termination are
    /// answered even while the source is checked out.
    fn try_pull_for(&self, shard: usize) -> Option<Answer<T>> {
        let mut parked_for: Vec<usize> = Vec::new();
        let mut terminated = false;
        let answer = {
            let mut state = self.state.lock();
            loop {
                if let Some(value) = state.parked[shard].pop_front() {
                    break Some(Answer::Value(value));
                }
                if let Some(term) = &state.term {
                    break Some(term.answer());
                }
                if state.source_checked_out {
                    break None;
                }
                let owner = self.owner_of_next(&mut state, shard);
                // `try_pull` is contractually immediate, so holding the lock
                // across it is safe (and keeps claim + pull atomic).
                match state.source.as_mut().expect("source present when not checked out").try_pull()
                {
                    // The source would have to wait; a claimed-but-empty
                    // chunk stands and is filled by a later (possibly
                    // pumped) pull.
                    None => break None,
                    Some(Answer::Value(value)) => {
                        state.pulled += 1;
                        if owner == shard {
                            break Some(Answer::Value(value));
                        }
                        state.parked[owner].push_back(value);
                        if !parked_for.contains(&owner) {
                            parked_for.push(owner);
                        }
                    }
                    Some(Answer::Done) => {
                        state.term = Some(Term::Done);
                        terminated = true;
                    }
                    Some(Answer::Err(err)) => {
                        state.term = Some(Term::Failed(err));
                        terminated = true;
                    }
                }
            }
        };
        for owner in parked_for {
            self.fire_wakers(Some(owner));
        }
        if terminated {
            self.after_termination(shard);
        }
        answer
    }

    /// Releases the upstream source with a termination `request`, using the
    /// checkout protocol so the state lock is never held across the
    /// source's (potentially slow) termination handling. A no-op while the
    /// source is checked out by an in-flight pull: that puller releases it
    /// when it returns and observes the recorded termination.
    fn release_source(state: &mut parking_lot::MutexGuard<'_, SplitterState<T>>, request: Request) {
        if state.source_checked_out {
            return;
        }
        let Some(mut source) = state.source.take() else {
            return;
        };
        state.source_checked_out = true;
        parking_lot::MutexGuard::unlocked(state, || {
            let _ = source.pull(request);
        });
        state.source = Some(source);
        state.source_checked_out = false;
    }

    /// Handles a termination request arriving through shard `shard`'s port
    /// (its lender shut down or its output was aborted): the shared source
    /// is released once and every other shard is notified. A source checked
    /// out by an in-flight blocking pull is released by that puller when it
    /// returns and observes the recorded termination.
    fn terminate(&self, shard: usize, request: Request) -> Answer<T> {
        let mut terminated = false;
        let answer = {
            let mut state = self.state.lock();
            if state.term.is_none() {
                state.term = Some(match &request {
                    Request::Fail(err) => Term::Failed(err.clone()),
                    _ => Term::Done,
                });
                terminated = true;
                Self::release_source(&mut state, request);
            }
            state.term.as_ref().expect("termination recorded above").answer()
        };
        if terminated {
            self.after_termination(shard);
        }
        answer
    }

    /// Fires the readiness callbacks of one shard (`Some`) or all (`None`).
    /// Called outside the state lock.
    fn fire_wakers(&self, shard: Option<usize>) {
        let wakers = self.wakers.lock();
        match shard {
            Some(shard) => {
                for waker in &wakers[shard] {
                    waker();
                }
            }
            None => {
                for shard_wakers in wakers.iter() {
                    for waker in shard_wakers {
                        waker();
                    }
                }
            }
        }
    }

    /// Post-termination notifications (outside the state lock): wakes every
    /// shard and checkout waiter, releases the merge stage, and broadcasts
    /// the end to every *other* shard's lender so each books `input_done`
    /// without waiting for a device ask. The origin shard is skipped
    /// because its own port pull is still in flight (its lender's input is
    /// checked out; a reentrant prefetch would wait on itself).
    fn after_termination(&self, origin: usize) {
        self.source_cond.notify_all();
        self.assign_cond.notify_all();
        self.fire_wakers(None);
        let notifiers = self.notifiers.lock();
        for (index, notify) in notifiers.iter().enumerate() {
            if index != origin {
                notify();
            }
        }
    }

    fn parked_len(&self, shard: usize) -> usize {
        self.state.lock().parked[shard].len()
    }
}

/// The input port of one shard: a [`Source`] fed by the shared splitter.
struct SplitterPort<T> {
    splitter: Arc<Splitter<T>>,
    shard: usize,
}

impl<T> Source<T> for SplitterPort<T>
where
    T: Clone + Send + 'static,
{
    fn pull(&mut self, request: Request) -> Answer<T> {
        if request.is_termination() {
            return self.splitter.terminate(self.shard, request);
        }
        self.splitter.pull_for(self.shard)
    }

    fn try_pull(&mut self) -> Option<Answer<T>> {
        self.splitter.try_pull_for(self.shard)
    }
}

/// Splits one input stream across `N` independent [`StreamLender`] shards
/// and merges their ordered outputs back into a single stream in global
/// input order. See the [module documentation](self) for the layout.
pub struct ShardedLender<T, R> {
    lenders: Vec<StreamLender<T, R>>,
    splitter: Arc<Splitter<T>>,
}

impl<T, R> Clone for ShardedLender<T, R> {
    /// Cloning yields another handle on the same sharded deployment.
    fn clone(&self) -> Self {
        Self { lenders: self.lenders.clone(), splitter: self.splitter.clone() }
    }
}

impl<T, R> std::fmt::Debug for ShardedLender<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.splitter.state.lock();
        f.debug_struct("ShardedLender")
            .field("shards", &self.lenders.len())
            .field("chunk", &self.splitter.chunk)
            .field("pulled", &state.pulled)
            .field("chunks_claimed", &state.assignment.len())
            .field("terminated", &state.term.is_some())
            .finish()
    }
}

impl<T, R> ShardedLender<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Creates a sharded lender over `input` with `shards` independent
    /// lender instances, handing out the sequence space in contiguous
    /// chunks of `chunk` values.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `chunk` is zero.
    pub fn new(input: impl Source<T> + 'static, shards: usize, chunk: usize) -> Self {
        assert!(shards > 0, "a sharded lender needs at least one shard");
        assert!(chunk > 0, "the shard chunk must be at least one value");
        let splitter = Arc::new(Splitter {
            chunk: chunk as u64,
            state: Mutex::new(SplitterState {
                source: Some(Box::new(input)),
                source_checked_out: false,
                pulled: 0,
                assignment: Vec::new(),
                parked: (0..shards).map(|_| VecDeque::new()).collect(),
                term: None,
            }),
            assign_cond: Condvar::new(),
            source_cond: Condvar::new(),
            wakers: Mutex::new((0..shards).map(|_| Vec::new()).collect()),
            notifiers: Mutex::new(Vec::new()),
        });
        let lenders: Vec<StreamLender<T, R>> = (0..shards)
            .map(|shard| StreamLender::new(SplitterPort { splitter: splitter.clone(), shard }))
            .collect();
        // The termination broadcast holds weak handles so the splitter does
        // not keep the lenders (and through them itself) alive.
        let notifiers: Vec<Notifier> = lenders
            .iter()
            .map(|lender| {
                let weak: WeakLender<T, R> = lender.downgrade();
                Box::new(move || {
                    if let Some(lender) = weak.upgrade() {
                        // Never wait: if the shard's input is checked out by
                        // a blocked pull, that holder books the termination
                        // itself when it returns — and if it never returns
                        // (an interactive source gone silent after an
                        // abort), nothing may hang the broadcaster on it.
                        let _ = lender.try_prefetch_one();
                    }
                }) as Notifier
            })
            .collect();
        *splitter.notifiers.lock() = notifiers;
        Self { lenders, splitter }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.lenders.len()
    }

    /// The splitter's claim log so far: entry `i` is the shard that owns
    /// chunk `i` of the sequence space, in claim order. This is the record
    /// the merge stage replays, and — because chunks are claimed on demand —
    /// a faithful trace of *which shard dispatched which slice of the
    /// input*. Under a single-threaded deterministic scheduler (the
    /// virtual-clock fleet simulator) the log is identical across same-seed
    /// runs, which makes it the canonical artefact for replaying and
    /// diffing shard scheduling decisions.
    pub fn claim_log(&self) -> Vec<usize> {
        self.splitter.state.lock().assignment.clone()
    }

    /// Size of the contiguous seq-space chunks handed to each shard.
    pub fn chunk(&self) -> usize {
        self.splitter.chunk as usize
    }

    /// Creates a new sub-stream on shard `shard`. Sub-streams may be created
    /// at any time (the *dynamic* property), on any shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn lend_on(&self, shard: usize) -> SubStream<T, R> {
        self.lenders[shard].lend()
    }

    /// Registers a change callback for shard `shard`: invoked on every state
    /// change of the shard's lender *and* whenever the splitter parks a
    /// value for the shard (so a non-blocking ask would now succeed). This
    /// is the per-shard waker hook of an event-driven dispatcher.
    pub fn add_shard_waker(&self, shard: usize, waker: LenderWaker) {
        self.lenders[shard].add_waker(waker.clone());
        self.splitter.wakers.lock()[shard].push(waker);
    }

    /// Reads one value on behalf of shard `shard` — blocking if the input
    /// needs time — and stages it in the shard's re-lend pool. Returns
    /// `false` once the shard will never receive another value. This is the
    /// per-shard input-pump hook (see [`StreamLender::prefetch_one`]).
    pub fn prefetch_shard(&self, shard: usize) -> bool {
        self.lenders[shard].prefetch_one()
    }

    /// Aggregated statistics across all shards.
    pub fn stats(&self) -> LenderStats {
        let mut total = LenderStats::default();
        for lender in &self.lenders {
            let stats = lender.stats();
            total.values_read += stats.values_read;
            total.results_emitted += stats.results_emitted;
            total.lends += stats.lends;
            total.relends += stats.relends;
            total.substreams_created += stats.substreams_created;
            total.substreams_completed += stats.substreams_completed;
            total.substreams_crashed += stats.substreams_crashed;
        }
        total
    }

    /// Per-shard statistics snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<LenderStats> {
        self.lenders.iter().map(StreamLender::stats).collect()
    }

    /// Number of sub-streams currently alive on shard `shard`.
    pub fn shard_active_substreams(&self, shard: usize) -> usize {
        self.lenders[shard].active_substreams()
    }

    /// Values currently lent out on shard `shard` and not yet returned.
    pub fn shard_in_flight(&self, shard: usize) -> usize {
        self.lenders[shard].in_flight()
    }

    /// Values staged or awaiting re-lend on shard `shard`: its lender's
    /// failed queue plus values parked for it in the splitter.
    pub fn shard_depth(&self, shard: usize) -> usize {
        self.lenders[shard].failed_pending() + self.splitter.parked_len(shard)
    }

    /// Values the shard's lender holds in its re-lend pool (crash recovery
    /// or pump staging). Exposed for the per-shard input pump: a non-empty
    /// pool means asks can already be answered without reading the input.
    pub fn shard_failed_pending(&self, shard: usize) -> usize {
        self.lenders[shard].failed_pending()
    }

    /// Returns `true` when shard `shard` still has work that a *new*
    /// sub-stream could progress: values awaiting re-lend, values parked in
    /// the splitter, or values in flight whose borrower may yet crash. A
    /// shut-down shard never needs help.
    pub fn shard_needs_help(&self, shard: usize) -> bool {
        if self.lenders[shard].is_shut_down() {
            return false;
        }
        self.shard_depth(shard) > 0 || self.lenders[shard].in_flight() > 0
    }

    /// Returns `true` once the input is exhausted, nothing is parked in the
    /// splitter, and every shard has emitted everything it read.
    pub fn is_drained(&self) -> bool {
        {
            let state = self.splitter.state.lock();
            if state.term.is_none() || state.parked.iter().any(|queue| !queue.is_empty()) {
                return false;
            }
        }
        self.lenders.iter().all(StreamLender::is_drained)
    }

    /// Shuts every shard down: outputs terminate after the values already
    /// emitted and sub-streams are told `Done` on their next ask.
    pub fn shutdown(&self) {
        self.splitter.terminate(usize::MAX, Request::Abort);
        for lender in &self.lenders {
            lender.shutdown();
        }
    }

    /// Returns the merged, globally ordered output stream.
    pub fn output(&self) -> ShardedOutput<T, R> {
        ShardedOutput {
            splitter: self.splitter.clone(),
            outputs: self.lenders.iter().map(StreamLender::output).collect(),
            emitted: 0,
            cached_owner: None,
            finished: None,
        }
    }
}

/// The merged output of a [`ShardedLender`]: replays the splitter's claim
/// log, pulling each chunk's results from the owning shard's ordered
/// output. Implements [`Source`].
pub struct ShardedOutput<T, R> {
    splitter: Arc<Splitter<T>>,
    outputs: Vec<LenderOutput<T, R>>,
    /// Results emitted so far; the next global seq to emit.
    emitted: u64,
    /// Owner of the chunk currently being emitted, cached so the hot path
    /// takes the splitter lock once per chunk, not once per value (a
    /// chunk's owner never changes once claimed).
    cached_owner: Option<(usize, usize)>,
    /// Remembered termination, for idempotent terminal answers.
    finished: Option<Term>,
}

impl<T, R> std::fmt::Debug for ShardedOutput<T, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOutput")
            .field("emitted", &self.emitted)
            .field("finished", &self.finished.is_some())
            .finish()
    }
}

/// What the merge stage should do for the chunk holding the next seq.
enum NextChunk {
    /// Pull the next result from this shard's output.
    Owner(usize),
    /// No such chunk was ever claimed and the input ended: the stream is
    /// complete; terminate the way the input did.
    Ended(Term),
}

impl<T, R> ShardedOutput<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    /// Resolves the owner of the chunk containing seq `self.emitted`,
    /// waiting (bounded by `deadline`, if any) until the chunk is claimed or
    /// the input terminates. `None` means the deadline passed. Owners are
    /// cached per chunk: the splitter lock is only taken when the emit
    /// position crosses into a chunk not resolved yet.
    fn next_chunk(&mut self, deadline: Option<Instant>) -> Option<NextChunk> {
        let chunk_index = (self.emitted / self.splitter.chunk) as usize;
        if let Some((cached_index, owner)) = self.cached_owner {
            if cached_index == chunk_index {
                return Some(NextChunk::Owner(owner));
            }
        }
        let mut state = self.splitter.state.lock();
        loop {
            if let Some(&owner) = state.assignment.get(chunk_index) {
                self.cached_owner = Some((chunk_index, owner));
                return Some(NextChunk::Owner(owner));
            }
            if let Some(term) = &state.term {
                return Some(NextChunk::Ended(term.clone()));
            }
            match deadline {
                Some(at) => {
                    if self.splitter.assign_cond.wait_until(&mut state, at).timed_out() {
                        return None;
                    }
                }
                None => self.splitter.assign_cond.wait(&mut state),
            }
        }
    }

    fn book(&mut self, answer: Answer<R>) -> Answer<R> {
        match &answer {
            Answer::Value(_) => self.emitted += 1,
            Answer::Done => self.finished = Some(Term::Done),
            Answer::Err(err) => self.finished = Some(Term::Failed(err.clone())),
        }
        answer
    }

    /// Pulls the next in-order result, waiting at most `timeout`; `None`
    /// means the timeout passed and the stream is untouched, like
    /// [`LenderOutput::next_timeout`].
    pub fn next_timeout(&mut self, timeout: Duration) -> Option<Answer<R>> {
        let deadline = Instant::now() + timeout;
        if let Some(term) = &self.finished {
            return Some(term.answer());
        }
        match self.next_chunk(Some(deadline))? {
            NextChunk::Owner(owner) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let answer = self.outputs[owner].next_timeout(remaining)?;
                Some(self.book(answer))
            }
            NextChunk::Ended(term) => {
                self.finished = Some(term.clone());
                Some(term.answer())
            }
        }
    }
}

impl<T, R> Source<R> for ShardedOutput<T, R>
where
    T: Clone + Send + 'static,
    R: Send + 'static,
{
    fn pull(&mut self, request: Request) -> Answer<R> {
        if request.is_termination() {
            // Aborting the merged output tears the whole deployment down,
            // like aborting a single lender's output: every shard's output
            // closes, the first one releasing the shared source.
            for output in &mut self.outputs {
                let _ = output.pull(request.clone());
            }
            let term = match request {
                Request::Fail(err) => Term::Failed(err),
                _ => Term::Done,
            };
            let answer = term.answer();
            self.finished = Some(term);
            return answer;
        }
        if let Some(term) = &self.finished {
            return term.answer();
        }
        match self.next_chunk(None).expect("no deadline: next_chunk cannot time out") {
            NextChunk::Owner(owner) => {
                let answer = self.outputs[owner].pull(Request::Ask);
                self.book(answer)
            }
            NextChunk::Ended(term) => {
                self.finished = Some(term.clone());
                term.answer()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{count, failing, SourceExt};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn square_worker(mut sub: SubStream<u64, u64>) -> thread::JoinHandle<u64> {
        thread::spawn(move || {
            let mut processed = 0;
            while let Some(task) = sub.next_task() {
                sub.push_result(task.seq, task.value * task.value).unwrap();
                processed += 1;
            }
            sub.complete();
            processed
        })
    }

    #[test]
    fn single_shard_matches_the_plain_lender() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(50), 1, 4);
        let worker = square_worker(sharded.lend_on(0));
        let output = sharded.output().collect_values().unwrap();
        assert_eq!(worker.join().unwrap(), 50);
        assert_eq!(output, (1..=50u64).map(|x| x * x).collect::<Vec<_>>());
        let stats = sharded.stats();
        assert_eq!(stats.values_read, 50);
        assert_eq!(stats.results_emitted, 50);
        assert_eq!(stats.relends, 0);
        assert!(sharded.is_drained());
    }

    #[test]
    fn four_shards_preserve_global_order() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(400), 4, 3);
        let workers: Vec<_> = (0..4)
            .flat_map(|shard| (0..2).map(move |_| shard))
            .map(|shard| square_worker(sharded.lend_on(shard)))
            .collect();
        let output = sharded.output().collect_values().unwrap();
        let processed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(processed, 400, "every value processed exactly once");
        assert_eq!(output, (1..=400u64).map(|x| x * x).collect::<Vec<_>>());
        assert!(sharded.is_drained());
    }

    #[test]
    fn claims_are_contiguous_chunks() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(64), 2, 8);
        // Only shard 1 ever asks: it claims every chunk, each one a
        // contiguous slice of the seq space.
        let mut sub = sharded.lend_on(1);
        let mut seqs = Vec::new();
        while let Some(task) = sub.next_task() {
            seqs.push(task.seq);
            sub.push_result(task.seq, task.value).unwrap();
        }
        sub.complete();
        assert_eq!(seqs, (0..64).collect::<Vec<u64>>(), "one shard sees the full seq space");
        assert_eq!(sharded.shard_stats()[1].values_read, 64);
        assert_eq!(sharded.shard_stats()[0].values_read, 0, "the idle shard claimed nothing");
        assert_eq!(sharded.output().collect_values().unwrap().len(), 64);
    }

    #[test]
    fn input_is_read_lazily_across_shards() {
        let reads = Arc::new(AtomicU64::new(0));
        let reads_clone = reads.clone();
        let input = crate::source::infinite(move |i| {
            reads_clone.fetch_add(1, Ordering::SeqCst);
            i
        });
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(input, 4, 2);
        assert_eq!(reads.load(Ordering::SeqCst), 0, "nothing is read before an ask");
        let mut sub = sharded.lend_on(2);
        for _ in 0..4 {
            let task = sub.next_task().unwrap();
            sub.push_result(task.seq, task.value).unwrap();
        }
        // Reads stay within one partial chunk of the values handed out.
        assert!(
            reads.load(Ordering::SeqCst) <= 4 + 1,
            "read-ahead must stay under one chunk (read {})",
            reads.load(Ordering::SeqCst)
        );
        sub.complete();
        sharded.shutdown();
    }

    #[test]
    fn crashed_substream_work_is_relent_within_the_shard() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(30), 2, 2);
        let mut doomed = sharded.lend_on(0);
        let t1 = doomed.next_task().unwrap();
        let t2 = doomed.next_task().unwrap();
        assert_eq!((t1.seq, t2.seq), (0, 1));
        drop(doomed); // crash-stop
        assert_eq!(sharded.shard_failed_pending(0), 2, "re-lend stays shard-local");
        assert_eq!(sharded.shard_failed_pending(1), 0);
        assert!(sharded.shard_needs_help(0));
        // A replacement on the same shard plus a worker on the other shard
        // complete the stream.
        let workers = [square_worker(sharded.lend_on(0)), square_worker(sharded.lend_on(1))];
        let output = sharded.output().collect_values().unwrap();
        for worker in workers {
            worker.join().unwrap();
        }
        assert_eq!(output, (1..=30u64).map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(sharded.stats().relends, 2);
        assert_eq!(sharded.stats().substreams_crashed, 1);
    }

    #[test]
    fn orphaned_shard_work_is_rescued_by_a_new_substream() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(12), 2, 2);
        // Shard 0 claims a chunk then dies with values in hand.
        let mut doomed = sharded.lend_on(0);
        let _ = doomed.next_task().unwrap();
        drop(doomed);
        // A worker on shard 1 cannot touch shard 0's claim...
        let worker1 = square_worker(sharded.lend_on(1));
        // ...but a late substream on shard 0 picks the orphaned values up.
        assert!(sharded.shard_needs_help(0));
        let worker0 = square_worker(sharded.lend_on(0));
        let output = sharded.output().collect_values().unwrap();
        worker0.join().unwrap();
        worker1.join().unwrap();
        assert_eq!(output, (1..=12u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn input_error_reaches_the_merged_output() {
        let sharded: ShardedLender<u64, u64> =
            ShardedLender::new(failing(StreamError::new("bad input")), 3, 2);
        let workers: Vec<_> = (0..3).map(|s| square_worker(sharded.lend_on(s))).collect();
        let err = sharded.output().collect_values().unwrap_err();
        assert_eq!(err.message(), "bad input");
        for worker in workers {
            worker.join().unwrap();
        }
    }

    #[test]
    fn shutdown_terminates_the_merged_output() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(10), 2, 2);
        sharded.shutdown();
        assert_eq!(sharded.output().collect_values().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn output_abort_shuts_every_shard_down() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(1_000_000), 2, 2);
        let mut sub = sharded.lend_on(0);
        let task = sub.next_task().unwrap();
        sub.push_result(task.seq, task.value).unwrap();
        let mut output = sharded.output();
        assert_eq!(output.pull(Request::Ask), Answer::Value(1));
        assert_eq!(output.pull(Request::Abort), Answer::Done);
        assert_eq!(output.pull(Request::Ask), Answer::Done, "termination is idempotent");
        assert!(sub.next_task().is_none(), "sub-streams are told Done after the abort");
        sub.complete();
        let mut other = sharded.lend_on(1);
        assert!(other.next_task().is_none());
        other.complete();
    }

    #[test]
    fn next_timeout_returns_none_without_results() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(5), 2, 2);
        let mut output = sharded.output();
        assert!(output.next_timeout(Duration::from_millis(20)).is_none());
        let _keep_alive = sharded.lend_on(0);
    }

    #[test]
    fn parked_values_are_popped_by_the_owner() {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(8), 2, 2);
        // Shard 0 claims chunk 0 (seqs 0-1) but only takes the first value;
        // shard 1's ask must then park seq 1 for shard 0, claim chunk 1 and
        // receive seq 2.
        let mut sub0 = sharded.lend_on(0);
        let first = sub0.next_task().unwrap();
        assert_eq!(first.value, 1);
        let mut sub1 = sharded.lend_on(1);
        let third = sub1.next_task().unwrap();
        assert_eq!(third.value, 3, "shard 1 skips the remainder of shard 0's chunk");
        assert_eq!(sharded.shard_depth(0), 1, "the second value is parked for shard 0");
        let second = sub0.next_task().unwrap();
        assert_eq!(second.value, 2, "the owner pops its parked value");
        sub0.push_result(first.seq, first.value).unwrap();
        sub0.push_result(second.seq, second.value).unwrap();
        sub1.push_result(third.seq, third.value).unwrap();
        // Drain the rest from shard 1 and finish.
        while let Some(task) = sub1.next_task() {
            sub1.push_result(task.seq, task.value).unwrap();
        }
        sub0.complete();
        sub1.complete();
        assert_eq!(sharded.output().collect_values().unwrap(), (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn abort_returns_while_a_blocking_pull_is_in_flight() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // An interactive source that blocks on Ask until it is told the
        // stream aborted — the shape of a feedback loop that never produces
        // again once the consumer leaves.
        let aborted = Arc::new(AtomicBool::new(false));
        let source_aborted = aborted.clone();
        let input = move |request: Request| -> Answer<u64> {
            if request.is_termination() {
                return Answer::Done;
            }
            while !source_aborted.load(Ordering::SeqCst) {
                thread::sleep(Duration::from_millis(1));
            }
            Answer::Done
        };
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(input, 2, 2);
        // A puller on shard 1 blocks inside the source with shard 1's input
        // (and the splitter source) checked out.
        let mut sub = sharded.lend_on(1);
        let puller = thread::spawn(move || {
            assert!(sub.next_task().is_none(), "the aborted stream lends nothing");
            sub.complete();
        });
        thread::sleep(Duration::from_millis(30));
        // Aborting the merged output must return promptly: the termination
        // broadcast may not wait on the blocked pull.
        let (done_tx, done_rx) = crossbeam::channel::unbounded();
        let mut output = sharded.output();
        let aborter = thread::spawn(move || {
            assert_eq!(output.pull(Request::Abort), Answer::Done);
            done_tx.send(()).unwrap();
        });
        done_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("abort must not wait for the blocked source pull");
        aborter.join().unwrap();
        // Unblock the source so the puller observes the termination.
        aborted.store(true, Ordering::SeqCst);
        puller.join().unwrap();
    }

    #[test]
    fn zero_shards_or_chunk_is_rejected() {
        let caught = std::panic::catch_unwind(|| {
            let _: ShardedLender<u64, u64> = ShardedLender::new(count(1), 0, 1);
        });
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| {
            let _: ShardedLender<u64, u64> = ShardedLender::new(count(1), 1, 0);
        });
        assert!(caught.is_err());
    }
}
