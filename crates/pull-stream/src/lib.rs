//! Pull-stream design pattern and the Pando coordination abstractions.
//!
//! This crate is a Rust reproduction of the streaming substrate used by the
//! Pando personal volunteer computing tool (Lavoie et al., Middleware 2019).
//! It provides:
//!
//! * the **pull-stream protocol** ([`Source`], [`Sink`], [`Request`],
//!   [`Answer`]): a lazy, demand-driven streaming protocol in which a
//!   downstream consumer *asks* for each value and an upstream producer
//!   answers with a *value*, *done*, or an *error* — the Rust analogue of the
//!   JavaScript `pull-stream` callback protocol used by Pando;
//! * a library of composable stream modules (sources, transformers and
//!   sinks) in [`source`], [`through`] and [`sink`];
//! * the typed payload layer ([`codec`]): [`codec::Payload`] is the binary
//!   wire form of every task and result (`bytes::Bytes`, cheap to clone and
//!   slice), and [`codec::TaskCodec`] maps application types to it —
//!   replacing the original tool's base64-string convention;
//! * the [`Limiter`](limit::Limiter) (`pull-limit`), which bounds the number
//!   of values in flight through a duplex channel so that data transfers can
//!   overlap with computation without flooding slow workers;
//! * the [`StreamLender`](lender::StreamLender) (`pull-lend-stream`), the
//!   paper's core contribution: it splits one input stream into many
//!   concurrent *sub-streams*, one per participating device, and merges the
//!   results back into a single ordered output stream while tolerating
//!   crash-stop failures of the devices;
//! * the [`ShardedLender`], which partitions the
//!   sequence space across `N` independent lender shards behind a splitter
//!   stage and merges their ordered outputs, so many cores can dispatch
//!   concurrently without a global lock;
//! * the [`StubbornQueue`](stubborn::StubbornQueue) (`pull-stubborn`), which
//!   resubmits inputs whose results could not be confirmed because an
//!   external data-distribution protocol failed.
//!
//! # Quick example
//!
//! The simplest pull-stream pipeline from the paper (Figure 5): a source that
//! lazily counts from 1 to `n` connected to a sink that consumes every value.
//!
//! ```
//! use pando_pull_stream::source::{count, SourceExt};
//!
//! let values: Vec<u64> = count(10).collect_values().expect("stream failed");
//! assert_eq!(values, (1..=10).collect::<Vec<_>>());
//! ```
//!
//! # StreamLender example
//!
//! ```
//! use pando_pull_stream::source::{count, SourceExt};
//! use pando_pull_stream::lender::StreamLender;
//! use std::thread;
//!
//! let lender: StreamLender<u64, u64> = StreamLender::new(count(100));
//!
//! // Two "devices" borrow values concurrently and return squared results.
//! let mut workers = Vec::new();
//! for _ in 0..2 {
//!     let mut sub = lender.lend();
//!     workers.push(thread::spawn(move || {
//!         while let Some(task) = sub.next_task() {
//!             let result = task.value * task.value;
//!             sub.push_result(task.seq, result).unwrap();
//!         }
//!         sub.complete();
//!     }));
//! }
//!
//! let output: Vec<u64> = lender.output().collect_values().unwrap();
//! for handle in workers { handle.join().unwrap(); }
//!
//! // Results come back in input order even though two workers raced.
//! assert_eq!(output, (1..=100u64).map(|x| x * x).collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod duplex;
pub mod error;
pub mod iter;
pub mod lender;
pub mod limit;
pub mod protocol;
pub mod shard;
pub mod sink;
pub mod source;
pub mod stubborn;
pub mod sync;
pub mod through;

pub use codec::{Payload, TaskCodec};
pub use error::StreamError;
pub use protocol::{Answer, End, Request};
pub use shard::{ShardedLender, ShardedOutput};
pub use sink::{BoxSink, Sink};
pub use source::{BoxSource, Source, SourceExt};
