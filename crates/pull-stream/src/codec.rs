//! Typed payload codecs: the boundary between application values and the
//! binary wire.
//!
//! The original Pando passes every value between the master and the
//! volunteers as a *string* (base64-encoding binary results, §2.1.1 of the
//! paper), which inflates payloads by 4/3 and forces an encode/parse round
//! trip per task. This module replaces that convention with a typed,
//! binary-safe pipeline:
//!
//! * [`Payload`] — the wire form of every task and result: [`bytes::Bytes`],
//!   an immutable, reference-counted byte buffer. Cloning and slicing a
//!   payload never copies the underlying bytes, so a value can sit in the
//!   lender's re-lend queue, travel through a channel and be decoded by a
//!   worker while sharing a single allocation.
//! * [`TaskCodec`] — how one application maps its native task and result
//!   types to and from [`Payload`]s. Each workload implements it with its
//!   natural binary layout (raw pixel buffers, big-endian integers, IEEE-754
//!   doubles) instead of strings.
//!
//! Two codecs are provided here because every layer needs them:
//! [`BytesCodec`] (the identity, for pipelines that are already binary) and
//! [`StringCodec`] (UTF-8 text, the compatibility path for string workloads).

use crate::error::StreamError;
use bytes::Bytes;

/// The wire form of every task and result payload: an immutable,
/// reference-counted byte buffer that is cheap to clone and slice.
pub type Payload = Bytes;

/// Maps an application's native task and result types to and from the binary
/// [`Payload`] wire form.
///
/// Encoding is infallible by design: a codec owns its types and can always
/// produce bytes for them (frame-size limits are enforced by the framing
/// layer, not the codec). Decoding is fallible because the bytes may come
/// from a hostile or corrupted peer.
///
/// # Examples
///
/// A codec for `u64` tasks and `(u64, u64)` results, in big-endian:
///
/// ```
/// use pando_pull_stream::codec::{Payload, TaskCodec};
/// use pando_pull_stream::StreamError;
///
/// struct PairCodec;
///
/// impl TaskCodec for PairCodec {
///     type Task = u64;
///     type Result = (u64, u64);
///
///     fn encode_task(&self, task: &u64) -> Payload {
///         Payload::copy_from_slice(&task.to_be_bytes())
///     }
///     fn decode_task(&self, bytes: &Payload) -> Result<u64, StreamError> {
///         pando_pull_stream::codec::read_u64(bytes)
///     }
///     fn encode_result(&self, result: &(u64, u64)) -> Payload {
///         let mut out = Vec::with_capacity(16);
///         out.extend_from_slice(&result.0.to_be_bytes());
///         out.extend_from_slice(&result.1.to_be_bytes());
///         Payload::from(out)
///     }
///     fn decode_result(&self, bytes: &Payload) -> Result<(u64, u64), StreamError> {
///         if bytes.len() != 16 {
///             return Err(StreamError::protocol("expected 16 bytes"));
///         }
///         Ok((pando_pull_stream::codec::read_u64(&bytes[..8])?,
///             pando_pull_stream::codec::read_u64(&bytes[8..])?))
///     }
/// }
///
/// let codec = PairCodec;
/// let wire = codec.encode_task(&7);
/// assert_eq!(codec.decode_task(&wire).unwrap(), 7);
/// ```
pub trait TaskCodec: Send + Sync + 'static {
    /// The application's native task (input value) type.
    type Task: Clone + Send + 'static;
    /// The application's native result (output value) type.
    type Result: Send + 'static;

    /// Encodes one task into its wire payload.
    fn encode_task(&self, task: &Self::Task) -> Payload;

    /// Decodes one task from its wire payload. The payload is a cheap
    /// reference-counted buffer, so codecs whose task type is (or contains)
    /// raw bytes can decode without copying, via [`Payload::clone`] or
    /// [`Payload::slice`].
    ///
    /// # Errors
    ///
    /// Returns a protocol error if the bytes are not a valid task encoding.
    fn decode_task(&self, bytes: &Payload) -> Result<Self::Task, StreamError>;

    /// Encodes one result into its wire payload.
    fn encode_result(&self, result: &Self::Result) -> Payload;

    /// Decodes one result from its wire payload; like
    /// [`TaskCodec::decode_task`], byte-shaped results decode zero-copy.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if the bytes are not a valid result encoding.
    fn decode_result(&self, bytes: &Payload) -> Result<Self::Result, StreamError>;
}

/// The identity codec: tasks and results are already [`Payload`]s.
///
/// Decoding copies nothing — the reference-counted buffer is shared as-is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytesCodec;

impl TaskCodec for BytesCodec {
    type Task = Bytes;
    type Result = Bytes;

    fn encode_task(&self, task: &Bytes) -> Payload {
        task.clone()
    }

    fn decode_task(&self, bytes: &Payload) -> Result<Bytes, StreamError> {
        Ok(bytes.clone())
    }

    fn encode_result(&self, result: &Bytes) -> Payload {
        result.clone()
    }

    fn decode_result(&self, bytes: &Payload) -> Result<Bytes, StreamError> {
        Ok(bytes.clone())
    }
}

/// UTF-8 text codec: the compatibility path for workloads whose values are
/// strings (the original `'/pando/1.0.0'` convention).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StringCodec;

impl StringCodec {
    fn decode(bytes: &[u8]) -> Result<String, StreamError> {
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| StreamError::protocol("payload is not valid UTF-8"))
    }
}

impl TaskCodec for StringCodec {
    type Task = String;
    type Result = String;

    fn encode_task(&self, task: &String) -> Payload {
        Bytes::copy_from_slice(task.as_bytes())
    }

    fn decode_task(&self, bytes: &Payload) -> Result<String, StreamError> {
        Self::decode(bytes)
    }

    fn encode_result(&self, result: &String) -> Payload {
        Bytes::copy_from_slice(result.as_bytes())
    }

    fn decode_result(&self, bytes: &Payload) -> Result<String, StreamError> {
        Self::decode(bytes)
    }
}

/// Reads a big-endian `u64` from exactly eight bytes.
///
/// # Errors
///
/// Returns a protocol error if `bytes` is not exactly eight bytes long.
pub fn read_u64(bytes: &[u8]) -> Result<u64, StreamError> {
    let array: [u8; 8] =
        bytes.try_into().map_err(|_| StreamError::protocol("expected 8 big-endian bytes"))?;
    Ok(u64::from_be_bytes(array))
}

/// Reads a big-endian IEEE-754 `f64` from exactly eight bytes.
///
/// # Errors
///
/// Returns a protocol error if `bytes` is not exactly eight bytes long.
pub fn read_f64(bytes: &[u8]) -> Result<f64, StreamError> {
    Ok(f64::from_bits(read_u64(bytes)?))
}

/// Reads a big-endian `u32` from exactly four bytes.
///
/// # Errors
///
/// Returns a protocol error if `bytes` is not exactly four bytes long.
pub fn read_u32(bytes: &[u8]) -> Result<u32, StreamError> {
    let array: [u8; 4] =
        bytes.try_into().map_err(|_| StreamError::protocol("expected 4 big-endian bytes"))?;
    Ok(u32::from_be_bytes(array))
}

/// Splits `bytes` into a fixed-size head and the remaining tail.
///
/// # Errors
///
/// Returns a protocol error if fewer than `n` bytes are available.
pub fn split_at(bytes: &[u8], n: usize) -> Result<(&[u8], &[u8]), StreamError> {
    if bytes.len() < n {
        return Err(StreamError::protocol(format!(
            "payload truncated: need {n} bytes, have {}",
            bytes.len()
        )));
    }
    Ok(bytes.split_at(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_codec_is_the_identity() {
        let codec = BytesCodec;
        let payload = Bytes::from(vec![0u8, 1, 2, 255]);
        assert_eq!(codec.encode_task(&payload), payload);
        assert_eq!(codec.decode_task(&payload).unwrap(), payload);
        assert_eq!(codec.encode_result(&payload), payload);
        assert_eq!(codec.decode_result(&payload).unwrap(), payload);
    }

    #[test]
    fn string_codec_round_trips_text() {
        let codec = StringCodec;
        let text = "héllo\nwörld".to_string();
        let wire = codec.encode_task(&text);
        assert_eq!(codec.decode_task(&wire).unwrap(), text);
        let wire = codec.encode_result(&text);
        assert_eq!(codec.decode_result(&wire).unwrap(), text);
    }

    #[test]
    fn string_codec_rejects_invalid_utf8() {
        let codec = StringCodec;
        assert!(codec.decode_task(&Bytes::from(vec![0xff, 0xfe])).is_err());
        assert!(codec.decode_result(&Bytes::from(vec![0xc3])).is_err());
    }

    #[test]
    fn integer_readers_check_lengths() {
        assert_eq!(read_u64(&7u64.to_be_bytes()).unwrap(), 7);
        assert!(read_u64(&[1, 2, 3]).is_err());
        assert_eq!(read_u32(&9u32.to_be_bytes()).unwrap(), 9);
        assert!(read_u32(&[0; 8]).is_err());
        let pi = std::f64::consts::PI;
        assert_eq!(read_f64(&pi.to_bits().to_be_bytes()).unwrap(), pi);
    }

    #[test]
    fn split_at_reports_truncation() {
        let (head, tail) = split_at(b"abcdef", 2).unwrap();
        assert_eq!((head, tail), (&b"ab"[..], &b"cdef"[..]));
        assert!(split_at(b"a", 2).is_err());
    }
}
