//! Bridging between pull-streams and standard [`Iterator`]s.

use crate::protocol::{Answer, End, Request};
use crate::source::Source;

/// Iterator over the values of a source. Created by
/// [`SourceExt::into_values`](crate::SourceExt::into_values).
///
/// The iterator stops on the first termination (done or error). The way the
/// stream terminated can be inspected afterwards with [`IntoValues::end`].
///
/// ```
/// use pando_pull_stream::source::{count, SourceExt};
///
/// let mut iter = count(3).into_values();
/// let collected: Vec<u64> = iter.by_ref().collect();
/// assert_eq!(collected, vec![1, 2, 3]);
/// assert!(iter.end().unwrap().is_done());
/// ```
#[derive(Debug)]
pub struct IntoValues<S, T> {
    source: S,
    end: Option<End>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<S, T> IntoValues<S, T>
where
    S: Source<T>,
{
    /// Wraps a source as an iterator.
    pub fn new(source: S) -> Self {
        Self { source, end: None, _marker: std::marker::PhantomData }
    }

    /// How the stream terminated, if it has terminated.
    pub fn end(&self) -> Option<&End> {
        self.end.as_ref()
    }

    /// Aborts the stream early and records the termination.
    pub fn abort(&mut self) {
        if self.end.is_none() {
            let answer = self.source.pull(Request::Abort);
            self.end = Some(answer.end().unwrap_or(End::Done));
        }
    }

    /// Recovers the underlying source.
    pub fn into_inner(self) -> S {
        self.source
    }
}

impl<S, T> Iterator for IntoValues<S, T>
where
    S: Source<T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.end.is_some() {
            return None;
        }
        match self.source.pull(Request::Ask) {
            Answer::Value(v) => Some(v),
            terminal => {
                self.end = terminal.end();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StreamError;
    use crate::source::{count, failing, SourceExt};

    #[test]
    fn iterates_all_values() {
        let collected: Vec<u64> = count(4).into_values().collect();
        assert_eq!(collected, vec![1, 2, 3, 4]);
    }

    #[test]
    fn records_done_end() {
        let mut iter = count(1).into_values();
        assert_eq!(iter.next(), Some(1));
        assert!(iter.end().is_none());
        assert_eq!(iter.next(), None);
        assert!(iter.end().unwrap().is_done());
        // Fused after termination.
        assert_eq!(iter.next(), None);
    }

    #[test]
    fn records_error_end() {
        let mut iter = failing::<u8>(StreamError::new("broken")).into_values();
        assert_eq!(iter.next(), None);
        match iter.end().unwrap() {
            End::Failed(e) => assert_eq!(e.message(), "broken"),
            End::Done => panic!("expected failure"),
        }
    }

    #[test]
    fn abort_stops_iteration() {
        let mut iter = count(100).into_values();
        assert_eq!(iter.next(), Some(1));
        iter.abort();
        assert_eq!(iter.next(), None);
        assert!(iter.end().unwrap().is_done());
    }

    #[test]
    fn into_inner_returns_source() {
        let iter = count(3).into_values();
        let mut source = iter.into_inner();
        assert_eq!(source.pull(Request::Ask), Answer::Value(1));
    }
}
