//! The Limiter (`pull-limit`): bounds the number of values in flight through
//! a duplex channel.
//!
//! The channel implementations used by Pando eagerly read every available
//! value on the sending side. Left unchecked, a fast input source would be
//! entirely buffered inside the channel of the first worker that connects,
//! starving the others and defeating the adaptive property of the programming
//! model. The Limiter initially lets a bounded number of inputs through and
//! afterwards releases one more input for every result that comes back. With
//! a large enough limit (the *batch size*), data transfers overlap with the
//! computation and the network latency is hidden (paper §2.4.3 and §5.5).

use crate::duplex::Duplex;
use crate::protocol::{Answer, Request};
use crate::sink::{BoxSink, Sink};
use crate::source::{BoxSource, Source};
use crate::sync::Semaphore;
use crate::StreamError;
use parking_lot::Mutex;
use std::sync::Arc;

/// Bounds the number of values in flight through a duplex.
///
/// A `Limiter` is created with a limit `n` (the batch size). Wrapping a duplex
/// with [`Limiter::wrap`] yields a new duplex whose sink side blocks once `n`
/// values have been sent without a matching value coming back out of the
/// source side.
///
/// # Examples
///
/// ```
/// use pando_pull_stream::limit::Limiter;
/// let limiter = Limiter::new(4);
/// assert_eq!(limiter.limit(), 4);
/// assert_eq!(limiter.in_flight(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Limiter {
    limit: usize,
    semaphore: Semaphore,
    stats: Arc<Mutex<LimiterStats>>,
}

/// Counters observed by a [`Limiter`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LimiterStats {
    /// Total number of values allowed through the sink side.
    pub sent: u64,
    /// Total number of values that came back out of the source side.
    pub received: u64,
    /// Maximum number of values that were simultaneously in flight.
    pub max_in_flight: usize,
}

impl Limiter {
    /// Creates a limiter allowing at most `limit` values in flight.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero: a zero limit would never let any value
    /// through.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "limit must be at least 1");
        Self {
            limit,
            semaphore: Semaphore::new(limit),
            stats: Arc::new(Mutex::new(LimiterStats::default())),
        }
    }

    /// The configured limit (batch size).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The number of values currently in flight (sent but not yet returned).
    pub fn in_flight(&self) -> usize {
        let stats = self.stats.lock();
        (stats.sent - stats.received) as usize
    }

    /// A snapshot of the counters observed so far.
    pub fn stats(&self) -> LimiterStats {
        self.stats.lock().clone()
    }

    /// Wraps `duplex` so that at most [`Limiter::limit`] values are in flight
    /// at any time: the returned duplex's sink blocks once the limit is
    /// reached and unblocks when values come back out of the source.
    pub fn wrap<In, Out>(&self, duplex: Duplex<In, Out>) -> Duplex<In, Out>
    where
        In: Send + 'static,
        Out: Send + 'static,
    {
        let Duplex { source, sink } = duplex;
        Duplex {
            source: Box::new(ReleasingSource {
                inner: source,
                semaphore: self.semaphore.clone(),
                stats: self.stats.clone(),
            }),
            sink: Box::new(GatedSink {
                inner: sink,
                semaphore: self.semaphore.clone(),
                stats: self.stats.clone(),
            }),
        }
    }
}

/// Convenience function mirroring the JavaScript `limit(duplex, n)` call.
///
/// # Panics
///
/// Panics if `limit` is zero.
pub fn limit<In, Out>(duplex: Duplex<In, Out>, limit: usize) -> Duplex<In, Out>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    Limiter::new(limit).wrap(duplex)
}

struct ReleasingSource<Out> {
    inner: BoxSource<Out>,
    semaphore: Semaphore,
    stats: Arc<Mutex<LimiterStats>>,
}

impl<Out: Send> Source<Out> for ReleasingSource<Out> {
    fn pull(&mut self, request: Request) -> Answer<Out> {
        let terminating = request.is_termination();
        let answer = self.inner.pull(request);
        match &answer {
            Answer::Value(_) => {
                self.stats.lock().received += 1;
                self.semaphore.release();
            }
            _ => self.semaphore.close(),
        }
        if terminating {
            self.semaphore.close();
        }
        answer
    }
}

struct GatedSink<In> {
    inner: BoxSink<In>,
    semaphore: Semaphore,
    stats: Arc<Mutex<LimiterStats>>,
}

impl<In: Send + 'static> Sink<In> for GatedSink<In> {
    fn drain(&mut self, source: BoxSource<In>) -> Result<(), StreamError> {
        let gated = GatedSource {
            inner: source,
            semaphore: self.semaphore.clone(),
            stats: self.stats.clone(),
        };
        self.inner.drain(Box::new(gated))
    }
}

struct GatedSource<In> {
    inner: BoxSource<In>,
    semaphore: Semaphore,
    stats: Arc<Mutex<LimiterStats>>,
}

impl<In: Send> Source<In> for GatedSource<In> {
    fn pull(&mut self, request: Request) -> Answer<In> {
        if request.is_termination() {
            return self.inner.pull(request);
        }
        if !self.semaphore.acquire() {
            // The receiving side terminated: release the upstream and stop.
            let _ = self.inner.pull(Request::Abort);
            return Answer::Done;
        }
        match self.inner.pull(Request::Ask) {
            Answer::Value(v) => {
                let mut stats = self.stats.lock();
                stats.sent += 1;
                let in_flight = (stats.sent - stats.received) as usize;
                stats.max_in_flight = stats.max_in_flight.max(in_flight);
                Answer::Value(v)
            }
            terminal => {
                // Give the unused permit back so accounting stays balanced.
                self.semaphore.release();
                terminal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::fn_sink;
    use crate::source::{count, SourceExt};
    use crossbeam::channel;
    use std::thread;
    use std::time::Duration;

    /// A duplex that echoes whatever is sent to it, with an explicit queue so
    /// tests can control when values come back.
    fn echo_duplex() -> (Duplex<u64, u64>, channel::Sender<u64>, channel::Receiver<u64>) {
        let (to_echo_tx, to_echo_rx) = channel::unbounded::<u64>();
        let (from_echo_tx, from_echo_rx) = channel::unbounded::<u64>();
        let source_rx = from_echo_rx.clone();
        let source = move |req: Request| -> Answer<u64> {
            if req.is_termination() {
                return Answer::Done;
            }
            match source_rx.recv() {
                Ok(v) => Answer::Value(v),
                Err(_) => Answer::Done,
            }
        };
        let sink = fn_sink(move |v: u64| {
            to_echo_tx.send(v).map_err(|_| StreamError::transport("echo closed"))
        });
        (Duplex::new(source, sink), from_echo_tx, to_echo_rx)
    }

    #[test]
    #[should_panic(expected = "limit must be at least 1")]
    fn zero_limit_panics() {
        let _ = Limiter::new(0);
    }

    #[test]
    fn limiter_reports_configuration() {
        let limiter = Limiter::new(3);
        assert_eq!(limiter.limit(), 3);
        assert_eq!(limiter.in_flight(), 0);
        assert_eq!(limiter.stats(), LimiterStats::default());
    }

    #[test]
    fn sink_blocks_at_limit_until_results_return() {
        let (duplex, results_tx, sent_rx) = echo_duplex();
        let limiter = Limiter::new(2);
        let Duplex { mut source, mut sink } = limiter.wrap(duplex);

        // Pump an effectively unbounded input through the limited sink in a
        // background thread; it must stall after 2 values.
        let pump = thread::spawn(move || sink.drain(count(1000).boxed()));
        thread::sleep(Duration::from_millis(50));
        let sent_so_far: Vec<u64> = sent_rx.try_iter().collect();
        assert_eq!(sent_so_far, vec![1, 2], "limit of 2 must stall the sender");
        assert_eq!(limiter.in_flight(), 2);

        // Returning one result through the source side releases exactly one
        // more input.
        results_tx.send(1).unwrap();
        assert_eq!(source.pull(Request::Ask), Answer::Value(1));
        thread::sleep(Duration::from_millis(50));
        let released: Vec<u64> = sent_rx.try_iter().collect();
        assert_eq!(released, vec![3], "one result returned releases one more input");

        // Terminating the receiving side closes the semaphore and lets the
        // pump finish instead of blocking forever.
        assert_eq!(source.pull(Request::Abort), Answer::Done);
        pump.join().unwrap().unwrap();
    }

    #[test]
    fn end_to_end_limited_echo() {
        // Worker thread: echoes tasks back as results, simulating a device.
        let (duplex, results_tx, sent_rx) = echo_duplex();
        let worker = thread::spawn(move || {
            for task in sent_rx.iter() {
                results_tx.send(task * 10).unwrap();
            }
        });

        let limiter = Limiter::new(3);
        let Duplex { source, mut sink } = limiter.wrap(duplex);

        let collector = thread::spawn(move || crate::sink::take(source, 20).unwrap());
        let pump = thread::spawn(move || sink.drain(count(20).boxed()));

        let results = collector.join().unwrap();
        pump.join().unwrap().unwrap();
        worker.join().unwrap();
        assert_eq!(results, (1..=20).map(|v| v * 10).collect::<Vec<_>>());
        let stats = limiter.stats();
        assert_eq!(stats.sent, 20);
        assert_eq!(stats.received, 20);
        assert!(stats.max_in_flight <= 3, "never more than the limit in flight");
    }

    #[test]
    fn source_termination_unblocks_sender() {
        // The worker side never returns anything and closes immediately.
        let source = |req: Request| -> Answer<u64> {
            let _ = req;
            Answer::Done
        };
        let (discard_tx, discard_rx) = channel::unbounded::<u64>();
        let sink =
            fn_sink(move |v: u64| discard_tx.send(v).map_err(|_| StreamError::transport("closed")));
        let duplex = Duplex::new(source, sink);
        let limiter = Limiter::new(1);
        let Duplex { mut source, mut sink } = limiter.wrap(duplex);

        // Terminate the receiving side first: this closes the semaphore.
        assert_eq!(source.pull(Request::Ask), Answer::Done);
        // The sending side now stops instead of blocking forever.
        sink.drain(count(100).boxed()).unwrap();
        // At most one value could have slipped through before the closure.
        assert!(discard_rx.try_iter().count() <= 1);
    }

    #[test]
    fn limit_function_matches_wrapper() {
        let (duplex, results_tx, sent_rx) = echo_duplex();
        let worker = thread::spawn(move || {
            for task in sent_rx.iter() {
                results_tx.send(task).unwrap();
            }
        });
        let Duplex { source, mut sink } = limit(duplex, 2);
        let collector = thread::spawn(move || crate::sink::take(source, 5).unwrap());
        let pump = thread::spawn(move || sink.drain(count(5).boxed()));
        assert_eq!(collector.join().unwrap(), vec![1, 2, 3, 4, 5]);
        pump.join().unwrap().unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn unused_permit_returned_when_input_ends() {
        let (duplex, _results_tx, _sent_rx) = echo_duplex();
        let limiter = Limiter::new(5);
        let Duplex { source: _source, mut sink } = limiter.wrap(duplex);
        sink.drain(count(2).boxed()).unwrap();
        // Two permits consumed by the two values; the final pull that saw
        // `Done` must give its permit back.
        assert_eq!(limiter.stats().sent, 2);
        assert_eq!(limiter.semaphore.available(), 3);
    }
}
