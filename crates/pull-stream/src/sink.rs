//! Sinks: the consuming end of a pull-stream.
//!
//! A sink drives a source to completion. The free functions in this module
//! ([`drain`], [`collect`], [`for_each`], [`reduce`]) are the most common
//! sinks; the [`Sink`] trait is used where a sink must be handed around as a
//! value, for example the sending half of a network channel.

use crate::error::StreamError;
use crate::protocol::{Answer, Request};
use crate::source::{BoxSource, Source};

/// The consuming end of a pull-stream.
///
/// A sink takes ownership of a source and pulls it until the stream
/// terminates. Network channel endpoints implement `Sink` so that a pipeline
/// can be written as `pipe(source, channel.sink)`.
pub trait Sink<T>: Send {
    /// Drains `source` to completion.
    ///
    /// # Errors
    ///
    /// Returns the stream error if the source terminates with one or if the
    /// sink itself fails (for example the underlying channel closed).
    fn drain(&mut self, source: BoxSource<T>) -> Result<(), StreamError>;
}

/// A boxed, type-erased [`Sink`].
pub type BoxSink<T> = Box<dyn Sink<T> + Send>;

impl<T> Sink<T> for BoxSink<T> {
    fn drain(&mut self, source: BoxSource<T>) -> Result<(), StreamError> {
        self.as_mut().drain(source)
    }
}

/// A sink built from a closure called once per value.
///
/// The closure returns `Ok(())` to keep pulling or an error to fail the
/// stream (the error is propagated upstream with [`Request::Fail`]).
///
/// ```
/// use pando_pull_stream::sink::{fn_sink, Sink};
/// use pando_pull_stream::source::{count, SourceExt};
///
/// let mut sum = 0u64;
/// let mut sink = fn_sink(|v: u64| { sum += v; Ok(()) });
/// sink.drain(count(4).boxed()).unwrap();
/// assert_eq!(sum, 10);
/// ```
pub fn fn_sink<T, F>(f: F) -> FnSink<F>
where
    T: Send,
    F: FnMut(T) -> Result<(), StreamError> + Send,
{
    FnSink { f }
}

/// Sink wrapping a closure. Created by [`fn_sink`].
#[derive(Debug)]
pub struct FnSink<F> {
    f: F,
}

impl<T, F> Sink<T> for FnSink<F>
where
    T: Send,
    F: FnMut(T) -> Result<(), StreamError> + Send,
{
    fn drain(&mut self, mut source: BoxSource<T>) -> Result<(), StreamError> {
        loop {
            match source.pull(Request::Ask) {
                Answer::Value(v) => {
                    if let Err(err) = (self.f)(v) {
                        let _ = source.pull(Request::Fail(err.clone()));
                        return Err(err);
                    }
                }
                Answer::Done => return Ok(()),
                Answer::Err(err) => return Err(err),
            }
        }
    }
}

/// Pulls `source` to completion, discarding every value, and returns how many
/// values were consumed (the pull-stream `drain` module).
///
/// # Errors
///
/// Returns the stream error if the source terminates with one.
pub fn drain<T, S: Source<T>>(mut source: S) -> Result<usize, StreamError> {
    let mut n = 0;
    loop {
        match source.pull(Request::Ask) {
            Answer::Value(_) => n += 1,
            Answer::Done => return Ok(n),
            Answer::Err(err) => return Err(err),
        }
    }
}

/// Pulls `source` to completion, collecting every value into a `Vec` (the
/// pull-stream `collect` module).
///
/// # Errors
///
/// Returns the stream error if the source terminates with one.
pub fn collect<T, S: Source<T>>(mut source: S) -> Result<Vec<T>, StreamError> {
    let mut out = Vec::new();
    loop {
        match source.pull(Request::Ask) {
            Answer::Value(v) => out.push(v),
            Answer::Done => return Ok(out),
            Answer::Err(err) => return Err(err),
        }
    }
}

/// Calls `f` for every value of `source` until it terminates.
///
/// # Errors
///
/// Returns the stream error if the source terminates with one.
pub fn for_each<T, S, F>(mut source: S, mut f: F) -> Result<(), StreamError>
where
    S: Source<T>,
    F: FnMut(T),
{
    loop {
        match source.pull(Request::Ask) {
            Answer::Value(v) => f(v),
            Answer::Done => return Ok(()),
            Answer::Err(err) => return Err(err),
        }
    }
}

/// Folds every value of `source` into an accumulator (the pull-stream
/// `reduce` module).
///
/// # Errors
///
/// Returns the stream error if the source terminates with one.
///
/// ```
/// use pando_pull_stream::sink::reduce;
/// use pando_pull_stream::source::count;
/// let max = reduce(count(10), 0u64, |acc, v| acc.max(v)).unwrap();
/// assert_eq!(max, 10);
/// ```
pub fn reduce<T, A, S, F>(mut source: S, init: A, mut f: F) -> Result<A, StreamError>
where
    S: Source<T>,
    F: FnMut(A, T) -> A,
{
    let mut acc = init;
    loop {
        match source.pull(Request::Ask) {
            Answer::Value(v) => acc = f(acc, v),
            Answer::Done => return Ok(acc),
            Answer::Err(err) => return Err(err),
        }
    }
}

/// Pulls at most `n` values then aborts the stream, returning the values
/// pulled. Useful for consuming a bounded prefix of an infinite stream.
///
/// # Errors
///
/// Returns the stream error if the source terminates with one before `n`
/// values were pulled.
pub fn take<T, S: Source<T>>(mut source: S, n: usize) -> Result<Vec<T>, StreamError> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match source.pull(Request::Ask) {
            Answer::Value(v) => out.push(v),
            Answer::Done => return Ok(out),
            Answer::Err(err) => return Err(err),
        }
    }
    let _ = source.pull(Request::Abort);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{count, failing, infinite, SourceExt};

    #[test]
    fn drain_counts_values() {
        assert_eq!(drain(count(7)).unwrap(), 7);
        assert_eq!(drain(count(0)).unwrap(), 0);
    }

    #[test]
    fn collect_gathers_values() {
        assert_eq!(collect(count(3)).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn collect_propagates_error() {
        assert!(collect(failing::<u8>(StreamError::new("e"))).is_err());
    }

    #[test]
    fn reduce_folds() {
        let sum = reduce(count(100), 0u64, |acc, v| acc + v).unwrap();
        assert_eq!(sum, 5050);
    }

    #[test]
    fn take_bounds_infinite_stream() {
        let out = take(infinite(|i| i), 3).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn take_stops_at_done() {
        let out = take(count(2), 10).unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn fn_sink_failure_propagates_upstream() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let upstream_failed = Arc::new(AtomicBool::new(false));
        let flag = upstream_failed.clone();
        let mut i = 0u64;
        let source = move |req: Request| -> Answer<u64> {
            if let Request::Fail(_) = req {
                flag.store(true, Ordering::SeqCst);
                return Answer::Done;
            }
            if req.is_termination() {
                return Answer::Done;
            }
            i += 1;
            Answer::Value(i)
        };
        let mut sink =
            fn_sink(|v: u64| if v >= 3 { Err(StreamError::new("sink full")) } else { Ok(()) });
        let err = sink.drain(source.boxed()).unwrap_err();
        assert_eq!(err.message(), "sink full");
        assert!(upstream_failed.load(Ordering::SeqCst));
    }

    #[test]
    fn fn_sink_drains_everything_on_success() {
        let mut collected = Vec::new();
        let mut sink = fn_sink(|v: u64| {
            collected.push(v);
            Ok(())
        });
        sink.drain(count(5).boxed()).unwrap();
        assert_eq!(collected, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn boxed_sink_is_still_a_sink() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        let counter = seen.clone();
        let mut sink: BoxSink<u64> = Box::new(fn_sink(move |_v: u64| {
            counter.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }));
        sink.drain(count(3).boxed()).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }
}
