//! The pull-stream callback protocol: requests flowing upstream and answers
//! flowing downstream.
//!
//! The protocol is the Rust analogue of the JavaScript pull-stream convention
//! used by Pando (paper Figure 6): the downstream side sends a request that
//! either *asks* for the next value, *aborts* the stream normally, or *fails*
//! it with an error; the upstream side answers with a *value*, with *done*, or
//! with an *error*.

use crate::error::StreamError;

/// A request sent upstream by the consumer of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Ask for the next value.
    Ask,
    /// Terminate the stream early, without error. The producer must release
    /// its resources and answer with [`Answer::Done`] (or an error).
    Abort,
    /// Terminate the stream early because the consumer failed. The producer
    /// must release its resources; it normally answers with [`Answer::Err`]
    /// echoing the error.
    Fail(StreamError),
}

impl Request {
    /// Returns `true` if this request terminates the stream (abort or fail).
    ///
    /// ```
    /// use pando_pull_stream::{Request, StreamError};
    /// assert!(!Request::Ask.is_termination());
    /// assert!(Request::Abort.is_termination());
    /// assert!(Request::Fail(StreamError::new("x")).is_termination());
    /// ```
    pub fn is_termination(&self) -> bool {
        !matches!(self, Request::Ask)
    }

    /// The error carried by a [`Request::Fail`], if any.
    pub fn error(&self) -> Option<&StreamError> {
        match self {
            Request::Fail(err) => Some(err),
            _ => None,
        }
    }
}

/// An answer sent downstream by the producer of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer<T> {
    /// The next value of the stream.
    Value(T),
    /// The stream finished normally: no more values will ever be produced.
    Done,
    /// The stream finished with an error: no more values will ever be produced.
    Err(StreamError),
}

impl<T> Answer<T> {
    /// Returns `true` if the answer terminates the stream (done or error).
    pub fn is_termination(&self) -> bool {
        !matches!(self, Answer::Value(_))
    }

    /// Returns `true` if the answer is [`Answer::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, Answer::Done)
    }

    /// Returns `true` if the answer carries a value.
    pub fn is_value(&self) -> bool {
        matches!(self, Answer::Value(_))
    }

    /// Returns the carried value, if any, consuming the answer.
    pub fn into_value(self) -> Option<T> {
        match self {
            Answer::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the carried error, if any.
    pub fn error(&self) -> Option<&StreamError> {
        match self {
            Answer::Err(err) => Some(err),
            _ => None,
        }
    }

    /// Maps the carried value with `f`, leaving `Done` and `Err` untouched.
    ///
    /// ```
    /// use pando_pull_stream::Answer;
    /// let doubled = Answer::Value(21).map(|v: i32| v * 2);
    /// assert_eq!(doubled, Answer::Value(42));
    /// let done: Answer<i32> = Answer::Done;
    /// assert_eq!(done.map(|v| v * 2), Answer::Done);
    /// ```
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Answer<U> {
        match self {
            Answer::Value(v) => Answer::Value(f(v)),
            Answer::Done => Answer::Done,
            Answer::Err(e) => Answer::Err(e),
        }
    }

    /// Converts the terminal answers into an [`End`] marker, if terminal.
    pub fn end(&self) -> Option<End> {
        match self {
            Answer::Value(_) => None,
            Answer::Done => Some(End::Done),
            Answer::Err(e) => Some(End::Failed(e.clone())),
        }
    }
}

impl<T> From<Option<T>> for Answer<T> {
    fn from(value: Option<T>) -> Self {
        match value {
            Some(v) => Answer::Value(v),
            None => Answer::Done,
        }
    }
}

impl<T> From<Result<T, StreamError>> for Answer<T> {
    fn from(value: Result<T, StreamError>) -> Self {
        match value {
            Ok(v) => Answer::Value(v),
            Err(e) => Answer::Err(e),
        }
    }
}

/// The way a stream terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum End {
    /// The stream completed normally.
    Done,
    /// The stream terminated with an error.
    Failed(StreamError),
}

impl End {
    /// Converts the termination marker into a `Result`.
    ///
    /// ```
    /// use pando_pull_stream::{End, StreamError};
    /// assert!(End::Done.into_result().is_ok());
    /// assert!(End::Failed(StreamError::new("x")).into_result().is_err());
    /// ```
    pub fn into_result(self) -> Result<(), StreamError> {
        match self {
            End::Done => Ok(()),
            End::Failed(e) => Err(e),
        }
    }

    /// Returns `true` if the stream completed without error.
    pub fn is_done(&self) -> bool {
        matches!(self, End::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_termination() {
        assert!(!Request::Ask.is_termination());
        assert!(Request::Abort.is_termination());
        let fail = Request::Fail(StreamError::new("x"));
        assert!(fail.is_termination());
        assert_eq!(fail.error().unwrap().message(), "x");
        assert!(Request::Ask.error().is_none());
    }

    #[test]
    fn answer_predicates() {
        let v: Answer<i32> = Answer::Value(3);
        assert!(v.is_value());
        assert!(!v.is_termination());
        assert_eq!(v.clone().into_value(), Some(3));
        assert!(v.end().is_none());

        let d: Answer<i32> = Answer::Done;
        assert!(d.is_done());
        assert!(d.is_termination());
        assert_eq!(d.end(), Some(End::Done));

        let e: Answer<i32> = Answer::Err(StreamError::new("bad"));
        assert!(e.is_termination());
        assert_eq!(e.error().unwrap().message(), "bad");
        assert!(matches!(e.end(), Some(End::Failed(_))));
    }

    #[test]
    fn answer_map_preserves_termination() {
        let e: Answer<i32> = Answer::Err(StreamError::new("bad"));
        assert_eq!(e.map(|v| v + 1), Answer::Err(StreamError::new("bad")));
    }

    #[test]
    fn conversions() {
        assert_eq!(Answer::from(Some(1)), Answer::Value(1));
        assert_eq!(Answer::<i32>::from(None), Answer::Done);
        assert_eq!(Answer::from(Ok::<_, StreamError>(1)), Answer::Value(1));
        assert_eq!(
            Answer::<i32>::from(Err(StreamError::new("e"))),
            Answer::Err(StreamError::new("e"))
        );
    }

    #[test]
    fn end_into_result() {
        assert!(End::Done.into_result().is_ok());
        assert!(End::Done.is_done());
        let failed = End::Failed(StreamError::new("x"));
        assert!(!failed.is_done());
        assert_eq!(failed.into_result().unwrap_err().message(), "x");
    }
}
