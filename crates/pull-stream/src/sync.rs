//! Small synchronization primitives shared by the concurrent stream modules.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// A counting semaphore that can be closed.
///
/// The [`Limiter`](crate::limit::Limiter) uses a semaphore to bound the number
/// of values in flight through a duplex channel. Closing the semaphore wakes
/// every waiter and makes all subsequent acquisitions fail, which is how a
/// stream termination (done, abort or failure) unblocks the sending side.
///
/// # Examples
///
/// ```
/// use pando_pull_stream::sync::Semaphore;
///
/// let sem = Semaphore::new(2);
/// assert!(sem.acquire());
/// assert!(sem.acquire());
/// assert_eq!(sem.available(), 0);
/// sem.release();
/// assert_eq!(sem.available(), 1);
/// sem.close();
/// assert!(!sem.acquire());
/// ```
#[derive(Debug, Clone)]
pub struct Semaphore {
    inner: Arc<SemaphoreInner>,
}

#[derive(Debug)]
struct SemaphoreInner {
    state: Mutex<SemaphoreState>,
    available: Condvar,
}

#[derive(Debug)]
struct SemaphoreState {
    permits: usize,
    closed: bool,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Self {
            inner: Arc::new(SemaphoreInner {
                state: Mutex::new(SemaphoreState { permits, closed: false }),
                available: Condvar::new(),
            }),
        }
    }

    /// Blocks until a permit is available and takes it. Returns `false` if the
    /// semaphore was closed before a permit could be acquired.
    pub fn acquire(&self) -> bool {
        let mut state = self.inner.state.lock();
        loop {
            if state.closed {
                return false;
            }
            if state.permits > 0 {
                state.permits -= 1;
                return true;
            }
            self.inner.available.wait(&mut state);
        }
    }

    /// Attempts to take a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.inner.state.lock();
        if state.closed || state.permits == 0 {
            false
        } else {
            state.permits -= 1;
            true
        }
    }

    /// Blocks until a permit is available, a timeout elapses or the semaphore
    /// closes. Returns `true` only if a permit was acquired.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if state.closed {
                return false;
            }
            if state.permits > 0 {
                state.permits -= 1;
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            if self.inner.available.wait_until(&mut state, deadline).timed_out() {
                if !state.closed && state.permits > 0 {
                    state.permits -= 1;
                    return true;
                }
                return false;
            }
        }
    }

    /// Returns one permit, waking a waiter if any.
    pub fn release(&self) {
        let mut state = self.inner.state.lock();
        state.permits += 1;
        drop(state);
        self.inner.available.notify_one();
    }

    /// Closes the semaphore: every current and future acquisition fails.
    pub fn close(&self) {
        let mut state = self.inner.state.lock();
        state.closed = true;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Returns `true` once [`Semaphore::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// The number of permits currently available.
    pub fn available(&self) -> usize {
        self.inner.state.lock().permits
    }
}

/// A single-use signal that can be waited on from several threads.
///
/// Used to propagate "the stream terminated" notifications between the two
/// pump threads of a duplex connection.
#[derive(Debug, Clone)]
pub struct Signal {
    inner: Arc<SignalInner>,
}

#[derive(Debug)]
struct SignalInner {
    fired: Mutex<bool>,
    cond: Condvar,
}

impl Signal {
    /// Creates a signal in the unfired state.
    pub fn new() -> Self {
        Self { inner: Arc::new(SignalInner { fired: Mutex::new(false), cond: Condvar::new() }) }
    }

    /// Fires the signal, waking all waiters.
    pub fn fire(&self) {
        let mut fired = self.inner.fired.lock();
        *fired = true;
        drop(fired);
        self.inner.cond.notify_all();
    }

    /// Returns `true` if the signal has fired.
    pub fn fired(&self) -> bool {
        *self.inner.fired.lock()
    }

    /// Blocks until the signal fires.
    pub fn wait(&self) {
        let mut fired = self.inner.fired.lock();
        while !*fired {
            self.inner.cond.wait(&mut fired);
        }
    }

    /// Blocks until the signal fires or the timeout elapses. Returns `true`
    /// only if the signal fired.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut fired = self.inner.fired.lock();
        while !*fired {
            if self.inner.cond.wait_until(&mut fired, deadline).timed_out() {
                return *fired;
            }
        }
        true
    }
}

impl Default for Signal {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn semaphore_basic_acquire_release() {
        let sem = Semaphore::new(1);
        assert!(sem.acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    fn semaphore_close_unblocks_waiters() {
        let sem = Semaphore::new(0);
        let waiter = {
            let sem = sem.clone();
            thread::spawn(move || sem.acquire())
        };
        thread::sleep(Duration::from_millis(20));
        sem.close();
        assert!(!waiter.join().unwrap());
        assert!(sem.is_closed());
    }

    #[test]
    fn semaphore_release_unblocks_waiter() {
        let sem = Semaphore::new(0);
        let waiter = {
            let sem = sem.clone();
            thread::spawn(move || sem.acquire())
        };
        thread::sleep(Duration::from_millis(20));
        sem.release();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn semaphore_acquire_timeout_expires() {
        let sem = Semaphore::new(0);
        assert!(!sem.acquire_timeout(Duration::from_millis(20)));
        sem.release();
        assert!(sem.acquire_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn semaphore_counts_permits() {
        let sem = Semaphore::new(3);
        assert_eq!(sem.available(), 3);
        sem.acquire();
        sem.acquire();
        assert_eq!(sem.available(), 1);
        sem.release();
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn signal_wakes_waiters() {
        let signal = Signal::new();
        assert!(!signal.fired());
        let waiter = {
            let signal = signal.clone();
            thread::spawn(move || {
                signal.wait();
                true
            })
        };
        thread::sleep(Duration::from_millis(20));
        signal.fire();
        assert!(waiter.join().unwrap());
        assert!(signal.fired());
    }

    #[test]
    fn signal_wait_timeout() {
        let signal = Signal::new();
        assert!(!signal.wait_timeout(Duration::from_millis(10)));
        signal.fire();
        assert!(signal.wait_timeout(Duration::from_millis(10)));
    }
}
