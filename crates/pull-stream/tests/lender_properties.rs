//! Property-based tests for the StreamLender, the Rust analogue of the
//! paper's "StreamLender testing" application (§4.1): random executions are
//! generated and the invariants of the programming model are checked on each.

use pando_pull_stream::lender::{Lend, StreamLender, SubStream};
use pando_pull_stream::source::{count, SourceExt};
use proptest::prelude::*;

/// One step of a randomly generated schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Worker `i` borrows a value (non-blocking).
    Borrow(usize),
    /// Worker `i` returns the result for the oldest value it holds.
    PushOldest(usize),
    /// Worker `i` crashes (drops without returning its values).
    Crash(usize),
    /// A new worker joins.
    Join,
}

fn op_strategy(max_workers: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..max_workers).prop_map(Op::Borrow),
        3 => (0..max_workers).prop_map(Op::PushOldest),
        1 => (0..max_workers).prop_map(Op::Crash),
        1 => Just(Op::Join),
    ]
}

/// A worker as driven by the random schedule: a sub-stream plus the values it
/// currently holds.
struct ScriptedWorker {
    sub: Option<SubStream<u64, u64>>,
    held: Vec<Lend<u64>>,
}

fn apply_schedule(lender: &StreamLender<u64, u64>, schedule: &[Op], initial_workers: usize) {
    let mut workers: Vec<ScriptedWorker> = (0..initial_workers)
        .map(|_| ScriptedWorker { sub: Some(lender.lend()), held: Vec::new() })
        .collect();
    for op in schedule {
        match op {
            Op::Borrow(i) => {
                let idx = i % workers.len();
                let worker = &mut workers[idx];
                if let Some(sub) = worker.sub.as_mut() {
                    if let Some(lend) = sub.try_next_task() {
                        worker.held.push(lend);
                    }
                }
            }
            Op::PushOldest(i) => {
                let idx = i % workers.len();
                let worker = &mut workers[idx];
                if let Some(sub) = worker.sub.as_mut() {
                    if !worker.held.is_empty() {
                        let lend = worker.held.remove(0);
                        sub.push_result(lend.seq, lend.value * lend.value)
                            .expect("held value is always borrowable");
                    }
                }
            }
            Op::Crash(i) => {
                let idx = i % workers.len();
                let worker = &mut workers[idx];
                worker.sub = None; // drop = crash-stop
                worker.held.clear();
            }
            Op::Join => {
                workers.push(ScriptedWorker { sub: Some(lender.lend()), held: Vec::new() });
            }
        }
    }
    // Scripted workers that survive finish politely: they return what they
    // still hold, then leave.
    for mut worker in workers {
        if let Some(mut sub) = worker.sub.take() {
            for lend in worker.held.drain(..) {
                sub.push_result(lend.seq, lend.value * lend.value).unwrap();
            }
            sub.complete();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any schedule of borrows, returns, crashes and joins, followed by
    /// one reliable device, the output is exactly `f` mapped over the input,
    /// in input order (streaming-map, ordered, fault-tolerant properties).
    #[test]
    fn output_is_ordered_map_of_input(
        n in 0u64..120,
        initial_workers in 1usize..4,
        schedule in proptest::collection::vec(op_strategy(4), 0..200),
    ) {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(n));
        apply_schedule(&lender, &schedule, initial_workers);

        // A final reliable worker drains whatever is left.
        let finisher = {
            let mut sub = lender.lend();
            std::thread::spawn(move || {
                while let Some(task) = sub.next_task() {
                    sub.push_result(task.seq, task.value * task.value).unwrap();
                }
                sub.complete();
            })
        };
        let output = lender.output().collect_values().unwrap();
        finisher.join().unwrap();

        let expected: Vec<u64> = (1..=n).map(|x| x * x).collect();
        prop_assert_eq!(output, expected);
    }

    /// The conservative property: in a failure-free run no value is ever lent
    /// twice, so the number of lends equals the number of values read.
    #[test]
    fn failure_free_runs_never_relend(
        n in 0u64..200,
        workers in 1usize..5,
    ) {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(n));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let mut sub = lender.lend();
                std::thread::spawn(move || {
                    while let Some(task) = sub.next_task() {
                        sub.push_result(task.seq, task.value + 1).unwrap();
                    }
                    sub.complete();
                })
            })
            .collect();
        let output = lender.output().collect_values().unwrap();
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = lender.stats();
        prop_assert_eq!(output.len() as u64, n);
        prop_assert_eq!(stats.relends, 0);
        prop_assert_eq!(stats.lends, stats.values_read);
        prop_assert_eq!(stats.values_read, n);
    }

    /// Laziness: the lender never reads more input values than the schedule
    /// borrowed, regardless of how large the input is.
    #[test]
    fn never_reads_more_than_borrowed(
        borrows in 0usize..50,
    ) {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(1_000_000));
        let mut sub = lender.lend();
        for _ in 0..borrows {
            let lend = sub.try_next_task().expect("large input always has values");
            sub.push_result(lend.seq, lend.value).unwrap();
        }
        prop_assert_eq!(lender.stats().values_read as usize, borrows);
        lender.shutdown();
        sub.complete();
    }

    /// Crash storms never lose values: when every borrower crashes without
    /// returning anything, every value that was ever read from the input is
    /// sitting in the failed queue, ready to be re-lent.
    #[test]
    fn no_value_is_ever_lost(
        n in 1u64..100,
        crashes in 1usize..6,
        borrows_per_crash in 1usize..8,
    ) {
        let lender: StreamLender<u64, u64> = StreamLender::new(count(n));
        for _ in 0..crashes {
            let mut sub = lender.lend();
            for _ in 0..borrows_per_crash {
                if sub.try_next_task().is_none() {
                    break;
                }
            }
            drop(sub);
            // Nothing was ever returned, so nothing is in flight and nothing
            // was emitted: every read value must be queued for re-lending.
            prop_assert_eq!(lender.in_flight(), 0);
            prop_assert_eq!(lender.stats().results_emitted, 0);
            prop_assert_eq!(lender.failed_pending() as u64, lender.stats().values_read);
        }
        lender.shutdown();
    }
}

/// Deterministic regression harness mirroring the paper's claim that random
/// executions of StreamLender found corner-case bugs: run a fixed large batch
/// of pseudo-random schedules quickly.
#[test]
fn random_execution_smoke_batch() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..80u64);
        let lender: StreamLender<u64, u64> = StreamLender::new(count(n));
        let schedule: Vec<Op> = (0..rng.gen_range(0..150))
            .map(|_| match rng.gen_range(0..9) {
                0..=3 => Op::Borrow(rng.gen_range(0..4)),
                4..=6 => Op::PushOldest(rng.gen_range(0..4)),
                7 => Op::Crash(rng.gen_range(0..4)),
                _ => Op::Join,
            })
            .collect();
        apply_schedule(&lender, &schedule, 2);
        let finisher = {
            let mut sub = lender.lend();
            std::thread::spawn(move || {
                while let Some(task) = sub.next_task() {
                    sub.push_result(task.seq, task.value * task.value).unwrap();
                }
                sub.complete();
            })
        };
        let output = lender.output().collect_values().unwrap();
        finisher.join().unwrap();
        assert_eq!(output, (1..=n).map(|x| x * x).collect::<Vec<_>>(), "seed {seed}");
    }
}
