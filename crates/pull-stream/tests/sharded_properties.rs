//! Property-based tests for the [`ShardedLender`]: random schedules of
//! borrows, returns, crashes and joins are applied across every shard, and
//! the programming-model invariants are checked on each execution — every
//! value is delivered exactly once no matter how crash/re-lend
//! interleavings play out, and the merged output always equals the
//! single-lender baseline (`f` mapped over the input, in input order).

use pando_pull_stream::lender::Lend;
use pando_pull_stream::shard::ShardedLender;
use pando_pull_stream::source::{count, SourceExt};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// One step of a randomly generated schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Worker `i` of shard `s` borrows a value (non-blocking).
    Borrow(usize, usize),
    /// Worker `i` of shard `s` returns the oldest value it holds.
    PushOldest(usize, usize),
    /// Worker `i` of shard `s` crashes (drops without returning values).
    Crash(usize, usize),
    /// A new worker joins shard `s`.
    Join(usize),
}

fn op_strategy(max_shards: usize, max_workers: usize) -> impl Strategy<Value = Op> {
    // (shard, worker) pairs are encoded in a single range; the schedule
    // interpreter reduces both modulo the live counts anyway.
    let pairs = max_shards * max_workers;
    prop_oneof![
        4 => (0..pairs).prop_map(move |x| Op::Borrow(x / max_workers, x % max_workers)),
        3 => (0..pairs).prop_map(move |x| Op::PushOldest(x / max_workers, x % max_workers)),
        1 => (0..pairs).prop_map(move |x| Op::Crash(x / max_workers, x % max_workers)),
        1 => (0..max_shards).prop_map(Op::Join),
    ]
}

/// A worker as driven by the random schedule: a sub-stream plus the values
/// it currently holds. `sub = None` after a crash.
struct ScriptedWorker {
    sub: Option<pando_pull_stream::lender::SubStream<u64, u64>>,
    held: Vec<Lend<u64>>,
}

/// Applies `schedule`, recording every *value* handed out in `seen` (values
/// are unique — `count(n)` yields `1..=n` — so they double as global ids
/// across shards, unlike the shard-local seq numbers).
fn apply_schedule(
    sharded: &ShardedLender<u64, u64>,
    schedule: &[Op],
    initial_workers: usize,
    seen: &Arc<Mutex<Vec<u64>>>,
) {
    let shards = sharded.shard_count();
    let mut workers: Vec<Vec<ScriptedWorker>> = (0..shards)
        .map(|shard| {
            (0..initial_workers)
                .map(|_| ScriptedWorker { sub: Some(sharded.lend_on(shard)), held: Vec::new() })
                .collect()
        })
        .collect();
    for op in schedule {
        match op {
            Op::Borrow(s, i) => {
                let shard = s % shards;
                let pool = &mut workers[shard];
                let len = pool.len();
                let worker = &mut pool[i % len];
                if let Some(sub) = worker.sub.as_mut() {
                    if let Some(lend) = sub.try_next_task() {
                        seen.lock().push(lend.value);
                        worker.held.push(lend);
                    }
                }
            }
            Op::PushOldest(s, i) => {
                let shard = s % shards;
                let pool = &mut workers[shard];
                let len = pool.len();
                let worker = &mut pool[i % len];
                if let Some(sub) = worker.sub.as_mut() {
                    if !worker.held.is_empty() {
                        let lend = worker.held.remove(0);
                        sub.push_result(lend.seq, lend.value * lend.value)
                            .expect("held value is always answerable");
                    }
                }
            }
            Op::Crash(s, i) => {
                let shard = s % shards;
                let pool = &mut workers[shard];
                let len = pool.len();
                let worker = &mut pool[i % len];
                worker.sub = None; // drop = crash-stop; held values re-lend shard-locally
                worker.held.clear();
            }
            Op::Join(s) => {
                let shard = s % shards;
                workers[shard]
                    .push(ScriptedWorker { sub: Some(sharded.lend_on(shard)), held: Vec::new() });
            }
        }
    }
    // Scripted workers that survive finish politely: they return what they
    // still hold, then leave.
    for pool in workers {
        for mut worker in pool {
            if let Some(mut sub) = worker.sub.take() {
                for lend in worker.held.drain(..) {
                    sub.push_result(lend.seq, lend.value * lend.value).unwrap();
                }
                sub.complete();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any crash/re-lend interleaving across any shard layout,
    /// followed by one reliable device per shard, every value is delivered
    /// exactly once and the merged output equals the single-lender baseline
    /// (`f` mapped over the input, in input order).
    #[test]
    fn merged_output_matches_the_single_lender_baseline(
        n in 0u64..120,
        shards in 1usize..5,
        chunk in 1usize..7,
        initial_workers in 1usize..3,
        schedule in proptest::collection::vec(op_strategy(4, 3), 0..200),
    ) {
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(n), shards, chunk);
        let seen = Arc::new(Mutex::new(Vec::new()));
        apply_schedule(&sharded, &schedule, initial_workers, &seen);

        // One reliable finisher per shard drains whatever is left anywhere.
        let finishers: Vec<_> = (0..shards)
            .map(|shard| {
                let mut sub = sharded.lend_on(shard);
                let seen = seen.clone();
                std::thread::spawn(move || {
                    while let Some(task) = sub.next_task() {
                        seen.lock().push(task.value);
                        sub.push_result(task.seq, task.value * task.value).unwrap();
                    }
                    sub.complete();
                })
            })
            .collect();
        let output = sharded.output().collect_values().unwrap();
        for finisher in finishers {
            finisher.join().unwrap();
        }

        // Ordered streaming map: identical to the single-lender baseline.
        let expected: Vec<u64> = (1..=n).map(|x| x * x).collect();
        prop_assert_eq!(output, expected);

        // Exactly-once delivery in terms of *successful* processing: every
        // value that produced the result above was lent; re-lends after a
        // crash may hand the same value out again (`seen` counts hand-outs),
        // but the exactly-once guarantee is on results, checked above by
        // completeness + order. Additionally, in a crash-free execution no
        // value may ever be handed out twice.
        let mut handed_out = seen.lock().clone();
        handed_out.sort_unstable();
        let total_hand_outs = handed_out.len() as u64;
        handed_out.dedup();
        prop_assert_eq!(handed_out.len() as u64, n, "every value was handed out at least once");
        let crashes = sharded.stats().substreams_crashed;
        if crashes == 0 {
            prop_assert_eq!(
                total_hand_outs, n,
                "without crashes the conservative property forbids duplicate lends"
            );
        }
        prop_assert_eq!(sharded.stats().relends >= total_hand_outs - n, true);
        prop_assert!(sharded.is_drained());
    }

    /// The laziness property survives sharding: a run that delivered `k`
    /// values has read at most `k` plus one chunk per shard from the input
    /// (values pulled past another shard's position park with their owner
    /// until it asks), never an unbounded read-ahead.
    #[test]
    fn read_ahead_is_bounded_by_one_chunk_per_shard(
        shards in 1usize..5,
        chunk in 1usize..7,
        asks in 0usize..30,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        let reads = Arc::new(AtomicU64::new(0));
        let reads_clone = reads.clone();
        let input = pando_pull_stream::source::infinite(move |i| {
            reads_clone.fetch_add(1, Ordering::SeqCst);
            i
        });
        let sharded: ShardedLender<u64, u64> = ShardedLender::new(input, shards, chunk);
        let mut subs: Vec<_> = (0..shards).map(|s| sharded.lend_on(s)).collect();
        let mut received = 0usize;
        for ask in 0..asks {
            let sub = &mut subs[ask % shards];
            if let Some(lend) = sub.try_next_task() {
                received += 1;
                sub.push_result(lend.seq, lend.value).unwrap();
            }
        }
        let read = reads.load(Ordering::SeqCst) as usize;
        prop_assert!(
            read <= received + shards * chunk,
            "read {read} values for {received} deliveries (chunk {chunk}, {shards} shards)"
        );
        for sub in subs {
            sub.complete();
        }
        sharded.shutdown();
    }
}
