//! Simulated network substrate for the Pando reproduction.
//!
//! The original Pando connects a master process to volunteer browsers over
//! WebSocket and WebRTC channels. What the coordination layer actually relies
//! on is a small set of transport properties: reliable in-order delivery,
//! partial synchrony (messages are usually delivered within a bound), and
//! disconnection detection through heartbeats. This crate provides those
//! properties in-process so the whole system can be exercised, measured and
//! fault-injected deterministically on one machine:
//!
//! * [`channel`] — duplex message channels with configurable latency, jitter
//!   and bandwidth, plus clean-close and crash semantics;
//! * [`heartbeat`] — heartbeat-based failure detection in the crash-stop,
//!   partially-synchronous model assumed by the paper;
//! * [`fault`] — fault injection plans (crash after N messages / after a
//!   delay) used by the deployment-scenario experiments;
//! * [`signaling`] — the *public server* used to bootstrap connections: a
//!   rendez-vous point that either relays traffic (WebSocket-style) or only
//!   brokers the handshake of a direct connection (WebRTC-style), with a NAT
//!   traversal model;
//! * [`codec`] — a length-delimited frame codec over [`bytes`], used by the
//!   core protocol to give messages a realistic wire size;
//! * [`sim`] — a small deterministic discrete-event simulation core used by
//!   the evaluation harness to replay the paper's LAN / VPN / WAN scenarios
//!   without waiting for wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod codec;
pub mod fault;
pub mod heartbeat;
pub mod signaling;
pub mod sim;

pub use channel::{ChannelConfig, ChannelKind, Endpoint, RecvError, SendError};
pub use fault::FaultPlan;
pub use signaling::{NatModel, PublicServer, VolunteerUrl};
pub use sim::{EventQueue, SimTime};
