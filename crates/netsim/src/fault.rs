//! Fault injection for deployment experiments.
//!
//! The evaluation scenarios need reproducible crashes: "the tablet crashes
//! after rendering one frame" (paper Figure 4), or "ten percent of the
//! volunteers disconnect during the run". A [`FaultPlan`] describes when a
//! device crashes; the worker loop consults it before and after each task.

use std::time::{Duration, Instant};

/// A deterministic description of when a device crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FaultPlan {
    /// The device never crashes.
    #[default]
    None,
    /// The device crashes after processing exactly `n` tasks.
    AfterTasks(u64),
    /// The device crashes once `elapsed` wall-clock time has passed since the
    /// plan was armed.
    AfterDuration(Duration),
    /// The device crashes after processing `tasks` tasks or after `elapsed`
    /// time, whichever comes first.
    Either {
        /// Crash after this many tasks...
        tasks: u64,
        /// ...or after this much time, whichever happens first.
        elapsed: Duration,
    },
    /// The device's *link* drops once — a transient disconnect, not a crash:
    /// the worker keeps its state and rejoins. The worker loop consults
    /// [`ArmedFaultPlan::pending_disconnect`] and severs its transport when
    /// the flap falls due; how long the device stays away is `down_for`
    /// (replayed exactly by the deterministic sim's link pause; a real
    /// reconnecting transport treats it as a floor under its backoff).
    Disconnect {
        /// The link drops this long after the plan is armed...
        at: Duration,
        /// ...and stays down for this long before the device redials.
        down_for: Duration,
    },
}

impl FaultPlan {
    /// Arms the plan, starting its clock now.
    pub fn arm(self) -> ArmedFaultPlan {
        ArmedFaultPlan { plan: self, armed_at: Instant::now(), tasks_done: 0, flapped: false }
    }
}

/// A [`FaultPlan`] with a started clock and a task counter.
#[derive(Debug, Clone)]
pub struct ArmedFaultPlan {
    plan: FaultPlan,
    armed_at: Instant,
    tasks_done: u64,
    /// The one-shot [`FaultPlan::Disconnect`] already fired.
    flapped: bool,
}

impl ArmedFaultPlan {
    /// Records that one task finished processing.
    pub fn record_task(&mut self) {
        self.tasks_done += 1;
    }

    /// Number of tasks processed since the plan was armed.
    pub fn tasks_done(&self) -> u64 {
        self.tasks_done
    }

    /// Returns `true` if the device should crash now.
    pub fn should_crash(&self) -> bool {
        match self.plan {
            FaultPlan::None | FaultPlan::Disconnect { .. } => false,
            FaultPlan::AfterTasks(n) => self.tasks_done >= n,
            FaultPlan::AfterDuration(elapsed) => self.armed_at.elapsed() >= elapsed,
            FaultPlan::Either { tasks, elapsed } => {
                self.tasks_done >= tasks || self.armed_at.elapsed() >= elapsed
            }
        }
    }

    /// Returns `Some(down_for)` exactly once, when a scripted
    /// [`FaultPlan::Disconnect`] falls due: the caller must sever its link
    /// now and stay away for the returned duration. Every later call (and
    /// every other plan) answers `None` — a flap is one link event, not a
    /// recurring condition like [`ArmedFaultPlan::should_crash`].
    pub fn pending_disconnect(&mut self) -> Option<Duration> {
        match self.plan {
            FaultPlan::Disconnect { at, down_for }
                if !self.flapped && self.armed_at.elapsed() >= at =>
            {
                self.flapped = true;
                Some(down_for)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_crashes() {
        let mut armed = FaultPlan::None.arm();
        for _ in 0..1000 {
            armed.record_task();
        }
        assert!(!armed.should_crash());
        assert_eq!(armed.tasks_done(), 1000);
    }

    #[test]
    fn after_tasks_crashes_at_threshold() {
        let mut armed = FaultPlan::AfterTasks(3).arm();
        assert!(!armed.should_crash());
        armed.record_task();
        armed.record_task();
        assert!(!armed.should_crash());
        armed.record_task();
        assert!(armed.should_crash());
    }

    #[test]
    fn after_duration_crashes_once_elapsed() {
        let armed = FaultPlan::AfterDuration(Duration::from_millis(20)).arm();
        assert!(!armed.should_crash());
        std::thread::sleep(Duration::from_millis(25));
        assert!(armed.should_crash());
    }

    #[test]
    fn either_crashes_on_first_condition() {
        let mut by_tasks = FaultPlan::Either { tasks: 1, elapsed: Duration::from_secs(3600) }.arm();
        by_tasks.record_task();
        assert!(by_tasks.should_crash());

        let by_time =
            FaultPlan::Either { tasks: 1_000_000, elapsed: Duration::from_millis(10) }.arm();
        std::thread::sleep(Duration::from_millis(15));
        assert!(by_time.should_crash());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(FaultPlan::default(), FaultPlan::None);
    }

    #[test]
    fn disconnect_never_crashes_and_fires_exactly_once() {
        let mut armed = FaultPlan::Disconnect {
            at: Duration::from_millis(10),
            down_for: Duration::from_millis(70),
        }
        .arm();
        assert_eq!(armed.pending_disconnect(), None, "not due yet");
        assert!(!armed.should_crash());
        std::thread::sleep(Duration::from_millis(15));
        assert!(!armed.should_crash(), "a flap is not a crash");
        assert_eq!(armed.pending_disconnect(), Some(Duration::from_millis(70)));
        assert_eq!(armed.pending_disconnect(), None, "one link event only");
        assert!(!armed.should_crash());
    }

    #[test]
    fn other_plans_never_report_a_disconnect() {
        let mut none = FaultPlan::None.arm();
        assert_eq!(none.pending_disconnect(), None);
        let mut tasks = FaultPlan::AfterTasks(0).arm();
        assert!(tasks.should_crash());
        assert_eq!(tasks.pending_disconnect(), None);
    }
}
