//! Heartbeat-based failure detection.
//!
//! Pando relies on the heartbeat mechanism of WebSocket and WebRTC to suspect
//! failures: a peer that stops answering heartbeats within a time bound is
//! considered crashed (crash-stop model under partial synchrony, paper §2.3).
//! [`FailureDetector`] captures that logic in one place so both the simulated
//! channels and the master's volunteer registry share the same semantics.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// A simple timeout-based failure detector.
///
/// The detector is *eventually accurate* under partial synchrony: a peer that
/// keeps sending heartbeats within the interval is never suspected, and a
/// crashed peer is suspected at most `failure_timeout` after its last sign of
/// life.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    heartbeat_interval: Duration,
    failure_timeout: Duration,
}

impl FailureDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `failure_timeout` is not strictly larger than
    /// `heartbeat_interval`: the detector would suspect correct peers between
    /// two heartbeats.
    pub fn new(heartbeat_interval: Duration, failure_timeout: Duration) -> Self {
        assert!(
            failure_timeout > heartbeat_interval,
            "failure timeout must exceed the heartbeat interval"
        );
        Self { heartbeat_interval, failure_timeout }
    }

    /// Interval at which peers are expected to emit heartbeats.
    pub fn heartbeat_interval(&self) -> Duration {
        self.heartbeat_interval
    }

    /// Time without heartbeat after which a peer is suspected.
    pub fn failure_timeout(&self) -> Duration {
        self.failure_timeout
    }

    /// Returns `true` if a peer last heard from at `last_seen` should be
    /// suspected of having crashed.
    pub fn suspects(&self, last_seen: Instant) -> bool {
        self.suspects_at(last_seen, Instant::now())
    }

    /// Like [`FailureDetector::suspects`], but against an explicit `now` —
    /// the form used by components running on a virtual
    /// [`Clock`](crate::sim::Clock), where `Instant::now()` would compare
    /// simulated timestamps against wall time.
    pub fn suspects_at(&self, last_seen: Instant, now: Instant) -> bool {
        now.saturating_duration_since(last_seen) >= self.failure_timeout
    }
}

/// Tracks the liveness of a set of peers identified by `K`.
///
/// The Pando master keeps one entry per connected volunteer; the periodic
/// heartbeat of the underlying channel refreshes the entry, and the master
/// reaps sub-streams whose volunteer became suspect.
#[derive(Debug)]
pub struct LivenessRegistry<K> {
    detector: FailureDetector,
    last_seen: Mutex<HashMap<K, Instant>>,
}

impl<K: Eq + Hash + Clone> LivenessRegistry<K> {
    /// Creates an empty registry with the given detector.
    pub fn new(detector: FailureDetector) -> Self {
        Self { detector, last_seen: Mutex::new(HashMap::new()) }
    }

    /// Records a sign of life from `peer` (a heartbeat or any message).
    pub fn heartbeat(&self, peer: K) {
        self.last_seen.lock().insert(peer, Instant::now());
    }

    /// Removes `peer` from the registry (it left cleanly).
    pub fn remove(&self, peer: &K) {
        self.last_seen.lock().remove(peer);
    }

    /// Returns `true` if `peer` is known and not suspected.
    pub fn is_alive(&self, peer: &K) -> bool {
        self.last_seen.lock().get(peer).map(|last| !self.detector.suspects(*last)).unwrap_or(false)
    }

    /// Returns the peers currently suspected of having crashed.
    pub fn suspected(&self) -> Vec<K> {
        self.last_seen
            .lock()
            .iter()
            .filter(|(_, last)| self.detector.suspects(**last))
            .map(|(peer, _)| peer.clone())
            .collect()
    }

    /// Number of peers currently tracked.
    pub fn len(&self) -> usize {
        self.last_seen.lock().len()
    }

    /// Returns `true` if no peer is tracked.
    pub fn is_empty(&self) -> bool {
        self.last_seen.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn detector(timeout_ms: u64) -> FailureDetector {
        FailureDetector::new(
            Duration::from_millis(timeout_ms / 3),
            Duration::from_millis(timeout_ms),
        )
    }

    #[test]
    #[should_panic(expected = "failure timeout must exceed")]
    fn timeout_must_exceed_interval() {
        let _ = FailureDetector::new(Duration::from_millis(10), Duration::from_millis(5));
    }

    #[test]
    fn fresh_peer_is_not_suspected() {
        let d = detector(100);
        assert!(!d.suspects(Instant::now()));
        assert_eq!(d.failure_timeout(), Duration::from_millis(100));
        assert_eq!(d.heartbeat_interval(), Duration::from_millis(33));
    }

    #[test]
    fn stale_peer_is_suspected() {
        let d = detector(30);
        let long_ago = Instant::now() - Duration::from_millis(500);
        assert!(d.suspects(long_ago));
    }

    #[test]
    fn registry_tracks_liveness() {
        let registry = LivenessRegistry::new(detector(60));
        assert!(registry.is_empty());
        registry.heartbeat("tablet");
        registry.heartbeat("phone");
        assert_eq!(registry.len(), 2);
        assert!(registry.is_alive(&"tablet"));
        assert!(registry.suspected().is_empty());

        // The tablet stops heart-beating; the phone keeps going.
        thread::sleep(Duration::from_millis(40));
        registry.heartbeat("phone");
        thread::sleep(Duration::from_millis(30));
        registry.heartbeat("phone");
        assert!(!registry.is_alive(&"tablet"));
        assert!(registry.is_alive(&"phone"));
        assert_eq!(registry.suspected(), vec!["tablet"]);

        registry.remove(&"tablet");
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_alive(&"tablet"));
    }

    #[test]
    fn unknown_peer_is_not_alive() {
        let registry: LivenessRegistry<u32> = LivenessRegistry::new(detector(60));
        assert!(!registry.is_alive(&42));
    }
}
