//! The public signalling server used to bootstrap connections.
//!
//! In Pando, volunteers open a URL; the HTTP connection serves the worker
//! code, then either a WebSocket connection is kept through a publicly
//! reachable relay, or a WebRTC connection is negotiated through the relay
//! (signalling only) and the data then flows directly between the browsers
//! (paper §2.4.3, Figure 7). This module reproduces that rendez-vous: a
//! [`PublicServer`] hosts *volunteer URLs*; joining through a URL yields a
//! channel endpoint on each side, which is either *direct* (WebRTC-style,
//! when the NAT traversal succeeds) or *relayed* (WebSocket-style, with the
//! extra relay latency).

use crate::channel::{pair, ChannelConfig, ChannelKind, Endpoint};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pando_pull_stream::StreamError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// Probability model for NAT traversal when negotiating a direct (WebRTC)
/// connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NatModel {
    /// Probability that a direct connection can be established; otherwise the
    /// connection falls back to the relay.
    pub direct_success_probability: f64,
}

impl NatModel {
    /// Every direct connection succeeds (devices on the same LAN or with
    /// public addresses).
    pub fn open() -> Self {
        Self { direct_success_probability: 1.0 }
    }

    /// Symmetric-NAT heavy environment: most direct connections fail.
    pub fn restrictive() -> Self {
        Self { direct_success_probability: 0.2 }
    }
}

impl Default for NatModel {
    fn default() -> Self {
        Self { direct_success_probability: 0.85 }
    }
}

/// The URL printed by Pando on startup and shared with volunteers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct VolunteerUrl(String);

impl VolunteerUrl {
    /// The textual form of the URL.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for VolunteerUrl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A volunteer connection delivered to the hosting master.
#[derive(Debug)]
pub struct IncomingVolunteer<T> {
    /// Identifier assigned by the server, unique per URL.
    pub volunteer_id: u64,
    /// How the connection was established (direct WebRTC or relayed WebSocket).
    pub kind: ChannelKind,
    /// The master-side endpoint of the connection.
    pub endpoint: Endpoint<T>,
}

struct Listener<T> {
    incoming: Sender<IncomingVolunteer<T>>,
    direct: ChannelConfig,
    relayed: ChannelConfig,
    next_volunteer: u64,
}

/// A small publicly reachable rendez-vous server.
///
/// One `PublicServer` can host many deployments (URLs); each deployment is
/// specific to a single master and shuts down with it (design principle DP1).
pub struct PublicServer<T> {
    listeners: Mutex<HashMap<VolunteerUrl, Listener<T>>>,
    nat: NatModel,
    signalling_latency: Duration,
    rng: Mutex<StdRng>,
    next_url: Mutex<u64>,
}

impl<T> fmt::Debug for PublicServer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PublicServer")
            .field("nat", &self.nat)
            .field("signalling_latency", &self.signalling_latency)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> PublicServer<T> {
    /// Creates a server with the given NAT model and signalling latency
    /// (the round trips needed to exchange WebRTC session descriptions).
    pub fn new(nat: NatModel, signalling_latency: Duration, seed: u64) -> Self {
        Self {
            listeners: Mutex::new(HashMap::new()),
            nat,
            signalling_latency,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            next_url: Mutex::new(0),
        }
    }

    /// A server on an open network with negligible signalling latency,
    /// suitable for tests.
    pub fn local() -> Self {
        Self::new(NatModel::open(), Duration::ZERO, 0)
    }

    /// Registers a new deployment and returns the URL to share with
    /// volunteers plus the stream of incoming volunteer connections.
    ///
    /// `direct` configures WebRTC-style connections (used when NAT traversal
    /// succeeds), `relayed` configures WebSocket-style connections through
    /// the server.
    pub fn host(
        &self,
        direct: ChannelConfig,
        relayed: ChannelConfig,
    ) -> (VolunteerUrl, Receiver<IncomingVolunteer<T>>) {
        let mut next_url = self.next_url.lock();
        let url = VolunteerUrl(format!("http://10.10.14.119:5000/#deploy-{}", *next_url));
        *next_url += 1;
        drop(next_url);
        let (tx, rx) = unbounded();
        self.listeners
            .lock()
            .insert(url.clone(), Listener { incoming: tx, direct, relayed, next_volunteer: 0 });
        (url, rx)
    }

    /// Stops accepting volunteers on `url` (the deployment finished).
    pub fn unhost(&self, url: &VolunteerUrl) {
        self.listeners.lock().remove(url);
    }

    /// Number of deployments currently hosted.
    pub fn deployments(&self) -> usize {
        self.listeners.lock().len()
    }

    /// Joins the deployment at `url` as a volunteer: performs the signalling
    /// handshake and returns the volunteer-side endpoint together with the
    /// kind of connection that was established.
    ///
    /// # Errors
    ///
    /// Returns an error if no deployment is hosted at `url` (it shut down or
    /// never existed).
    pub fn join(&self, url: &VolunteerUrl) -> Result<(Endpoint<T>, ChannelKind), StreamError> {
        if !self.signalling_latency.is_zero() {
            std::thread::sleep(self.signalling_latency);
        }
        let mut listeners = self.listeners.lock();
        let listener = listeners
            .get_mut(url)
            .ok_or_else(|| StreamError::transport(format!("no deployment at {url}")))?;
        let wants_direct = listener.direct.kind == ChannelKind::WebRtc;
        let direct_ok =
            wants_direct && self.rng.lock().gen_bool(self.nat.direct_success_probability);
        let (kind, config) = if direct_ok {
            (ChannelKind::WebRtc, listener.direct.clone())
        } else {
            (ChannelKind::WebSocket, listener.relayed.clone())
        };
        let volunteer_id = listener.next_volunteer;
        listener.next_volunteer += 1;
        let (master_side, volunteer_side) = pair::<T>(config.with_seed(volunteer_id));
        listener
            .incoming
            .send(IncomingVolunteer { volunteer_id, kind, endpoint: master_side })
            .map_err(|_| StreamError::transport("deployment stopped accepting volunteers"))?;
        Ok((volunteer_side, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn webrtc_config() -> ChannelConfig {
        ChannelConfig { kind: ChannelKind::WebRtc, ..ChannelConfig::instant() }
    }

    #[test]
    fn volunteers_reach_the_master() {
        let server: PublicServer<String> = PublicServer::local();
        let (url, incoming) = server.host(webrtc_config(), ChannelConfig::instant());
        assert_eq!(server.deployments(), 1);

        let (volunteer, kind) = server.join(&url).unwrap();
        assert_eq!(kind, ChannelKind::WebRtc, "open NAT gives a direct connection");
        let master_side = incoming.recv().unwrap();
        assert_eq!(master_side.volunteer_id, 0);

        volunteer.send("hello".to_string()).unwrap();
        assert_eq!(master_side.endpoint.recv().unwrap(), "hello");
        master_side.endpoint.send("task".to_string()).unwrap();
        assert_eq!(volunteer.recv().unwrap(), "task");
    }

    #[test]
    fn volunteer_ids_are_sequential() {
        let server: PublicServer<u8> = PublicServer::local();
        let (url, incoming) = server.host(webrtc_config(), ChannelConfig::instant());
        for _ in 0..3 {
            server.join(&url).unwrap();
        }
        let ids: Vec<u64> = (0..3).map(|_| incoming.recv().unwrap().volunteer_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn restrictive_nat_falls_back_to_relay() {
        let server: PublicServer<u8> =
            PublicServer::new(NatModel { direct_success_probability: 0.0 }, Duration::ZERO, 1);
        let (url, incoming) = server.host(webrtc_config(), ChannelConfig::instant());
        let (_volunteer, kind) = server.join(&url).unwrap();
        assert_eq!(kind, ChannelKind::WebSocket);
        assert_eq!(incoming.recv().unwrap().kind, ChannelKind::WebSocket);
    }

    #[test]
    fn joining_an_unhosted_url_fails() {
        let server: PublicServer<u8> = PublicServer::local();
        let (url, _incoming) = server.host(webrtc_config(), ChannelConfig::instant());
        server.unhost(&url);
        assert_eq!(server.deployments(), 0);
        let err = server.join(&url).unwrap_err();
        assert!(err.is_transport());
    }

    #[test]
    fn each_deployment_gets_a_distinct_url() {
        let server: PublicServer<u8> = PublicServer::local();
        let (url1, _rx1) = server.host(webrtc_config(), ChannelConfig::instant());
        let (url2, _rx2) = server.host(webrtc_config(), ChannelConfig::instant());
        assert_ne!(url1, url2);
        assert!(url1.as_str().starts_with("http://"));
        assert_eq!(format!("{url1}"), url1.as_str());
    }

    #[test]
    fn nat_models_expose_probabilities() {
        assert_eq!(NatModel::open().direct_success_probability, 1.0);
        assert!(NatModel::restrictive().direct_success_probability < 0.5);
        assert!(NatModel::default().direct_success_probability > 0.5);
    }
}
