//! A minimal deterministic discrete-event simulation core.
//!
//! The evaluation harness replays the paper's LAN / VPN / WAN scenarios
//! (Table 2) over five simulated minutes. Running them in wall-clock time
//! would take hours; instead the bench binaries drive a virtual clock and an
//! event queue. The simulation core is deliberately tiny: simulated time,
//! an ordered event queue, helpers to convert to and from [`Duration`], and
//! a [`Clock`] that lets the *real* transport stack
//! ([`channel`](crate::channel)) run on either the wall clock or a virtual
//! clock advanced explicitly by a single-threaded scheduler — the foundation
//! of the deterministic reactor simulation in `pando_core::sim`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A clock the transport stack reads the current time from.
///
/// The wall clock (the default) is [`Instant::now`]. A *virtual* clock is
/// anchored at an arbitrary origin captured once at creation and only moves
/// when [`Clock::advance_to`] is called — every component that reads time
/// through the clock (channel delivery, failure suspicion, heartbeat pacing,
/// reactor timers) then becomes a deterministic function of the sequence of
/// advances, which is what makes two same-seed simulation runs produce
/// byte-identical traces.
///
/// Cloning a virtual clock yields another handle on the *same* time line.
///
/// # Examples
///
/// ```
/// use pando_netsim::sim::Clock;
/// use std::time::Duration;
///
/// let clock = Clock::virtual_clock();
/// let start = clock.now();
/// clock.advance_to(start + Duration::from_millis(5));
/// assert_eq!(clock.elapsed(), Duration::from_millis(5));
/// assert_eq!(clock.now() - start, Duration::from_millis(5));
/// ```
#[derive(Clone, Debug)]
pub struct Clock(Option<Arc<VirtualClock>>);

impl Clock {
    /// The wall clock: [`Clock::now`] is [`Instant::now`].
    pub fn wall() -> Self {
        Clock(None)
    }

    /// A fresh virtual clock at its origin. Time only moves through
    /// [`Clock::advance_to`].
    pub fn virtual_clock() -> Self {
        Clock(Some(Arc::new(VirtualClock::new())))
    }

    /// `true` for a virtual clock.
    pub fn is_virtual(&self) -> bool {
        self.0.is_some()
    }

    /// The current instant on this clock.
    pub fn now(&self) -> Instant {
        match &self.0 {
            None => Instant::now(),
            Some(clock) => clock.now(),
        }
    }

    /// Time elapsed since the origin of a virtual clock.
    ///
    /// # Panics
    ///
    /// Panics on the wall clock, which has no origin.
    pub fn elapsed(&self) -> Duration {
        let clock = self.0.as_ref().expect("the wall clock has no origin to measure from");
        Duration::from_nanos(clock.offset_nanos.load(AtomicOrdering::SeqCst))
    }

    /// Moves a virtual clock forward to `at`. Advancing to an instant that
    /// already passed is a no-op: virtual time never goes backwards.
    ///
    /// # Panics
    ///
    /// Panics on the wall clock, which cannot be steered.
    pub fn advance_to(&self, at: Instant) {
        let clock = self.0.as_ref().expect("the wall clock cannot be advanced");
        let target = at.saturating_duration_since(clock.base).as_nanos() as u64;
        clock.offset_nanos.fetch_max(target, AtomicOrdering::SeqCst);
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

impl PartialEq for Clock {
    /// Wall clocks are all equal; virtual clocks are equal when they are
    /// handles on the same time line.
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// The shared state behind a virtual [`Clock`]: an anchor instant plus an
/// explicitly advanced offset, at nanosecond resolution so virtual deadlines
/// (channel delivery instants, crash-suspicion maturities) are hit exactly.
#[derive(Debug)]
struct VirtualClock {
    base: Instant,
    /// Advanced with `fetch_max`, so racing advances (should a scheduler
    /// ever be multi-threaded) still keep time monotonic.
    offset_nanos: AtomicU64,
}

impl VirtualClock {
    fn new() -> Self {
        Self { base: Instant::now(), offset_nanos: AtomicU64::new(0) }
    }

    fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_nanos.load(AtomicOrdering::SeqCst))
    }
}

/// A point in simulated time, with microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since the origin.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from seconds since the origin.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time advanced by `delay`.
    pub fn after(self, delay: Duration) -> SimTime {
        SimTime(self.0 + delay.as_micros() as u64)
    }

    /// The duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.after(rhs)
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // breaking ties by insertion order (FIFO).
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue over a virtual clock.
///
/// # Examples
///
/// ```
/// use pando_netsim::sim::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut queue = EventQueue::new();
/// queue.schedule_in(Duration::from_secs(2), "second");
/// queue.schedule_in(Duration::from_secs(1), "first");
/// let (t1, e1) = queue.pop().unwrap();
/// let (t2, e2) = queue.pop().unwrap();
/// assert_eq!((e1, e2), ("first", "second"));
/// assert!(t1 < t2);
/// assert_eq!(queue.now(), t2);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0 }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time: events
    /// cannot be scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` of simulated time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now.after(delay), event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        Some((scheduled.at, scheduled.event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let clock = Clock::virtual_clock();
        assert!(clock.is_virtual());
        let start = clock.now();
        assert_eq!(clock.elapsed(), Duration::ZERO);
        assert_eq!(clock.now(), start, "virtual time stands still on its own");
        clock.advance_to(start + Duration::from_micros(250));
        assert_eq!(clock.elapsed(), Duration::from_micros(250));
        // Clones share the time line.
        let handle = clock.clone();
        handle.advance_to(start + Duration::from_millis(1));
        assert_eq!(clock.elapsed(), Duration::from_millis(1));
        assert_eq!(clock, handle);
        // Advancing backwards is a no-op.
        clock.advance_to(start);
        assert_eq!(clock.elapsed(), Duration::from_millis(1));
    }

    #[test]
    fn wall_clock_tracks_real_time() {
        let clock = Clock::wall();
        assert!(!clock.is_virtual());
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert_eq!(Clock::wall(), Clock::wall());
        assert_ne!(Clock::wall(), Clock::virtual_clock());
        assert_ne!(Clock::virtual_clock(), Clock::virtual_clock(), "distinct time lines differ");
        assert_eq!(Clock::default(), Clock::wall());
    }

    #[test]
    #[should_panic(expected = "cannot be advanced")]
    fn wall_clock_cannot_be_advanced() {
        let clock = Clock::wall();
        let at = clock.now();
        clock.advance_to(at);
    }

    #[test]
    fn sim_time_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_micros(10).as_micros(), 10);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_micros(30), "c");
        queue.schedule(SimTime::from_micros(10), "a");
        queue.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut queue = EventQueue::new();
        let t = SimTime::from_micros(100);
        for i in 0..10 {
            queue.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), ());
        assert_eq!(queue.now(), SimTime::ZERO);
        assert_eq!(queue.peek_time(), Some(SimTime::from_micros(1_000_000)));
        queue.pop();
        assert_eq!(queue.now(), SimTime::from_micros(1_000_000));
        assert!(queue.is_empty());
        assert_eq!(queue.len(), 0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), 1u8);
        queue.pop();
        queue.schedule(SimTime::from_micros(10), 2u8);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), "first");
        queue.pop();
        queue.schedule_in(Duration::from_secs(1), "second");
        let (t, _) = queue.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(2.0));
    }
}
