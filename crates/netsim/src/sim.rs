//! A minimal deterministic discrete-event simulation core.
//!
//! The evaluation harness replays the paper's LAN / VPN / WAN scenarios
//! (Table 2) over five simulated minutes. Running them in wall-clock time
//! would take hours; instead the bench binaries drive a virtual clock and an
//! event queue. The simulation core is deliberately tiny: simulated time,
//! an ordered event queue, and helpers to convert to and from [`Duration`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// A point in simulated time, with microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since the origin.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from seconds since the origin.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time advanced by `delay`.
    pub fn after(self, delay: Duration) -> SimTime {
        SimTime(self.0 + delay.as_micros() as u64)
    }

    /// The duration elapsed since `earlier`; zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.after(rhs)
    }
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first,
        // breaking ties by insertion order (FIFO).
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue over a virtual clock.
///
/// # Examples
///
/// ```
/// use pando_netsim::sim::{EventQueue, SimTime};
/// use std::time::Duration;
///
/// let mut queue = EventQueue::new();
/// queue.schedule_in(Duration::from_secs(2), "second");
/// queue.schedule_in(Duration::from_secs(1), "first");
/// let (t1, e1) = queue.pop().unwrap();
/// let (t2, e2) = queue.pop().unwrap();
/// assert_eq!((e1, e2), ("first", "second"));
/// assert!(t1 < t2);
/// assert_eq!(queue.now(), t2);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), now: SimTime::ZERO, next_seq: 0 }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time: events
    /// cannot be scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` of simulated time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule(self.now.after(delay), event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        Some((scheduled.at, scheduled.event))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::from_micros(10).as_micros(), 10);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_micros(30), "c");
        queue.schedule(SimTime::from_micros(10), "a");
        queue.schedule(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut queue = EventQueue::new();
        let t = SimTime::from_micros(100);
        for i in 0..10 {
            queue.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), ());
        assert_eq!(queue.now(), SimTime::ZERO);
        assert_eq!(queue.peek_time(), Some(SimTime::from_micros(1_000_000)));
        queue.pop();
        assert_eq!(queue.now(), SimTime::from_micros(1_000_000));
        assert!(queue.is_empty());
        assert_eq!(queue.len(), 0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), 1u8);
        queue.pop();
        queue.schedule(SimTime::from_micros(10), 2u8);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut queue = EventQueue::new();
        queue.schedule_in(Duration::from_secs(1), "first");
        queue.pop();
        queue.schedule_in(Duration::from_secs(1), "second");
        let (t, _) = queue.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(2.0));
    }
}
