//! Duplex message channels with configurable latency, jitter and failure
//! semantics.
//!
//! A channel pair models one connection between the Pando master and one
//! volunteer device. It provides exactly the transport properties the paper
//! relies on: reliable in-order delivery, a one-way latency that is usually
//! bounded (partial synchrony), a clean close (the volunteer leaves) and a
//! crash (the browser tab is closed or connectivity is lost) that the peer
//! only detects after the heartbeat timeout.
//!
//! Endpoints can be used either blocking (one pump thread per endpoint, the
//! original shape) or readiness-driven: [`Endpoint::set_waker`] registers a
//! callback fired whenever the endpoint *may* have become pollable — a frame
//! arrived, the peer closed, crashed or was dropped — and
//! [`Endpoint::next_ready_at`] exposes the earliest instant at which a
//! buffered-but-undelivered frame (or a pending crash suspicion) matures, so
//! an epoll-style reactor can multiplex thousands of endpoints over a fixed
//! thread pool without ever blocking in [`Endpoint::recv`].

use crate::heartbeat::FailureDetector;
use crate::sim::Clock;
use crossbeam::channel;
use pando_pull_stream::duplex::Duplex;
use pando_pull_stream::sink::Sink;
use pando_pull_stream::source::{BoxSource, Source};
use pando_pull_stream::{Answer, Request, StreamError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The browser communication technology being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ChannelKind {
    /// A WebSocket connection relayed through a server reachable by both ends.
    WebSocket,
    /// A WebRTC data channel established directly between two browsers after
    /// a signalling handshake.
    WebRtc,
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::WebSocket => f.write_str("websocket"),
            ChannelKind::WebRtc => f.write_str("webrtc"),
        }
    }
}

/// Configuration of a simulated channel.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChannelConfig {
    /// Which technology the channel models (affects the signalling path, not
    /// the data path).
    pub kind: ChannelKind,
    /// One-way propagation latency.
    pub latency: Duration,
    /// Maximum additional random delay added per message.
    pub jitter: Duration,
    /// Available bandwidth; `None` means transmission time is negligible.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Interval between heartbeats (used by the failure detector).
    pub heartbeat_interval: Duration,
    /// Time without any heartbeat after which the peer is suspected to have
    /// crashed.
    pub failure_timeout: Duration,
    /// Seed for the per-channel jitter generator.
    pub seed: u64,
    /// Byte bound on data frames sent but not yet consumed by the peer — the
    /// simulated twin of a real transport's bounded write queue. A sized send
    /// that would push the in-flight byte count past the bound is rejected
    /// with [`SendError::WouldBlock`]; the sender's waker fires once the peer
    /// drains back below the bound. `None` (the default, and what every
    /// profile constructor uses) keeps the channel unbounded, so existing
    /// deterministic traces are byte-identical. Zero-size sends (heartbeats,
    /// control frames) are always admitted.
    pub send_buffer_max: Option<usize>,
    /// Probability in `[0, 1)` that one transmission of a frame is lost on
    /// the wire. The channel models the transport *above* raw datagrams —
    /// TCP plus the session layer's ack/redelivery buffer — where a lost
    /// frame is never dropped for good: it is retransmitted until it lands,
    /// so loss surfaces as added delivery delay ([`ChannelConfig::retransmit`]
    /// per lost transmission), never as a missing or duplicated frame.
    /// Retransmissions are counted per side
    /// ([`Endpoint::frames_retransmitted`]). `0.0` (every profile
    /// constructor's default) draws nothing from the jitter RNG, keeping
    /// pre-existing deterministic traces byte-identical.
    pub loss: f64,
    /// Recovery delay added to a frame's delivery for **each** lost
    /// transmission — the retransmit timeout of the modelled reliable
    /// transport. Only consulted when [`ChannelConfig::loss`] is non-zero.
    pub retransmit: Duration,
}

impl ChannelConfig {
    /// A loop-back configuration with no latency, useful in unit tests.
    pub fn instant() -> Self {
        Self {
            kind: ChannelKind::WebSocket,
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
            heartbeat_interval: Duration::from_millis(5),
            failure_timeout: Duration::from_millis(25),
            seed: 0,
            send_buffer_max: None,
            loss: 0.0,
            retransmit: Duration::from_millis(25),
        }
    }

    /// A local-area-network Wi-Fi profile (paper §5.2).
    pub fn lan() -> Self {
        Self {
            kind: ChannelKind::WebSocket,
            latency: Duration::from_millis(2),
            jitter: Duration::from_millis(1),
            bandwidth_bytes_per_sec: Some(12_500_000), // ~100 Mbit/s Wi-Fi
            heartbeat_interval: Duration::from_millis(100),
            failure_timeout: Duration::from_millis(500),
            seed: 0,
            send_buffer_max: None,
            loss: 0.0,
            retransmit: Duration::from_millis(25),
        }
    }

    /// A VPN profile between cities of the same country (paper §5.3).
    pub fn vpn() -> Self {
        Self {
            kind: ChannelKind::WebSocket,
            latency: Duration::from_millis(15),
            jitter: Duration::from_millis(4),
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbit/s
            heartbeat_interval: Duration::from_millis(200),
            failure_timeout: Duration::from_secs(1),
            seed: 0,
            send_buffer_max: None,
            loss: 0.0,
            retransmit: Duration::from_millis(60),
        }
    }

    /// A wide-area-network profile across Europe (paper §5.4).
    pub fn wan() -> Self {
        Self {
            kind: ChannelKind::WebRtc,
            latency: Duration::from_millis(45),
            jitter: Duration::from_millis(10),
            bandwidth_bytes_per_sec: Some(12_500_000), // 100 Mbit/s
            heartbeat_interval: Duration::from_millis(500),
            failure_timeout: Duration::from_secs(2),
            seed: 0,
            send_buffer_max: None,
            loss: 0.0,
            retransmit: Duration::from_millis(200),
        }
    }

    /// Returns the same configuration with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the same configuration with a per-transmission loss
    /// probability (see [`ChannelConfig::loss`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss < 1.0` — at 1.0 every retransmission is
    /// lost too and the frame would never be delivered.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss probability {loss} outside [0, 1)");
        self.loss = loss;
        self
    }

    /// Transmission delay of a message of `size` bytes at the configured
    /// bandwidth.
    pub fn transmission_delay(&self, size: usize) -> Duration {
        match self.bandwidth_bytes_per_sec {
            Some(bw) if bw > 0 => Duration::from_secs_f64(size as f64 / bw as f64),
            _ => Duration::ZERO,
        }
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::lan()
    }
}

/// Error returned by [`Endpoint::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The channel was closed cleanly by either side.
    Closed,
    /// The peer crashed (detected through the failure detector).
    PeerFailed,
    /// The bounded send buffer ([`ChannelConfig::send_buffer_max`], or a real
    /// transport's write queue) has no room for this frame. Nothing was sent;
    /// the channel is still usable. The registered waker fires once the
    /// buffer drains below the bound, so callers park instead of spinning.
    WouldBlock,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed => f.write_str("channel closed"),
            SendError::PeerFailed => f.write_str("peer failed"),
            SendError::WouldBlock => f.write_str("send buffer full"),
        }
    }
}

impl std::error::Error for SendError {}

/// Error returned by the receiving operations of an [`Endpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// The channel was closed cleanly: no more messages will ever arrive.
    Closed,
    /// The peer crashed; detected after the heartbeat failure timeout.
    PeerFailed,
    /// No message arrived before the timeout (the channel is still usable).
    Timeout,
    /// No message is currently available (the channel is still usable).
    Empty,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Closed => f.write_str("channel closed"),
            RecvError::PeerFailed => f.write_str("peer failed"),
            RecvError::Timeout => f.write_str("receive timed out"),
            RecvError::Empty => f.write_str("no message available"),
        }
    }
}

impl std::error::Error for RecvError {}

enum Frame<T> {
    Data { payload: T, deliver_at: Instant, size: usize },
    Close { deliver_at: Instant },
}

struct Direction<T> {
    tx: channel::Sender<Frame<T>>,
    rx: channel::Receiver<Frame<T>>,
}

/// Readiness callback registered with [`Endpoint::set_waker`]: invoked (from
/// the peer's thread) whenever the endpoint may have become pollable.
pub type Waker = Arc<dyn Fn() + Send + Sync>;

struct SideState {
    /// Set when this side crashed (abruptly stopped).
    crashed_at: Option<Instant>,
    /// Set when this side closed its sending direction cleanly.
    closed: bool,
    /// Set when this side has observed the peer's close notification.
    peer_done: bool,
    /// Set when this side's endpoint was dropped entirely; the peer treats it
    /// like a crash unless a clean close preceded it.
    dropped: bool,
    /// Readiness callback of this side, fired by the *peer* on frame arrival,
    /// close, crash and drop.
    waker: Option<Waker>,
    /// Next time at which a message may be delivered (keeps FIFO order even
    /// with jitter).
    next_delivery: Instant,
    /// Bytes, messages and task/result records sent by this side. One
    /// batched message may carry many records, which is exactly what the
    /// `records_sent / messages_sent` ratio measures.
    messages_sent: u64,
    bytes_sent: u64,
    records_sent: u64,
    /// Bytes of data frames sent by this side but not yet consumed by the
    /// peer; compared against [`ChannelConfig::send_buffer_max`].
    bytes_in_flight: usize,
    /// A sized send was rejected with [`SendError::WouldBlock`]; the next
    /// drain below the bound fires this side's waker exactly once.
    send_blocked: bool,
    /// Transmissions of this side's frames lost on the wire and re-sent by
    /// the modelled reliable transport ([`ChannelConfig::loss`]).
    frames_retransmitted: u64,
}

struct Shared {
    a: Mutex<SideState>,
    b: Mutex<SideState>,
}

/// One endpoint of a simulated duplex channel. Create pairs with [`pair`].
pub struct Endpoint<T> {
    /// `true` for the endpoint returned first by [`pair`].
    is_a: bool,
    config: ChannelConfig,
    /// The clock delivery times and failure suspicions are measured on: the
    /// wall clock for real runs, a virtual clock under the deterministic
    /// simulator (see [`pair_with_clock`]).
    clock: Clock,
    outgoing: channel::Sender<Frame<T>>,
    incoming: channel::Receiver<Frame<T>>,
    shared: Arc<Shared>,
    rng: Mutex<StdRng>,
    detector: FailureDetector,
    /// Buffered frame whose delivery time has not yet been reached.
    pending: Mutex<Option<Frame<T>>>,
}

impl<T> fmt::Debug for Endpoint<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("kind", &self.config.kind)
            .field("is_a", &self.is_a)
            .finish_non_exhaustive()
    }
}

/// Creates a connected pair of endpoints with the given configuration.
///
/// # Examples
///
/// ```
/// use pando_netsim::channel::{pair, ChannelConfig};
///
/// let (master, worker) = pair::<String>(ChannelConfig::instant());
/// master.send("task".to_string()).unwrap();
/// assert_eq!(worker.recv().unwrap(), "task");
/// ```
pub fn pair<T: Send + 'static>(config: ChannelConfig) -> (Endpoint<T>, Endpoint<T>) {
    pair_with_clock(config, Clock::wall())
}

/// Creates a connected pair of endpoints reading time from `clock`.
///
/// With [`Clock::wall`] this is exactly [`pair`]. With a virtual clock the
/// channel becomes deterministic *and non-blocking*: delivery instants,
/// jitter and crash-suspicion maturities are measured on the virtual time
/// line, and the receive operations never sleep — a frame whose simulated
/// latency has not elapsed yet reports [`RecvError::Timeout`] (or
/// [`RecvError::Empty`] through [`Endpoint::try_recv`]) until the scheduler
/// advances the clock past [`Endpoint::next_ready_at`]. Blocking receives
/// are therefore only meaningful on the wall clock; virtual-clock endpoints
/// are driven by a poller such as the reactor or the deterministic fleet
/// simulator.
pub fn pair_with_clock<T: Send + 'static>(
    config: ChannelConfig,
    clock: Clock,
) -> (Endpoint<T>, Endpoint<T>) {
    let a_to_b = channel::unbounded();
    let b_to_a = channel::unbounded();
    let now = clock.now();
    let shared = Arc::new(Shared {
        a: Mutex::new(SideState {
            crashed_at: None,
            closed: false,
            peer_done: false,
            dropped: false,
            waker: None,
            next_delivery: now,
            messages_sent: 0,
            bytes_sent: 0,
            records_sent: 0,
            bytes_in_flight: 0,
            send_blocked: false,
            frames_retransmitted: 0,
        }),
        b: Mutex::new(SideState {
            crashed_at: None,
            closed: false,
            peer_done: false,
            dropped: false,
            waker: None,
            next_delivery: now,
            messages_sent: 0,
            bytes_sent: 0,
            records_sent: 0,
            bytes_in_flight: 0,
            send_blocked: false,
            frames_retransmitted: 0,
        }),
    });
    let dir_ab = Direction { tx: a_to_b.0, rx: a_to_b.1 };
    let dir_ba = Direction { tx: b_to_a.0, rx: b_to_a.1 };
    let a = Endpoint {
        is_a: true,
        config: config.clone(),
        clock: clock.clone(),
        outgoing: dir_ab.tx,
        incoming: dir_ba.rx,
        shared: shared.clone(),
        rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
        detector: FailureDetector::new(config.heartbeat_interval, config.failure_timeout),
        pending: Mutex::new(None),
    };
    let b = Endpoint {
        is_a: false,
        config: config.clone(),
        clock,
        outgoing: dir_ba.tx,
        incoming: dir_ab.rx,
        shared,
        rng: Mutex::new(StdRng::seed_from_u64(config.seed.wrapping_add(1))),
        detector: FailureDetector::new(config.heartbeat_interval, config.failure_timeout),
        pending: Mutex::new(None),
    };
    (a, b)
}

impl<T: Send + 'static> Endpoint<T> {
    fn my_state(&self) -> &Mutex<SideState> {
        if self.is_a {
            &self.shared.a
        } else {
            &self.shared.b
        }
    }

    fn peer_state(&self) -> &Mutex<SideState> {
        if self.is_a {
            &self.shared.b
        } else {
            &self.shared.a
        }
    }

    /// The configuration this channel was created with.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Registers a readiness callback for this endpoint, replacing any
    /// previous one. The peer invokes it after enqueueing a frame, on clean
    /// close, on crash and when its endpoint is dropped — every event after
    /// which a non-blocking poll ([`Endpoint::try_recv`]) may observe
    /// something new.
    ///
    /// The callback must be cheap and must not call back into the endpoint:
    /// it typically flips a "ready" flag and pushes the endpoint onto a
    /// reactor queue. Delivery delays are *not* signalled through the waker
    /// (the frame was already announced when it was sent); pollers combine
    /// the waker with [`Endpoint::next_ready_at`] to re-poll frames whose
    /// simulated latency has not elapsed yet.
    pub fn set_waker(&self, waker: Waker) {
        self.my_state().lock().waker = Some(waker);
    }

    /// Removes the readiness callback, if any.
    pub fn clear_waker(&self) {
        self.my_state().lock().waker = None;
    }

    /// Fires the peer's readiness callback, if registered.
    fn wake_peer(&self) {
        let waker = self.peer_state().lock().waker.clone();
        if let Some(waker) = waker {
            waker();
        }
    }

    /// The earliest instant at which this endpoint may become pollable again
    /// without a new wake event: the delivery time of a buffered frame whose
    /// simulated latency has not elapsed, or the moment a pending crash
    /// suspicion matures. `None` means "nothing buffered" — the next
    /// readiness change will fire the waker.
    ///
    /// Note that a frame still in the wire queue is only buffered (and thus
    /// visible here) after a [`Endpoint::try_recv`] attempted to deliver it,
    /// so reactors should call `try_recv` first and consult this on `Empty`.
    pub fn next_ready_at(&self) -> Option<Instant> {
        let pending = self.pending.lock().as_ref().map(|frame| match frame {
            Frame::Data { deliver_at, .. } | Frame::Close { deliver_at } => *deliver_at,
        });
        let suspicion = self
            .peer_state()
            .lock()
            .crashed_at
            .map(|crashed_at| crashed_at + self.config.failure_timeout);
        match (pending, suspicion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Sends a message, modelling it as having a negligible size.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::Closed`] if either side already closed the channel
    /// and [`SendError::PeerFailed`] if the peer is known to have crashed.
    pub fn send(&self, payload: T) -> Result<(), SendError> {
        self.send_with_size(payload, 0)
    }

    /// Sends a message of `size` bytes: the delivery time accounts for the
    /// propagation latency, the random jitter and the transmission time at
    /// the configured bandwidth.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Endpoint::send`].
    pub fn send_with_size(&self, payload: T, size: usize) -> Result<(), SendError> {
        self.send_records_with_size(payload, size, 1)
    }

    /// Sends one message of `size` bytes carrying `records` task or result
    /// records — a batched frame. The whole batch pays the propagation
    /// latency and jitter **once**, and the transmission time of its total
    /// size; the per-record counter lets callers observe the amortisation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Endpoint::send`].
    pub fn send_records_with_size(
        &self,
        payload: T,
        size: usize,
        records: u64,
    ) -> Result<(), SendError> {
        {
            let peer = self.peer_state().lock();
            if let Some(crashed_at) = peer.crashed_at {
                if self.clock.now().saturating_duration_since(crashed_at)
                    >= self.config.failure_timeout
                {
                    return Err(SendError::PeerFailed);
                }
            }
        }
        let mut mine = self.my_state().lock();
        if mine.closed {
            return Err(SendError::Closed);
        }
        if mine.crashed_at.is_some() {
            return Err(SendError::PeerFailed);
        }
        // Bounded-send admission, mirroring a real transport's byte-bounded
        // write queue. Zero-size frames (heartbeats) always pass, and a
        // frame larger than the whole bound is admitted alone rather than
        // deadlocking the sender.
        if let Some(max) = self.config.send_buffer_max {
            if size > 0 && mine.bytes_in_flight > 0 && mine.bytes_in_flight + size > max {
                mine.send_blocked = true;
                return Err(SendError::WouldBlock);
            }
        }
        let jitter = if self.config.jitter.is_zero() {
            Duration::ZERO
        } else {
            let nanos = self.config.jitter.as_nanos() as u64;
            Duration::from_nanos(self.rng.lock().gen_range(0..=nanos))
        };
        let mut delay = self.config.latency + jitter + self.config.transmission_delay(size);
        // Per-transmission loss: the modelled reliable transport re-sends a
        // lost frame after `retransmit`, so each lost transmission converts
        // to delay. The geometric draw is capped at 16 losses per frame to
        // bound both the loop and the worst-case delivery delay.
        // loss == 0.0 must not touch the RNG: the jitter sequence, and with
        // it every pre-existing golden trace, stays byte-identical.
        if self.config.loss > 0.0 {
            let mut lost = 0u32;
            {
                let mut rng = self.rng.lock();
                while lost < 16 && rng.gen_bool(self.config.loss) {
                    lost += 1;
                }
            }
            if lost > 0 {
                delay += self.config.retransmit * lost;
                mine.frames_retransmitted += u64::from(lost);
            }
        }
        let deliver_at = (self.clock.now() + delay).max(mine.next_delivery);
        mine.next_delivery = deliver_at;
        mine.messages_sent += 1;
        mine.bytes_sent += size as u64;
        mine.records_sent += records;
        mine.bytes_in_flight += size;
        drop(mine);
        self.outgoing
            .send(Frame::Data { payload, deliver_at, size })
            .map_err(|_| SendError::Closed)?;
        self.wake_peer();
        Ok(())
    }

    /// Books `size` consumed bytes against the *peer's* in-flight counter
    /// (the peer sent them, this side just delivered them) and fires the
    /// peer's waker if a bounded send was parked on the drain.
    fn drain_in_flight(&self, size: usize) {
        if size == 0 || self.config.send_buffer_max.is_none() {
            return;
        }
        let max = self.config.send_buffer_max.unwrap_or(usize::MAX);
        let waker = {
            let mut peer = self.peer_state().lock();
            peer.bytes_in_flight = peer.bytes_in_flight.saturating_sub(size);
            if peer.send_blocked && peer.bytes_in_flight < max {
                peer.send_blocked = false;
                peer.waker.clone()
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker();
        }
    }

    /// Receives the next message, blocking until it arrives or the connection
    /// terminates.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError::Closed`] after a clean close and
    /// [`RecvError::PeerFailed`] once the failure detector suspects the peer.
    ///
    /// # Panics
    ///
    /// Panics on a virtual-clock endpoint ([`pair_with_clock`]): virtual
    /// time cannot pass *inside* a blocking call, so this loop could only
    /// ever spin. Virtual-clock endpoints must be driven non-blocking
    /// ([`Endpoint::try_recv`] + [`Endpoint::next_ready_at`]) by the
    /// scheduler that owns the clock — failing loudly here turns a silent
    /// 100 %-CPU livelock (e.g. a `spawn_worker` thread handed a
    /// deterministic-config endpoint) into an immediate diagnosis.
    pub fn recv(&self) -> Result<T, RecvError> {
        assert!(
            !self.clock.is_virtual(),
            "blocking recv() on a virtual-clock endpoint would spin forever: \
             drive it with try_recv()/next_ready_at() from the clock's scheduler"
        );
        loop {
            match self.recv_deadline(self.clock.now() + self.config.failure_timeout) {
                Err(RecvError::Timeout) => continue,
                other => return other,
            }
        }
    }

    /// Receives the next message, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvError::Timeout`] if nothing arrived in time; otherwise the same
    /// conditions as [`Endpoint::recv`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        self.recv_deadline(self.clock.now() + timeout)
    }

    /// Returns the next message if one is already available.
    ///
    /// # Errors
    ///
    /// [`RecvError::Empty`] if no message is ready; otherwise the same
    /// conditions as [`Endpoint::recv`].
    pub fn try_recv(&self) -> Result<T, RecvError> {
        self.recv_deadline(self.clock.now()).map_err(|err| {
            if err == RecvError::Timeout {
                RecvError::Empty
            } else {
                err
            }
        })
    }

    fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvError> {
        loop {
            // A frame already pulled off the wire but not yet deliverable.
            let buffered = self.pending.lock().take();
            let frame = match buffered {
                Some(frame) => Some(frame),
                None => match self.incoming.try_recv() {
                    Ok(frame) => Some(frame),
                    Err(channel::TryRecvError::Empty) => None,
                    Err(channel::TryRecvError::Disconnected) => {
                        // The peer endpoint was dropped entirely. A clean
                        // close was observed as a Close frame; anything else
                        // is indistinguishable from a crash.
                        let peer = self.peer_state().lock();
                        return if peer.closed {
                            Err(RecvError::Closed)
                        } else {
                            Err(RecvError::PeerFailed)
                        };
                    }
                },
            };
            // On a virtual clock waiting is meaningless: time only moves when
            // the scheduler advances it, so anything not deliverable *right
            // now* reports a timeout immediately and the caller re-polls
            // after advancing past `next_ready_at`.
            let virtual_time = self.clock.is_virtual();
            match frame {
                Some(Frame::Data { payload, deliver_at, size }) => {
                    let now = self.clock.now();
                    if deliver_at <= now {
                        self.drain_in_flight(size);
                        return Ok(payload);
                    }
                    if virtual_time || deliver_at > deadline {
                        // Not deliverable before the caller's deadline: put it
                        // back and report a timeout.
                        *self.pending.lock() = Some(Frame::Data { payload, deliver_at, size });
                        if virtual_time || Instant::now() >= deadline {
                            return Err(RecvError::Timeout);
                        }
                        std::thread::sleep(
                            deadline
                                .saturating_duration_since(Instant::now())
                                .min(Duration::from_millis(1)),
                        );
                        continue;
                    }
                    std::thread::sleep(deliver_at - now);
                    self.drain_in_flight(size);
                    return Ok(payload);
                }
                Some(Frame::Close { deliver_at }) => {
                    let now = self.clock.now();
                    if virtual_time && deliver_at > now {
                        // Still in flight on the virtual time line: buffer it
                        // and let the scheduler advance the clock.
                        *self.pending.lock() = Some(Frame::Close { deliver_at });
                        return Err(RecvError::Timeout);
                    }
                    if deliver_at > deadline {
                        // The close notification is still in flight: report a
                        // timeout instead of sleeping past the caller's
                        // deadline (a `try_recv` must stay non-blocking) and
                        // keep the frame buffered so it is delivered — not
                        // consumed early — once its latency has elapsed. FIFO
                        // order means nothing can arrive before it, so one
                        // sleep covers the whole remaining window.
                        *self.pending.lock() = Some(Frame::Close { deliver_at });
                        if now < deadline {
                            std::thread::sleep(deadline - now);
                        }
                        return Err(RecvError::Timeout);
                    }
                    if deliver_at > now {
                        std::thread::sleep(deliver_at - now);
                    }
                    // Keep answering Closed on subsequent calls.
                    self.my_state().lock().peer_done = true;
                    return Err(RecvError::Closed);
                }
                None => {
                    if self.my_state().lock().peer_done {
                        return Err(RecvError::Closed);
                    }
                    // Crash detection: the peer stops sending heartbeats when
                    // it crashes; the detector fires after the failure timeout.
                    let peer = self.peer_state().lock();
                    let peer_crashed_at = peer.crashed_at;
                    let peer_dropped = peer.dropped && !peer.closed;
                    drop(peer);
                    if let Some(crashed_at) = peer_crashed_at {
                        if self.detector.suspects_at(crashed_at, self.clock.now()) {
                            return Err(RecvError::PeerFailed);
                        }
                    } else if peer_dropped {
                        // The peer endpoint was dropped without closing: once
                        // the queue is drained this is indistinguishable from
                        // a crash, and the drop already woke us.
                        return Err(RecvError::PeerFailed);
                    }
                    if virtual_time || Instant::now() >= deadline {
                        return Err(RecvError::Timeout);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Closes this endpoint's sending direction cleanly (half-close): the
    /// peer observes [`RecvError::Closed`] after draining the messages
    /// already in flight, but may still send its remaining results back.
    pub fn close(&self) {
        let mut mine = self.my_state().lock();
        if mine.closed || mine.crashed_at.is_some() {
            return;
        }
        mine.closed = true;
        let deliver_at = (self.clock.now() + self.config.latency).max(mine.next_delivery);
        drop(mine);
        let _ = self.outgoing.send(Frame::Close { deliver_at });
        self.wake_peer();
    }

    /// Crashes this endpoint abruptly (crash-stop): nothing more is sent, not
    /// even a close notification; the peer only finds out after the heartbeat
    /// failure timeout.
    pub fn crash(&self) {
        self.my_state().lock().crashed_at = Some(self.clock.now());
        // The peer's poller re-checks now and schedules a re-poll for the
        // moment the failure detector starts suspecting (next_ready_at).
        self.wake_peer();
    }

    /// Pauses the link in **both** directions until `until`: a deterministic
    /// transient disconnect (Wi-Fi blip, route flap). Frames already in
    /// flight keep their delivery instants (they passed the outage point
    /// before the link dropped); every frame sent from now on is delivered
    /// no earlier than `until`. Nothing is lost, reordered or mutated, so a
    /// paused run differs from a fault-free one only in delivery timing.
    /// Because delivery times ride on `next_delivery` (which is monotonic),
    /// pausing composes with latency, jitter and bandwidth modelling, and —
    /// unlike [`Endpoint::crash`] — never trips the failure detector: the
    /// sim's grace-window twin of a volunteer that reconnects in time.
    pub fn pause_link_until(&self, until: Instant) {
        for side in [&self.shared.a, &self.shared.b] {
            let mut state = side.lock();
            state.next_delivery = state.next_delivery.max(until);
        }
        // Any frame already buffered on either side now matures later; the
        // already-sent announcement wakes are enough (pollers re-check
        // `next_ready_at`), but nudge the peer so a parked reactor re-arms
        // its timer against the new maturity.
        self.wake_peer();
    }

    /// Returns `true` while the peer is neither closed nor suspected crashed.
    pub fn is_peer_alive(&self) -> bool {
        let peer = self.peer_state().lock();
        if peer.closed {
            return false;
        }
        match peer.crashed_at {
            Some(crashed_at) => !self.detector.suspects_at(crashed_at, self.clock.now()),
            None => true,
        }
    }

    /// Number of messages sent from this endpoint so far.
    pub fn messages_sent(&self) -> u64 {
        self.my_state().lock().messages_sent
    }

    /// Number of payload bytes sent from this endpoint so far.
    pub fn bytes_sent(&self) -> u64 {
        self.my_state().lock().bytes_sent
    }

    /// Number of task/result records sent from this endpoint so far. With
    /// batching enabled this grows faster than [`Endpoint::messages_sent`]:
    /// the ratio is the average batch size actually achieved on the wire.
    pub fn records_sent(&self) -> u64 {
        self.my_state().lock().records_sent
    }

    /// Transmissions of this side's frames lost on the wire and re-sent by
    /// the modelled reliable transport. Zero unless [`ChannelConfig::loss`]
    /// is non-zero.
    pub fn frames_retransmitted(&self) -> u64 {
        self.my_state().lock().frames_retransmitted
    }

    /// Total lost-and-re-sent transmissions on this link, both directions.
    /// Either endpoint of the pair reports the same number.
    pub fn link_retransmits(&self) -> u64 {
        self.shared.a.lock().frames_retransmitted + self.shared.b.lock().frames_retransmitted
    }

    /// Converts the endpoint into a pull-stream duplex: the source yields
    /// received messages and the sink sends the messages of the source it
    /// drains. This is the shape expected by the Pando master pipeline
    /// (paper Figure 7).
    pub fn into_duplex(self) -> Duplex<T, T> {
        let endpoint = Arc::new(self);
        Duplex {
            source: Box::new(EndpointSource { endpoint: endpoint.clone() }),
            sink: Box::new(EndpointSink { endpoint }),
        }
    }
}

impl<T> Drop for Endpoint<T> {
    fn drop(&mut self) {
        // Mark the side as gone *before* waking the peer, so a reactor thread
        // polling concurrently either still drains the queued frames or
        // observes the drop — never sleeps forever on a vanished peer.
        let (mine, peer) = if self.is_a {
            (&self.shared.a, &self.shared.b)
        } else {
            (&self.shared.b, &self.shared.a)
        };
        mine.lock().dropped = true;
        let waker = peer.lock().waker.clone();
        if let Some(waker) = waker {
            waker();
        }
    }
}

struct EndpointSource<T> {
    endpoint: Arc<Endpoint<T>>,
}

impl<T: Send + 'static> Source<T> for EndpointSource<T> {
    fn pull(&mut self, request: Request) -> Answer<T> {
        if request.is_termination() {
            self.endpoint.close();
            return Answer::Done;
        }
        match self.endpoint.recv() {
            Ok(value) => Answer::Value(value),
            Err(RecvError::Closed) => Answer::Done,
            Err(RecvError::PeerFailed) => {
                Answer::Err(StreamError::transport("peer failed (heartbeat timeout)"))
            }
            Err(RecvError::Timeout) | Err(RecvError::Empty) => {
                Answer::Err(StreamError::transport("unexpected receive state"))
            }
        }
    }
}

struct EndpointSink<T> {
    endpoint: Arc<Endpoint<T>>,
}

impl<T: Send + 'static> Sink<T> for EndpointSink<T> {
    fn drain(&mut self, mut source: BoxSource<T>) -> Result<(), StreamError> {
        loop {
            match source.pull(Request::Ask) {
                Answer::Value(value) => match self.endpoint.send(value) {
                    Ok(()) => {}
                    Err(SendError::Closed) => {
                        let _ = source.pull(Request::Abort);
                        return Ok(());
                    }
                    Err(SendError::PeerFailed) => {
                        let err = StreamError::transport("peer failed while sending");
                        let _ = source.pull(Request::Fail(err.clone()));
                        return Err(err);
                    }
                    Err(SendError::WouldBlock) => {
                        // `send` models a zero-size frame and the bounded
                        // admission always passes those through.
                        unreachable!("zero-size sends are never bounded")
                    }
                },
                Answer::Done => {
                    self.endpoint.close();
                    return Ok(());
                }
                Answer::Err(err) => {
                    self.endpoint.close();
                    return Err(err);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_delivered_in_order() {
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        for i in 0..100 {
            a.send(i).unwrap();
        }
        let received: Vec<u32> = (0..100).map(|_| b.recv().unwrap()).collect();
        assert_eq!(received, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn both_directions_work() {
        let (a, b) = pair::<&'static str>(ChannelConfig::instant());
        a.send("ping").unwrap();
        assert_eq!(b.recv().unwrap(), "ping");
        b.send("pong").unwrap();
        assert_eq!(a.recv().unwrap(), "pong");
    }

    #[test]
    fn latency_delays_delivery() {
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(30);
        let (a, b) = pair::<u8>(config);
        let start = Instant::now();
        a.send(1).unwrap();
        assert_eq!(b.recv().unwrap(), 1);
        assert!(start.elapsed() >= Duration::from_millis(25), "latency must be observed");
    }

    #[test]
    fn jitter_preserves_fifo_order() {
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(1);
        config.jitter = Duration::from_millis(5);
        config.seed = 42;
        let (a, b) = pair::<u32>(config);
        for i in 0..20 {
            a.send(i).unwrap();
        }
        let received: Vec<u32> = (0..20).map(|_| b.recv().unwrap()).collect();
        assert_eq!(received, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn bandwidth_adds_transmission_delay() {
        let mut config = ChannelConfig::instant();
        config.bandwidth_bytes_per_sec = Some(1_000_000); // 1 MB/s
        let (a, b) = pair::<Vec<u8>>(config.clone());
        assert_eq!(config.transmission_delay(100_000), Duration::from_millis(100));
        let start = Instant::now();
        a.send_with_size(vec![0u8; 100_000], 100_000).unwrap();
        b.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn clean_close_is_observed_after_in_flight_messages() {
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        a.send(1).unwrap();
        a.send(2).unwrap();
        a.close();
        assert_eq!(b.recv().unwrap(), 1);
        assert_eq!(b.recv().unwrap(), 2);
        assert_eq!(b.recv().unwrap_err(), RecvError::Closed);
        // The close is a half-close: b can still send results back, but the
        // side that closed may not send any more.
        b.send(3).unwrap();
        assert_eq!(a.recv().unwrap(), 3);
        assert_eq!(a.send(4).unwrap_err(), SendError::Closed);
    }

    #[test]
    fn crash_is_detected_after_failure_timeout() {
        let mut config = ChannelConfig::instant();
        config.failure_timeout = Duration::from_millis(50);
        let (a, b) = pair::<u32>(config);
        a.send(7).unwrap();
        a.crash();
        // The in-flight message is still delivered (it was already sent).
        assert_eq!(b.recv().unwrap(), 7);
        let start = Instant::now();
        assert_eq!(b.recv().unwrap_err(), RecvError::PeerFailed);
        assert!(start.elapsed() >= Duration::from_millis(40), "failure needs the timeout");
        assert!(!b.is_peer_alive());
    }

    #[test]
    fn try_recv_and_timeout() {
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert_eq!(b.recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::Timeout);
        a.send(5).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(100)).unwrap(), 5);
    }

    #[test]
    fn counters_track_traffic() {
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        a.send_with_size(1, 10).unwrap();
        a.send_with_size(2, 20).unwrap();
        assert_eq!(a.messages_sent(), 2);
        assert_eq!(a.bytes_sent(), 30);
        assert_eq!(a.records_sent(), 2);
        assert_eq!(b.messages_sent(), 0);
        let _ = b;
    }

    #[test]
    fn batched_sends_count_records_per_message() {
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        // One wire message carrying an 8-record batch.
        a.send_records_with_size(1, 96, 8).unwrap();
        a.send_records_with_size(2, 40, 3).unwrap();
        assert_eq!(a.messages_sent(), 2);
        assert_eq!(a.records_sent(), 11);
        assert_eq!(a.bytes_sent(), 136);
        assert_eq!(b.recv().unwrap(), 1);
    }

    #[test]
    fn batch_pays_latency_once_not_per_record() {
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(20);
        let (a, b) = pair::<u8>(config);
        let start = Instant::now();
        a.send_records_with_size(7, 0, 16).unwrap();
        assert_eq!(b.recv().unwrap(), 7);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(15));
        assert!(
            elapsed < Duration::from_millis(150),
            "a 16-record batch must not pay 16 latencies ({elapsed:?})"
        );
    }

    #[test]
    fn try_recv_is_nonblocking_while_a_frame_is_in_flight() {
        // Regression: a frame whose simulated delay has not elapsed must make
        // try_recv report Empty immediately — not sleep, not time out through
        // the failure-timeout path, not get consumed early.
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(40);
        let (a, b) = pair::<u32>(config);
        a.send(9).unwrap();
        let start = Instant::now();
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert!(start.elapsed() < Duration::from_millis(20), "try_recv must not block");
        // The buffered frame advertises its maturity time.
        let ready_at = b.next_ready_at().expect("an in-flight frame is buffered");
        assert!(ready_at > start, "delivery lies in the future");
        std::thread::sleep(Duration::from_millis(45));
        assert_eq!(b.try_recv().unwrap(), 9);
    }

    #[test]
    fn try_recv_is_nonblocking_while_a_close_is_in_flight() {
        // Regression: an in-flight Close frame used to make try_recv sleep
        // for the full latency *and* consume the close before its delivery
        // time.
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(40);
        let (a, b) = pair::<u32>(config);
        a.send(1).unwrap();
        a.close();
        let start = Instant::now();
        // Both the data frame and the close are still travelling.
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert!(start.elapsed() < Duration::from_millis(20), "try_recv must not block");
        std::thread::sleep(Duration::from_millis(45));
        assert_eq!(b.try_recv().unwrap(), 1);
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn waker_fires_on_send_close_and_crash() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        let wakeups = Arc::new(AtomicUsize::new(0));
        let counter = wakeups.clone();
        b.set_waker(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(1).unwrap();
        assert_eq!(wakeups.load(Ordering::SeqCst), 1);
        a.send(2).unwrap();
        assert_eq!(wakeups.load(Ordering::SeqCst), 2);
        a.close();
        assert_eq!(wakeups.load(Ordering::SeqCst), 3);
        a.crash();
        assert_eq!(wakeups.load(Ordering::SeqCst), 4);
        b.clear_waker();
        let _ = b.recv();
    }

    #[test]
    fn waker_fires_when_the_peer_is_dropped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (a, b) = pair::<u32>(ChannelConfig::instant());
        let wakeups = Arc::new(AtomicUsize::new(0));
        let counter = wakeups.clone();
        b.set_waker(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        drop(a);
        assert_eq!(wakeups.load(Ordering::SeqCst), 1);
        // A dropped peer without a clean close reads as a failure.
        assert_eq!(b.try_recv().unwrap_err(), RecvError::PeerFailed);
    }

    #[test]
    fn crash_suspicion_is_advertised_through_next_ready_at() {
        let mut config = ChannelConfig::instant();
        config.failure_timeout = Duration::from_millis(50);
        let (a, b) = pair::<u32>(config);
        assert!(b.next_ready_at().is_none(), "nothing buffered, nothing suspected");
        a.crash();
        let ready_at = b.next_ready_at().expect("suspicion maturity is scheduled");
        assert!(ready_at > Instant::now(), "the detector has not fired yet");
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(b.try_recv().unwrap_err(), RecvError::PeerFailed);
    }

    #[test]
    fn is_peer_alive_reflects_clean_close() {
        let (a, b) = pair::<u8>(ChannelConfig::instant());
        assert!(a.is_peer_alive());
        b.close();
        assert!(!a.is_peer_alive());
    }

    #[test]
    fn duplex_adapter_round_trip() {
        use pando_pull_stream::source::{count, SourceExt};

        let (master, worker) = pair::<u64>(ChannelConfig::instant());
        // Worker: echoes doubled values back, then closes.
        let worker_thread = std::thread::spawn(move || loop {
            match worker.recv() {
                Ok(v) => worker.send(v * 2).unwrap(),
                Err(RecvError::Closed) => {
                    worker.close();
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        });
        let Duplex { source, mut sink } = master.into_duplex();
        let results = std::thread::spawn(move || pando_pull_stream::sink::collect(source));
        sink.drain(count(5).boxed()).unwrap();
        let collected = results.join().unwrap().unwrap();
        worker_thread.join().unwrap();
        assert_eq!(collected, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn duplex_adapter_reports_crash_as_transport_error() {
        let (master, worker) = pair::<u64>(ChannelConfig {
            failure_timeout: Duration::from_millis(30),
            ..ChannelConfig::instant()
        });
        worker.crash();
        let Duplex { mut source, sink: _sink } = master.into_duplex();
        match source.pull(Request::Ask) {
            Answer::Err(err) => assert!(err.is_transport()),
            other => panic!("expected transport error, got {:?}", other.is_done()),
        }
    }

    #[test]
    fn virtual_clock_channel_never_sleeps_and_delivers_on_advance() {
        use crate::sim::Clock;
        let clock = Clock::virtual_clock();
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(10);
        config.failure_timeout = Duration::from_millis(50);
        let (a, b) = pair_with_clock::<u32>(config, clock.clone());
        let wall_start = Instant::now();
        a.send(1).unwrap();
        // The frame is 10 virtual ms away: polls report Empty without
        // blocking, and a blocking-shaped recv_timeout degrades to an
        // immediate Timeout (virtual time cannot pass inside it).
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap_err(), RecvError::Timeout);
        let ready_at = b.next_ready_at().expect("in-flight frame advertises maturity");
        clock.advance_to(ready_at);
        assert_eq!(b.try_recv().unwrap(), 1);
        // Crash suspicion matures on the virtual time line, not wall time.
        a.crash();
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        let suspect_at = b.next_ready_at().expect("suspicion maturity is scheduled");
        clock.advance_to(suspect_at);
        assert_eq!(b.try_recv().unwrap_err(), RecvError::PeerFailed);
        assert!(
            wall_start.elapsed() < Duration::from_secs(1),
            "60 virtual ms must not cost real sleeps"
        );
    }

    #[test]
    #[should_panic(expected = "virtual-clock endpoint")]
    fn blocking_recv_on_a_virtual_clock_panics() {
        use crate::sim::Clock;
        let (_a, b) = pair_with_clock::<u32>(ChannelConfig::instant(), Clock::virtual_clock());
        let _ = b.recv();
    }

    #[test]
    fn virtual_clock_close_is_delivered_on_advance() {
        use crate::sim::Clock;
        let clock = Clock::virtual_clock();
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(5);
        let (a, b) = pair_with_clock::<u32>(config, clock.clone());
        a.send(7).unwrap();
        a.close();
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        clock.advance_to(clock.now() + Duration::from_millis(5));
        assert_eq!(b.try_recv().unwrap(), 7);
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn profiles_have_increasing_latency() {
        assert!(ChannelConfig::lan().latency < ChannelConfig::vpn().latency);
        assert!(ChannelConfig::vpn().latency < ChannelConfig::wan().latency);
        assert_eq!(ChannelConfig::wan().kind, ChannelKind::WebRtc);
        assert_eq!(ChannelKind::WebSocket.to_string(), "websocket");
        assert_eq!(ChannelKind::WebRtc.to_string(), "webrtc");
    }

    #[test]
    fn bounded_send_would_blocks_and_wakes_on_drain() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut config = ChannelConfig::instant();
        config.send_buffer_max = Some(100);
        let (a, b) = pair::<u32>(config);
        a.send_with_size(1, 80).unwrap();
        // The next sized frame would push past the bound: rejected, nothing
        // sent, channel still healthy.
        assert_eq!(a.send_with_size(2, 40).unwrap_err(), SendError::WouldBlock);
        // Zero-size control frames (heartbeats) always pass.
        a.send(3).unwrap();
        let woke = Arc::new(AtomicUsize::new(0));
        let counter = woke.clone();
        a.set_waker(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        // Draining the 80-byte frame frees the buffer and fires the parked
        // sender's waker exactly once.
        assert_eq!(b.recv().unwrap(), 1);
        assert_eq!(woke.load(Ordering::SeqCst), 1);
        a.send_with_size(4, 40).unwrap();
        assert_eq!(b.recv().unwrap(), 3);
        assert_eq!(b.recv().unwrap(), 4);
        // No further drain-wakes without another WouldBlock.
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pause_link_delays_delivery_without_tripping_the_detector() {
        use crate::sim::Clock;
        let clock = Clock::virtual_clock();
        let mut config = ChannelConfig::instant();
        config.latency = Duration::from_millis(1);
        config.failure_timeout = Duration::from_millis(25);
        let (a, b) = pair_with_clock::<u32>(config, clock.clone());
        // The link flaps for far longer than the failure timeout.
        let back_up = clock.now() + Duration::from_millis(200);
        a.pause_link_until(back_up);
        b.pause_link_until(back_up); // idempotent: both handles may script it
        a.send(1).unwrap();
        a.send(2).unwrap();
        clock.advance_to(clock.now() + Duration::from_millis(150));
        // Mid-outage: nothing deliverable, but the peer is NOT suspected —
        // a pause is a flap, not a crash.
        assert_eq!(b.try_recv().unwrap_err(), RecvError::Empty);
        assert!(b.is_peer_alive());
        let ready_at = b.next_ready_at().expect("stalled frame advertises maturity");
        assert!(ready_at >= back_up);
        clock.advance_to(ready_at);
        assert_eq!(b.try_recv().unwrap(), 1);
        // FIFO survives the pause, and the reverse direction was paused too.
        b.send(10).unwrap();
        assert!(a.try_recv().is_ok() || a.next_ready_at().is_some());
        clock.advance_to(clock.now() + Duration::from_millis(5));
        assert_eq!(b.try_recv().unwrap(), 2);
    }

    #[test]
    fn loss_delays_frames_deterministically_without_dropping_them() {
        use crate::sim::Clock;
        let run = |seed: u64| {
            let clock = Clock::virtual_clock();
            let mut config = ChannelConfig::instant().with_loss(0.4).with_seed(seed);
            config.latency = Duration::from_millis(1);
            config.retransmit = Duration::from_millis(30);
            let (a, b) = pair_with_clock::<u32>(config, clock.clone());
            // Virtual clocks anchor at their creation instant, so record
            // elapsed-since-start rather than absolute instants.
            let t0 = clock.now();
            let mut deliveries = Vec::new();
            for i in 0..50 {
                a.send_with_size(i, 8).unwrap();
            }
            while deliveries.len() < 50 {
                match b.try_recv() {
                    Ok(v) => deliveries.push((v, clock.now().saturating_duration_since(t0))),
                    Err(RecvError::Empty) => {
                        let at = b.next_ready_at().expect("frames are in flight");
                        clock.advance_to(at);
                    }
                    Err(other) => panic!("unexpected {other:?}"),
                }
            }
            (deliveries, a.frames_retransmitted(), b.link_retransmits())
        };
        let (first, sent_retx, link_retx) = run(7);
        // Every frame arrives exactly once, in order: loss is delay, not drop.
        assert_eq!(first.iter().map(|(v, _)| *v).collect::<Vec<_>>(), (0..50).collect::<Vec<_>>());
        assert!(sent_retx > 0, "at 40% loss, 50 frames must lose a few transmissions");
        assert_eq!(link_retx, sent_retx, "only side a sent anything");
        // Same seed ⇒ byte-identical delivery schedule.
        let (second, retx2, _) = run(7);
        assert_eq!(first, second);
        assert_eq!(sent_retx, retx2);
        // A different seed loses different transmissions.
        let (_, retx3, _) = run(8);
        assert_ne!(sent_retx, retx3);
    }

    #[test]
    fn zero_loss_does_not_perturb_the_jitter_sequence() {
        // loss = 0.0 must not draw from the RNG: the delivery schedule of a
        // jittery channel is byte-identical whether the loss knob exists on
        // the config or not (all pre-existing golden traces rely on this).
        use crate::sim::Clock;
        let deliveries = |config: ChannelConfig| {
            let clock = Clock::virtual_clock();
            let (a, b) = pair_with_clock::<u32>(config, clock.clone());
            let t0 = clock.now();
            let mut out = Vec::new();
            for i in 0..20 {
                a.send_with_size(i, 4).unwrap();
            }
            while out.len() < 20 {
                match b.try_recv() {
                    Ok(_) => out.push(clock.now().saturating_duration_since(t0)),
                    Err(RecvError::Empty) => clock.advance_to(b.next_ready_at().unwrap()),
                    Err(other) => panic!("unexpected {other:?}"),
                }
            }
            out
        };
        let mut jittery = ChannelConfig::instant().with_seed(3);
        jittery.jitter = Duration::from_millis(5);
        let baseline = deliveries(jittery.clone());
        jittery.retransmit = Duration::from_secs(9); // must never be consulted
        assert_eq!(deliveries(jittery), baseline);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn certain_loss_is_rejected() {
        let _ = ChannelConfig::instant().with_loss(1.0);
    }

    #[test]
    fn oversized_frame_is_admitted_alone() {
        let mut config = ChannelConfig::instant();
        config.send_buffer_max = Some(10);
        let (a, b) = pair::<u32>(config);
        // A single frame larger than the whole bound must go through when
        // the buffer is empty — rejecting it would deadlock the sender.
        a.send_with_size(1, 1000).unwrap();
        assert_eq!(a.send_with_size(2, 1).unwrap_err(), SendError::WouldBlock);
        assert_eq!(b.recv().unwrap(), 1);
        a.send_with_size(2, 1).unwrap();
        assert_eq!(b.recv().unwrap(), 2);
    }
}
