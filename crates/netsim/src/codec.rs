//! Length-delimited frame codec with multi-record (batched) frames.
//!
//! Pando transmits base64-encoded strings over WebSocket / WebRTC messages.
//! This module provides the binary wire framing for the reproduction: a
//! frame is a tag byte, a 4-byte big-endian length and that many payload
//! bytes. On top of single frames it adds *multi-record* frames — one frame
//! carrying many `(seq, payload)` records — which is what lets the master
//! coalesce a batch of tasks (and a worker a batch of results) into a single
//! channel round-trip. Decoding a record frame is zero-copy: every record
//! payload is a [`Bytes`] slice into the frame's single allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pando_pull_stream::StreamError;

/// Maximum accepted frame length (16 MiB), mirroring the WebRTC message-size
/// limitation that forced the paper's raytracing scenes to be shrunk (§5.1).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Bytes of framing overhead per frame: tag byte plus 4-byte length.
pub const FRAME_HEADER_LEN: usize = 5;

/// Bytes of overhead per record inside a record frame: 8-byte sequence
/// number plus 4-byte payload length.
pub const RECORD_HEADER_LEN: usize = 12;

/// Encodes one frame: tag byte, 4-byte big-endian length, payload.
///
/// # Errors
///
/// Returns a protocol error if the payload exceeds [`MAX_FRAME_LEN`]; an
/// unchecked `as u32` cast here would silently truncate the length field and
/// desynchronise the stream.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Result<Bytes, StreamError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(StreamError::protocol(format!(
            "frame payload of {} bytes exceeds the {MAX_FRAME_LEN} byte limit",
            payload.len()
        )));
    }
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.put_u8(tag);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    Ok(buf.freeze())
}

/// A frame decoded by [`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message-kind tag.
    pub tag: u8,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Decodes one frame from the front of `buf`, consuming it.
///
/// Returns `Ok(None)` if the buffer does not yet contain a complete frame.
///
/// # Errors
///
/// Returns an error if the advertised length exceeds [`MAX_FRAME_LEN`].
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Frame>, StreamError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let tag = buf[0];
    let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(StreamError::protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    if buf.len() < FRAME_HEADER_LEN + len {
        return Ok(None);
    }
    buf.advance(FRAME_HEADER_LEN);
    let payload = buf.split_to(len).freeze();
    Ok(Some(Frame { tag, payload }))
}

/// One `(sequence number, payload)` record of a batched frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Position of the value in the input stream.
    pub seq: u64,
    /// The value's binary payload.
    pub payload: Bytes,
}

impl Record {
    /// Creates a record.
    pub fn new(seq: u64, payload: Bytes) -> Self {
        Self { seq, payload }
    }
}

/// Number of body bytes a record batch occupies inside a frame: a 4-byte
/// record count plus, per record, [`RECORD_HEADER_LEN`] and the payload.
pub fn record_body_len(records: &[Record]) -> usize {
    4 + records.iter().map(|r| RECORD_HEADER_LEN + r.payload.len()).sum::<usize>()
}

/// Encodes many records into one frame body: a 4-byte big-endian record
/// count, then per record an 8-byte big-endian sequence number, a 4-byte
/// big-endian payload length and the payload bytes.
///
/// # Errors
///
/// Returns a protocol error if the body would exceed [`MAX_FRAME_LEN`] or a
/// single record payload exceeds it (its length field would truncate).
pub fn encode_record_body(records: &[Record]) -> Result<Bytes, StreamError> {
    let body_len = record_body_len(records);
    if body_len > MAX_FRAME_LEN {
        return Err(StreamError::protocol(format!(
            "record batch of {body_len} bytes exceeds the {MAX_FRAME_LEN} byte frame limit"
        )));
    }
    let mut buf = BytesMut::with_capacity(body_len);
    buf.put_u32(records.len() as u32);
    for record in records {
        buf.put_u64(record.seq);
        buf.put_u32(record.payload.len() as u32);
        buf.put_slice(&record.payload);
    }
    Ok(buf.freeze())
}

/// Decodes a record-batch frame body produced by [`encode_record_body`].
///
/// Zero-copy: each returned record's payload is a slice sharing `body`'s
/// allocation.
///
/// # Errors
///
/// Returns a protocol error on truncated bodies, trailing garbage or record
/// counts that do not match the body.
pub fn decode_record_body(body: &Bytes) -> Result<Vec<Record>, StreamError> {
    if body.len() < 4 {
        return Err(StreamError::protocol("record batch body shorter than its count field"));
    }
    let count = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
    let mut records = Vec::with_capacity(count.min(1024));
    let mut offset = 4usize;
    for _ in 0..count {
        if body.len() < offset + RECORD_HEADER_LEN {
            return Err(StreamError::protocol("record batch truncated in a record header"));
        }
        let seq =
            u64::from_be_bytes(body[offset..offset + 8].try_into().expect("checked length above"));
        let len = u32::from_be_bytes(
            body[offset + 8..offset + 12].try_into().expect("checked length above"),
        ) as usize;
        offset += RECORD_HEADER_LEN;
        if body.len() < offset + len {
            return Err(StreamError::protocol("record batch truncated in a record payload"));
        }
        records.push(Record { seq, payload: body.slice(offset..offset + len) });
        offset += len;
    }
    if offset != body.len() {
        return Err(StreamError::protocol(format!(
            "record batch has {} trailing bytes",
            body.len() - offset
        )));
    }
    Ok(records)
}

/// Encodes a string payload the way Pando does for binary results: a base64
/// encoding of the raw bytes, which inflates the size by 4/3 (paper §2.1.1).
/// Kept as the reference point the binary codec is measured against.
pub fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

/// Decodes a base64 string produced by [`base64_encode`].
///
/// # Errors
///
/// Returns an error on characters outside the base64 alphabet or on a length
/// that is not a multiple of four.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, StreamError> {
    fn value(c: u8) -> Result<u32, StreamError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
            b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(StreamError::protocol(format!("invalid base64 character {:?}", c as char))),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(StreamError::protocol("base64 length must be a multiple of 4"));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        let mut triple = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { value(c)? };
            triple |= v << (18 - 6 * i);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(7, b"hello world").unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.tag, 7);
        assert_eq!(&decoded.payload[..], b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_wait_for_more_data() {
        let frame = encode_frame(1, &[0u8; 100]).unwrap();
        let mut buf = BytesMut::from(&frame[..50]);
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
        buf.extend_from_slice(&frame[50..]);
        assert!(decode_frame(&mut buf).unwrap().is_some());
    }

    #[test]
    fn several_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(1, b"a").unwrap());
        buf.extend_from_slice(&encode_frame(2, b"bb").unwrap());
        let first = decode_frame(&mut buf).unwrap().unwrap();
        let second = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!((first.tag, &first.payload[..]), (1, &b"a"[..]));
        assert_eq!((second.tag, &second.payload[..]), (2, &b"bb"[..]));
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u32(u32::MAX);
        buf.extend_from_slice(&[0u8; 16]);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn oversized_payload_is_rejected_on_encode() {
        // Before the fix, a payload longer than u32::MAX (or MAX_FRAME_LEN)
        // silently truncated the length field; now encoding is fallible.
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let err = encode_frame(1, &payload).unwrap_err();
        assert!(err.is_protocol());
        assert!(err.message().contains("exceeds"));
    }

    #[test]
    fn empty_payload_is_fine() {
        let frame = encode_frame(9, b"").unwrap();
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.payload.len(), 0);
    }

    #[test]
    fn record_batch_round_trip_is_zero_copy() {
        let records = vec![
            Record::new(3, Bytes::from(b"alpha".to_vec())),
            Record::new(9, Bytes::new()),
            Record::new(u64::MAX, Bytes::from(vec![0u8, b'\n', 255, 0])),
        ];
        let body = encode_record_body(&records).unwrap();
        assert_eq!(body.len(), record_body_len(&records));
        let decoded = decode_record_body(&body).unwrap();
        assert_eq!(decoded, records);
        for record in &decoded {
            assert!(
                record.payload.shares_allocation_with(&body),
                "decoded payloads must alias the frame buffer"
            );
        }
    }

    #[test]
    fn empty_record_batch_round_trips() {
        let body = encode_record_body(&[]).unwrap();
        assert_eq!(decode_record_body(&body).unwrap(), Vec::<Record>::new());
    }

    #[test]
    fn corrupt_record_batches_are_rejected() {
        // Too short for the count field.
        assert!(decode_record_body(&Bytes::from(vec![0u8, 0])).is_err());
        // Count says one record but the body ends.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert!(decode_record_body(&buf.freeze()).is_err());
        // Record length field points past the end.
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        buf.put_u64(0);
        buf.put_u32(100);
        buf.put_slice(b"short");
        assert!(decode_record_body(&buf.freeze()).is_err());
        // Trailing garbage after the advertised records.
        let mut body =
            encode_record_body(&[Record::new(1, Bytes::from(b"x".to_vec()))]).unwrap().to_vec();
        body.push(0);
        assert!(decode_record_body(&Bytes::from(body)).is_err());
    }

    #[test]
    fn oversized_record_batch_is_rejected() {
        let records = vec![Record::new(0, Bytes::from(vec![0u8; MAX_FRAME_LEN - 8])); 2];
        assert!(encode_record_body(&records).is_err());
    }

    #[test]
    fn base64_round_trip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            let encoded = base64_encode(data);
            assert_eq!(base64_decode(&encoded).unwrap(), data, "round trip of {data:?}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"f"), "Zg==");
    }

    #[test]
    fn base64_inflates_by_four_thirds() {
        let data = vec![0u8; 168_000]; // a Landsat tile from the paper
        let encoded = base64_encode(&data);
        assert_eq!(encoded.len(), 224_000);
    }

    #[test]
    fn base64_rejects_invalid_input() {
        assert!(base64_decode("abc").is_err());
        assert!(base64_decode("ab!=").is_err());
    }
}
