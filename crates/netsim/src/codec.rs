//! Length-delimited frame codec.
//!
//! Pando transmits base64-encoded strings over WebSocket / WebRTC messages.
//! This module provides the equivalent wire framing for the reproduction: a
//! frame is a 4-byte big-endian length followed by that many payload bytes,
//! with a tag byte identifying the message kind. It is used by the core
//! protocol both to give messages a realistic size (so bandwidth modelling is
//! meaningful) and to exercise an actual encode/decode path.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pando_pull_stream::StreamError;

/// Maximum accepted frame length (16 MiB), mirroring the WebRTC message-size
/// limitation that forced the paper's raytracing scenes to be shrunk (§5.1).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes one frame: tag byte, 4-byte big-endian length, payload.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(5 + payload.len());
    buf.put_u8(tag);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    buf.freeze()
}

/// A frame decoded by [`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message-kind tag.
    pub tag: u8,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Decodes one frame from the front of `buf`, consuming it.
///
/// Returns `Ok(None)` if the buffer does not yet contain a complete frame.
///
/// # Errors
///
/// Returns an error if the advertised length exceeds [`MAX_FRAME_LEN`].
pub fn decode_frame(buf: &mut BytesMut) -> Result<Option<Frame>, StreamError> {
    if buf.len() < 5 {
        return Ok(None);
    }
    let tag = buf[0];
    let len = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(StreamError::protocol(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    if buf.len() < 5 + len {
        return Ok(None);
    }
    buf.advance(5);
    let payload = buf.split_to(len).freeze();
    Ok(Some(Frame { tag, payload }))
}

/// Encodes a string payload the way Pando does for binary results: a base64
/// encoding of the raw bytes, which inflates the size by 4/3 (paper §2.1.1).
pub fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

/// Decodes a base64 string produced by [`base64_encode`].
///
/// # Errors
///
/// Returns an error on characters outside the base64 alphabet or on a length
/// that is not a multiple of four.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, StreamError> {
    fn value(c: u8) -> Result<u32, StreamError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
            b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(StreamError::protocol(format!("invalid base64 character {:?}", c as char))),
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(StreamError::protocol("base64 length must be a multiple of 4"));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        let mut triple = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' { 0 } else { value(c)? };
            triple |= v << (18 - 6 * i);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(7, b"hello world");
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.tag, 7);
        assert_eq!(&decoded.payload[..], b"hello world");
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_wait_for_more_data() {
        let frame = encode_frame(1, &[0u8; 100]);
        let mut buf = BytesMut::from(&frame[..50]);
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
        buf.extend_from_slice(&frame[50..]);
        assert!(decode_frame(&mut buf).unwrap().is_some());
    }

    #[test]
    fn several_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_frame(1, b"a"));
        buf.extend_from_slice(&encode_frame(2, b"bb"));
        let first = decode_frame(&mut buf).unwrap().unwrap();
        let second = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!((first.tag, &first.payload[..]), (1, &b"a"[..]));
        assert_eq!((second.tag, &second.payload[..]), (2, &b"bb"[..]));
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u32(u32::MAX);
        buf.extend_from_slice(&[0u8; 16]);
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn empty_payload_is_fine() {
        let frame = encode_frame(9, b"");
        let mut buf = BytesMut::from(&frame[..]);
        let decoded = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(decoded.payload.len(), 0);
    }

    #[test]
    fn base64_round_trip() {
        for data in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            let encoded = base64_encode(data);
            assert_eq!(base64_decode(&encoded).unwrap(), data, "round trip of {data:?}");
        }
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"f"), "Zg==");
    }

    #[test]
    fn base64_inflates_by_four_thirds() {
        let data = vec![0u8; 168_000]; // a Landsat tile from the paper
        let encoded = base64_encode(&data);
        assert_eq!(encoded.len(), 224_000);
    }

    #[test]
    fn base64_rejects_invalid_input() {
        assert!(base64_decode("abc").is_err());
        assert!(base64_decode("ab!=").is_err());
    }
}
