//! Stubborn processing with a failure-prone external data distribution
//! (paper §4.3 / Figure 12): results whose download fails are resubmitted
//! until they are confirmed.

use pando_pull_stream::source::from_iter;
use pando_pull_stream::stubborn::StubbornQueue;
use pando_pull_stream::{Answer, Request, Source};
use pando_workloads::imageproc::{box_blur, synthetic_tile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let tiles = 24u64;
    let (mut queue, handle) = StubbornQueue::new(from_iter(0..tiles), 5);
    let mut rng = StdRng::seed_from_u64(7);
    let mut blurred = 0u64;
    println!("Blurring {tiles} Landsat-like tiles; 30% of result downloads fail\n");
    while let Answer::Value(tracked) = queue.pull(Request::Ask) {
        let tile = synthetic_tile(tracked.value, 128, 128);
        let _processed = box_blur(&tile, 3);
        // The external data distribution (DAT / WebTorrent in the
        // paper) sometimes fails to deliver the result bytes.
        let download_ok = rng.gen_bool(0.7);
        if download_ok {
            handle.confirm(tracked.id).unwrap();
            blurred += 1;
        } else {
            let retried = handle.resubmit(tracked.id).unwrap();
            println!(
                "tile {:>2}: download failed on attempt {} ({})",
                tracked.value,
                tracked.attempt,
                if retried { "resubmitted" } else { "abandoned" }
            );
        }
    }
    let stats = handle.stats();
    println!("\nconfirmed {blurred}/{tiles} tiles");
    println!("resubmissions: {}, abandoned: {}", stats.resubmissions, stats.abandoned);
}
