//! The synchronous parallel search of paper §4.2 / Figure 11: mining a small
//! chain of blocks with several volunteer devices and the feedback-loop
//! monitor.

use bytes::Bytes;
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::monitor::MiningMonitor;
use pando_core::worker::WorkerBuilder;
use pando_workloads::app::AppKind;

fn main() {
    let blocks: Vec<String> = (1..=3).map(|i| format!("pando-block-{i}")).collect();
    let difficulty = 14;
    let pando = Pando::new(PandoConfig::local_test());
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let app = AppKind::CryptoMining.instantiate();
            WorkerBuilder::new()
                .name(format!("miner-{i}"))
                .spawn(pando.open_volunteer_channel(), move |input: &Bytes| app.process(input))
        })
        .collect();
    println!("Mining {} blocks at difficulty {difficulty} with 3 volunteers...\n", blocks.len());
    let monitor = MiningMonitor::new(blocks, difficulty, 2_000);
    let start = std::time::Instant::now();
    let solved = monitor.run(&pando);
    for block in &solved {
        println!(
            "{}: nonce {} found after {} dispatched ranges",
            block.block, block.nonce, block.attempts
        );
    }
    println!("\nSolved {} blocks in {:.2?}", solved.len(), start.elapsed());
    for worker in workers {
        let report = worker.join();
        println!("{}: processed {} ranges", report.name, report.processed);
    }
}
