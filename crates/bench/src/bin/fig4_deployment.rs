//! Replays the deployment example of paper Figure 4 against the real
//! master/worker implementation, with a real (small) raytracer as `f`.

use pando_core::deploy::{format_trace, run_figure4_scenario};
use pando_workloads::raytrace::Scene;

fn main() {
    let scene = Scene::default();
    let render = move |input: &str| -> Result<String, pando_pull_stream::StreamError> {
        // Inputs are x1, x2, x3: derive a camera angle from the index.
        let index: f64 = input.trim_start_matches('x').parse().unwrap_or(1.0);
        let pixels = scene.render(index * 0.8, 64, 48);
        Ok(format!("{input}:{} bytes", pixels.len()))
    };
    println!("Figure 4 deployment example (tablet joins, renders, crashes; phone takes over)\n");
    for line in format_trace(&run_figure4_scenario(render)) {
        println!("{line}");
    }
}
