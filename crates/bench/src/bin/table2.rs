//! Regenerates paper Table 2: average throughput per device for the six
//! CPU-bound applications on the LAN, VPN and WAN deployments.
//!
//! Usage: `table2 [lan|vpn|wan|all] [window-seconds]` (default: all, 300 s).

use pando_bench::render_scenario;
use pando_devices::profiles::Scenario;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let window = Duration::from_secs(seconds);
    let scenarios: Vec<Scenario> = match Scenario::from_name(which) {
        Some(s) => vec![s],
        None => Scenario::all().to_vec(),
    };
    println!("Table 2 — average throughput for CPU-bound streaming applications");
    println!("(simulated deployment calibrated from the published per-device rates)\n");
    for scenario in scenarios {
        println!("{}", render_scenario(scenario, window));
    }
}
