//! The §5.5 single-core comparisons between personal devices and servers:
//! "a single core from personal devices of 2016 sometimes provides higher
//! throughput than older servers" and "2-5 cores on recent personal devices
//! can outperform the fastest server core".

use pando_devices::profiles::Scenario;
use pando_devices::table2::{paper_reference, scenario_entries, PaperEntry};
use pando_workloads::AppKind;

fn per_core(entry: &PaperEntry, app: AppKind) -> Option<f64> {
    entry.throughput(app).map(|t| t / entry.cores as f64)
}

fn main() {
    let reference = paper_reference();
    let iphone = reference.iter().find(|e| e.device == "iPhone SE").unwrap();
    let mbpro = reference.iter().find(|e| e.device == "MBPro 2016").unwrap();
    let uvb = reference.iter().find(|e| e.device == "uvb.sophia").unwrap();
    let fastest_server = reference
        .iter()
        .filter(|e| e.scenario != Scenario::Lan)
        .max_by(|a, b| a.collatz.partial_cmp(&b.collatz).unwrap())
        .unwrap();

    println!("§5.5 claim checks (from the calibrated device profiles)\n");
    println!(
        "Collatz, single core: iPhone SE = {:.1}/s vs uvb.sophia (Grid5000) = {:.1}/s -> {}",
        iphone.collatz,
        uvb.collatz,
        if iphone.collatz > uvb.collatz { "personal device wins" } else { "server wins" }
    );
    let beaten_planetlab =
        scenario_entries(Scenario::Wan).iter().filter(|e| e.collatz < iphone.collatz).count();
    println!("Collatz: the iPhone SE outperforms {beaten_planetlab} of the 7 PlanetLab nodes");
    let mbpro_core = per_core(mbpro, AppKind::Collatz).unwrap();
    println!(
        "\nPer-core Collatz: MBPro 2016 = {:.1}/s, fastest server core ({}) = {:.1}/s",
        mbpro_core, fastest_server.device, fastest_server.collatz
    );
    let cores_needed = (fastest_server.collatz / mbpro_core).ceil() as u32;
    println!(
        "-> {cores_needed} MBPro cores (or {} iPhone cores) match the fastest server core, \
         i.e. 2-5 cores on recent personal devices replace a high-end server core",
        (fastest_server.collatz / iphone.collatz).ceil() as u32
    );
    let iphone_img = per_core(iphone, AppKind::ImageProcessing).unwrap();
    let mbpro_img = per_core(mbpro, AppKind::ImageProcessing).unwrap();
    println!("\nBrowser choice effect (paper §5.5: Safari vs Firefox on image processing):");
    println!(
        "iPhone SE single core = {:.2} images/s vs MBPro 2016 per core = {:.2} images/s -> {:.1}x",
        iphone_img,
        mbpro_img,
        iphone_img / mbpro_img
    );
}
