//! The §5.5 latency-hiding experiment: total throughput as a function of the
//! input batch size, for each deployment scenario.
//!
//! Usage: `batching_sweep [app] [window-seconds]` (default: raytrace, 120 s).

use pando_bench::batching_sweep;
use pando_devices::profiles::Scenario;
use pando_workloads::AppKind;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args.get(1).and_then(|name| AppKind::from_name(name)).unwrap_or(AppKind::Raytrace);
    let seconds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120);
    let window = Duration::from_secs(seconds);
    let batches = [1usize, 2, 3, 4, 6, 8];
    println!("Batching sweep for {app} (total units/s per batch size)\n");
    println!("{:<10} {:>12} {:>12} {:>12}", "batch", "LAN", "VPN", "WAN");
    let per_scenario: Vec<Vec<(usize, f64)>> =
        Scenario::all().iter().map(|s| batching_sweep(*s, app, &batches, window)).collect();
    for (i, batch) in batches.iter().enumerate() {
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2}",
            batch, per_scenario[0][i].1, per_scenario[1][i].1, per_scenario[2][i].1
        );
    }
    println!("\nThe paper used batch 2 on LAN/VPN and batch 4 on WAN: beyond those");
    println!("points the curves flatten, i.e. the network latency is fully hidden.");
}
