//! Benchmark harness regenerating the tables and figures of the paper's
//! evaluation (§5).
//!
//! The binaries in `src/bin` print the regenerated artefacts:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table2` | Table 2 (LAN / VPN / WAN throughput per device and per application) |
//! | `fig4_deployment` | Figure 4 deployment example (join, crash, take-over) |
//! | `batching_sweep` | §5.5 claim: batching hides the network latency |
//! | `device_vs_server` | §5.5 claims comparing personal devices with server cores |
//! | `fig11_mining` | Figure 11 synchronous parallel search (crypto mining) |
//! | `fig12_stubborn` | Figure 12 stubborn processing with failure-prone data distribution |
//!
//! The Criterion benches in `benches/` measure the substrate itself
//! (StreamLender, Limiter, workload kernels, simulator).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pando_core::sim::{simulate, SimDevice, SimParams, SimReport};
use pando_devices::profiles::{units_per_task, Scenario, ScenarioSetup};
use pando_devices::table2::paper_total;
use pando_workloads::AppKind;
use std::time::Duration;

/// The result of regenerating one (scenario, application) cell group of
/// Table 2: the simulated per-device throughput next to the published one.
#[derive(Debug, Clone)]
pub struct Table2Column {
    /// The scenario being regenerated.
    pub scenario: Scenario,
    /// The application of this column.
    pub app: AppKind,
    /// Rows: (device name, simulated units/s, simulated share %, paper units/s, paper share %).
    pub rows: Vec<Table2Row>,
    /// Simulated total throughput in table units per second.
    pub simulated_total: f64,
    /// Published total throughput in table units per second.
    pub paper_total: Option<f64>,
}

/// One device row of a regenerated Table 2 column.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Device name.
    pub device: String,
    /// Simulated throughput in table units per second.
    pub simulated: f64,
    /// Simulated share of the total, in percent.
    pub simulated_share: f64,
    /// Published throughput in table units per second.
    pub paper: f64,
    /// Published share of the total, in percent.
    pub paper_share: f64,
}

/// Builds the simulated devices of one (scenario, application) pair.
pub fn scenario_devices(setup: &ScenarioSetup, app: AppKind) -> Vec<SimDevice> {
    setup
        .devices
        .iter()
        .filter_map(|device| {
            device.service_time(app).map(|service| SimDevice::steady(device.name.clone(), service))
        })
        .collect()
}

/// Regenerates one column group of Table 2 by simulating `window` of the
/// deployment with the paper's batch size and the scenario's latency.
pub fn regenerate_column(scenario: Scenario, app: AppKind, window: Duration) -> Table2Column {
    let setup = ScenarioSetup::paper(scenario);
    let devices = scenario_devices(&setup, app);
    let params = SimParams {
        batch_size: setup.batch_size,
        latency: setup.channel.latency,
        duration: window,
    };
    let report = simulate(&devices, &params);
    column_from_report(scenario, app, &setup, &report)
}

fn column_from_report(
    scenario: Scenario,
    app: AppKind,
    setup: &ScenarioSetup,
    report: &SimReport,
) -> Table2Column {
    let units = units_per_task(app);
    let paper_rows: Vec<(String, f64)> =
        setup.devices.iter().filter_map(|d| d.rate(app).map(|r| (d.name.clone(), r))).collect();
    let paper_sum: f64 = paper_rows.iter().map(|(_, r)| r).sum();
    let simulated_total: f64 = report.devices.iter().map(|d| d.throughput * units).sum();
    let rows = report
        .devices
        .iter()
        .map(|device| {
            let simulated = device.throughput * units;
            let paper = paper_rows
                .iter()
                .find(|(name, _)| *name == device.name)
                .map(|(_, r)| *r)
                .unwrap_or(0.0);
            Table2Row {
                device: device.name.clone(),
                simulated,
                simulated_share: if simulated_total > 0.0 {
                    100.0 * simulated / simulated_total
                } else {
                    0.0
                },
                paper,
                paper_share: if paper_sum > 0.0 { 100.0 * paper / paper_sum } else { 0.0 },
            }
        })
        .collect();
    Table2Column { scenario, app, rows, simulated_total, paper_total: paper_total(scenario, app) }
}

/// Renders one regenerated scenario as the text table printed by the
/// `table2` binary.
pub fn render_scenario(scenario: Scenario, window: Duration) -> String {
    let mut out = String::new();
    let setup = ScenarioSetup::paper(scenario);
    out.push_str(&format!(
        "== {} (batch size {}, one-way latency {:?}, window {:?}) ==\n",
        scenario.title(),
        setup.batch_size,
        setup.channel.latency,
        window
    ));
    for app in AppKind::measured() {
        let column = regenerate_column(scenario, app, window);
        if column.rows.is_empty() {
            out.push_str(&format!(
                "\n  {:<22} (not measured in the paper for this scenario)\n",
                format!("{app}")
            ));
            continue;
        }
        let unit = app.instantiate().unit();
        out.push_str(&format!("\n  {:<22} [{unit}]\n", format!("{app}")));
        out.push_str(&format!(
            "  {:<30} {:>12} {:>7}   {:>12} {:>7}\n",
            "device", "simulated", "%", "paper", "%"
        ));
        for row in &column.rows {
            out.push_str(&format!(
                "  {:<30} {:>12.2} {:>6.1}%   {:>12.2} {:>6.1}%\n",
                row.device, row.simulated, row.simulated_share, row.paper, row.paper_share
            ));
        }
        out.push_str(&format!(
            "  {:<30} {:>12.2} {:>6}   {:>12.2}\n",
            "TOTAL",
            column.simulated_total,
            "",
            column.paper_total.unwrap_or(f64::NAN)
        ));
    }
    out
}

/// Sweeps the batch size for one scenario and application, returning
/// `(batch_size, total units/s)` pairs — the §5.5 latency-hiding experiment.
pub fn batching_sweep(
    scenario: Scenario,
    app: AppKind,
    batch_sizes: &[usize],
    window: Duration,
) -> Vec<(usize, f64)> {
    let setup = ScenarioSetup::paper(scenario);
    let devices = scenario_devices(&setup, app);
    batch_sizes
        .iter()
        .map(|&batch_size| {
            let params = SimParams { batch_size, latency: setup.channel.latency, duration: window };
            let report = simulate(&devices, &params);
            let units = units_per_task(app);
            (batch_size, report.devices.iter().map(|d| d.throughput * units).sum())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const WINDOW: Duration = Duration::from_secs(60);

    #[test]
    fn regenerated_totals_are_close_to_the_paper() {
        // The simulator is calibrated from the per-device rates, so with the
        // paper's batch sizes the totals must land close to the published
        // ones (the latency is hidden for these compute-bound applications).
        for scenario in Scenario::all() {
            for app in AppKind::measured() {
                let column = regenerate_column(scenario, app, WINDOW);
                let Some(paper) = column.paper_total else { continue };
                let error = (column.simulated_total - paper).abs() / paper;
                assert!(
                    error < 0.08,
                    "{scenario:?}/{app:?}: simulated {} vs paper {paper} ({}% off)",
                    column.simulated_total,
                    (error * 100.0).round()
                );
            }
        }
    }

    #[test]
    fn shares_track_the_paper_ordering() {
        let column = regenerate_column(Scenario::Lan, AppKind::Collatz, WINDOW);
        // The MacBook Pro dominates and the Novena contributes the least,
        // exactly as in the published share column.
        let share =
            |device: &str| column.rows.iter().find(|r| r.device == device).unwrap().simulated_share;
        assert!(share("MBPro 2016") > 40.0);
        assert!(share("Novena") < 10.0);
        assert!(share("MBPro 2016") > share("Asus Laptop"));
        assert!(share("iPhone SE") > share("MBAir 2011"));
    }

    #[test]
    fn wan_skips_image_processing() {
        let column = regenerate_column(Scenario::Wan, AppKind::ImageProcessing, WINDOW);
        assert!(column.rows.is_empty());
        assert_eq!(column.paper_total, None);
    }

    #[test]
    fn batching_sweep_shows_latency_hiding() {
        let sweep = batching_sweep(Scenario::Wan, AppKind::Raytrace, &[1, 2, 4, 8], WINDOW);
        assert_eq!(sweep.len(), 4);
        let batch1 = sweep[0].1;
        let batch4 = sweep[2].1;
        let batch8 = sweep[3].1;
        assert!(batch4 > batch1, "larger batches must improve WAN throughput");
        // Once the latency is hidden, adding more batch slots changes little.
        assert!((batch8 - batch4).abs() / batch4 < 0.05);
    }

    #[test]
    fn render_scenario_mentions_every_device() {
        let text = render_scenario(Scenario::Lan, Duration::from_secs(30));
        for device in ["Novena", "Asus Laptop", "MBAir 2011", "iPhone SE", "MBPro 2016"] {
            assert!(text.contains(device), "missing {device} in:\n{text}");
        }
        assert!(text.contains("TOTAL"));
    }
}
