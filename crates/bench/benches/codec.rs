//! Criterion benches comparing the seed's string wire path with the typed
//! `Bytes` pipeline, on both the pure encode/decode cost and the end-to-end
//! master→worker→master dispatch throughput.
//!
//! The *legacy* path reconstructs what the seed did per task: base64-encode
//! binary payloads into a `String` (+33% bytes, paper §2.1.1), format the
//! sequence number as text with a `\n` separator, frame, then parse it all
//! back on the other side — one frame per task. The *bytes* path is the
//! current protocol: raw payloads behind a fixed 8-byte header, many records
//! per frame.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::protocol::Message;
use pando_core::worker::WorkerBuilder;
use pando_netsim::codec::{base64_decode, base64_encode, Record};
use pando_pull_stream::source::from_iter;
use pando_pull_stream::source::SourceExt;

/// One frame of the seed's string protocol: tag, length, then
/// `"{seq}\n{base64(payload)}"`.
fn legacy_encode(seq: u64, payload: &[u8]) -> Vec<u8> {
    let body = format!("{seq}\n{}", base64_encode(payload));
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(1u8);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

fn legacy_decode(frame: &[u8]) -> (u64, Vec<u8>) {
    let body = std::str::from_utf8(&frame[5..]).expect("legacy frames are UTF-8");
    let (seq, rest) = body.split_once('\n').expect("legacy separator present");
    (seq.parse().expect("legacy seq parses"), base64_decode(rest).expect("valid base64"))
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_round_trip");
    // A raytraced frame of the paper's evaluation size: 96x72 RGB.
    let pixels: Vec<u8> = (0..96 * 72 * 3).map(|i| (i % 251) as u8).collect();
    group.throughput(Throughput::Bytes(pixels.len() as u64));

    group.bench_function("legacy_string_base64", |b| {
        b.iter(|| {
            let frame = legacy_encode(7, &pixels);
            let (seq, decoded) = legacy_decode(&frame);
            assert_eq!((seq, decoded.len()), (7, pixels.len()));
        })
    });

    let payload = Bytes::from(pixels.clone());
    group.bench_function("bytes_single", |b| {
        b.iter(|| {
            let message = Message::Task { seq: 7, payload: payload.clone() };
            let frame = message.encode().expect("within frame limit");
            let decoded = Message::decode(&frame).expect("round trip");
            assert_eq!(decoded.record_count(), 1);
        })
    });

    // 16 records in one frame: the batched path the dispatcher actually uses.
    let records: Vec<Record> =
        (0..16).map(|seq| Record::new(seq, Bytes::from(vec![seq as u8; 1024]))).collect();
    group.throughput(Throughput::Bytes(16 * 1024));
    group.bench_function("bytes_batch_16", |b| {
        b.iter(|| {
            let message = Message::TaskBatch(records.clone());
            let frame = message.encode().expect("within frame limit");
            let decoded = Message::decode(&frame).expect("round trip");
            assert_eq!(decoded.record_count(), 16);
        })
    });
    group.finish();
}

/// End-to-end dispatch: stream `tasks` payloads of `payload_len` bytes
/// through a master and one echo worker. `legacy` emulates the seed: base64
/// text payloads and one frame per task; otherwise raw bytes with the
/// batched dispatcher.
fn dispatch(tasks: u64, payload_len: usize, legacy: bool) {
    let config = if legacy {
        PandoConfig::local_test().with_batch_size(8).with_tasks_per_frame(1)
    } else {
        PandoConfig::local_test().with_batch_size(8)
    };
    let pando = Pando::new(config);
    let worker =
        WorkerBuilder::new().spawn(pando.open_volunteer_channel(), move |input: &Bytes| {
            if legacy {
                // The seed's worker had to decode the base64 string and
                // re-encode its (binary) result the same way.
                let raw =
                    base64_decode(std::str::from_utf8(input).expect("utf8")).expect("valid base64");
                Ok(Bytes::from(base64_encode(&raw).into_bytes()))
            } else {
                Ok(Bytes::copy_from_slice(input))
            }
        });
    let inputs: Vec<Bytes> = (0..tasks)
        .map(|i| {
            let raw = vec![(i % 256) as u8; payload_len];
            if legacy {
                Bytes::from(base64_encode(&raw).into_bytes())
            } else {
                Bytes::from(raw)
            }
        })
        .collect();
    let outputs = pando.run(from_iter(inputs)).collect_values().expect("stream completes");
    assert_eq!(outputs.len() as u64, tasks);
    worker.join();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_throughput");
    group.sample_size(10);
    let tasks = 1_000u64;
    let payload_len = 4096usize;
    group.throughput(Throughput::Elements(tasks));
    for (label, legacy) in [("legacy_string_per_task", true), ("bytes_batched", false)] {
        group.bench_with_input(BenchmarkId::new("path", label), &legacy, |b, &legacy| {
            b.iter(|| dispatch(tasks, payload_len, legacy))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode_decode, bench_dispatch);
criterion_main!(benches);
