//! Benchmarks of the StreamLender coordination overhead: how many values per
//! second the master-side abstraction can lend and merge, for a varying
//! number of concurrent sub-streams (devices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_pull_stream::lender::StreamLender;
use pando_pull_stream::source::{count, SourceExt};

fn run(workers: usize, values: u64) {
    let lender: StreamLender<u64, u64> = StreamLender::new(count(values));
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let mut sub = lender.lend();
            std::thread::spawn(move || {
                while let Some(task) = sub.next_task() {
                    sub.push_result(task.seq, task.value).unwrap();
                }
                sub.complete();
            })
        })
        .collect();
    let output = lender.output().drain_all().unwrap();
    assert_eq!(output as u64, values);
    for handle in handles {
        handle.join().unwrap();
    }
}

fn bench_lender(c: &mut Criterion) {
    let mut group = c.benchmark_group("streamlender");
    group.sample_size(10);
    let values = 20_000u64;
    group.throughput(Throughput::Elements(values));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &workers| {
            b.iter(|| run(workers, values))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lender);
criterion_main!(benches);
