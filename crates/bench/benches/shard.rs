//! Criterion bench for sharded stream lenders: the same dispatch workload —
//! 512 sub-streams served by a fixed pool of dispatch threads, results
//! merged back into one ordered output — at 1, 2, 4 and 8 lender shards.
//!
//! Two views of the contention:
//!
//! * `dispatch_contention` — the lender layer alone (no simulated network):
//!   every borrow, result and output emission hammers the lender locks from
//!   8 threads at once, which is exactly the single-mutex ceiling the
//!   `ShardedLender` removes. This is the end-to-end dispatch throughput of
//!   the coordination layer: input → borrow → result → merged output.
//! * `fleet_e2e` — a complete Pando deployment (reactor backend, worker
//!   pool, netsim channels) at 512 volunteers with the shard count as the
//!   only variable.
//!
//! Run with: `cargo bench --bench shard`

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_netsim::channel::ChannelConfig;
use pando_pull_stream::lender::SubStream;
use pando_pull_stream::shard::ShardedLender;
use pando_pull_stream::source::{count, SourceExt};
use pando_pull_stream::Answer;
use std::time::Duration;

const SUBSTREAMS: usize = 512;
const DISPATCH_THREADS: usize = 8;
const CHUNK: usize = 8;

/// One complete dispatch run over the lender layer alone: `SUBSTREAMS`
/// sub-streams (pinned round-robin to the shards) served by
/// `DISPATCH_THREADS` OS threads, all `tasks` values borrowed, answered and
/// merged back in order.
fn run_dispatch(shards: usize, tasks: u64) {
    let sharded: ShardedLender<u64, u64> = ShardedLender::new(count(tasks), shards, CHUNK);
    let handles: Vec<_> = (0..DISPATCH_THREADS)
        .map(|thread| {
            let mut subs: Vec<SubStream<u64, u64>> = (0..SUBSTREAMS)
                .filter(|sub| sub % DISPATCH_THREADS == thread)
                .map(|sub| sharded.lend_on(sub % shards))
                .collect();
            std::thread::spawn(move || {
                let mut processed = 0u64;
                while !subs.is_empty() {
                    subs.retain_mut(|sub| match sub.poll_task() {
                        Some(Answer::Value(lend)) => {
                            sub.push_result(lend.seq, lend.value * 3 + 1)
                                .expect("borrowed value is answerable");
                            processed += 1;
                            true
                        }
                        // Would block: another thread holds the remaining
                        // values in flight; spin on (transient near the end).
                        None => true,
                        Some(_) => false,
                    });
                }
                processed
            })
        })
        .collect();
    let output = sharded.output().collect_values().expect("stream completes");
    assert_eq!(output.len() as u64, tasks);
    assert_eq!(output[0], 4, "merged output stays in input order: f(1) first");
    let processed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(processed, tasks, "every value dispatched exactly once");
}

/// One full deployment at 512 volunteers with `shards` lender shards: wire
/// the fleet, stream the input, collect every result in order, tear down.
fn run_fleet(shards: usize, tasks: u64) {
    let channel = ChannelConfig {
        heartbeat_interval: Duration::from_millis(500),
        failure_timeout: Duration::from_secs(30),
        ..ChannelConfig::instant()
    };
    let config = PandoConfig::local_test()
        .with_batch_size(4)
        .with_reactor_threads(4)
        .with_lender_shards(shards)
        .with_channel(channel);
    let pando = Pando::new(config);
    let endpoints: Vec<_> = (0..SUBSTREAMS).map(|_| pando.open_volunteer_channel()).collect();
    let pool = WorkerBuilder::new()
        .pool_threads(8)
        .spawn_pool(endpoints, |payload: &Bytes| Ok(payload.clone()));
    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .expect("stream completes");
    assert_eq!(output.len() as u64, tasks);
    assert_eq!(output[0].as_ref(), b"1", "results stay ordered");
    pool.join();
    pando.join_volunteers();
}

fn bench_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_contention");
    group.sample_size(10);
    let tasks = 40_960u64; // 80 values per sub-stream
    group.throughput(Throughput::Elements(tasks));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_dispatch(shards, tasks))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fleet_e2e");
    group.sample_size(10);
    let tasks = (SUBSTREAMS as u64) * 8;
    group.throughput(Throughput::Elements(tasks));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| run_fleet(shards, tasks))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
