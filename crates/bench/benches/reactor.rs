//! Criterion bench comparing the two volunteer backends end to end: the
//! legacy thread-per-volunteer pumps against the event-driven reactor, at
//! fleet sizes where the thread-pair model is respectively comfortable and
//! strained. The measured quantity is the wall-clock of a complete run
//! (wire volunteers, stream the input, collect every result, tear down).
//!
//! Run with: `cargo bench --bench reactor`

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_core::config::{PandoConfig, VolunteerBackend};
use pando_core::master::Pando;
use pando_core::worker::WorkerBuilder;
use pando_netsim::channel::ChannelConfig;
use pando_pull_stream::source::{count, SourceExt};
use std::time::Duration;

/// One full deployment: `volunteers` devices served by a worker pool, a
/// stream of `tasks` trivial values, results collected and seq-checked.
fn run_fleet(backend: VolunteerBackend, volunteers: usize, tasks: u64) {
    let channel = ChannelConfig {
        heartbeat_interval: Duration::from_millis(500),
        failure_timeout: Duration::from_secs(30),
        ..ChannelConfig::instant()
    };
    let config = PandoConfig::local_test()
        .with_batch_size(4)
        .with_backend(backend)
        .with_reactor_threads(4)
        .with_channel(channel);
    let pando = Pando::new(config);
    let endpoints: Vec<_> = (0..volunteers).map(|_| pando.open_volunteer_channel()).collect();
    let pool = WorkerBuilder::new()
        .pool_threads(8)
        .spawn_pool(endpoints, |payload: &Bytes| Ok(payload.clone()));
    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .expect("stream completes");
    assert_eq!(output.len() as u64, tasks);
    assert_eq!(output[0].as_ref(), b"1", "results stay ordered");
    pool.join();
    pando.join_volunteers();
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("volunteer_backend");
    group.sample_size(10);
    // 64 volunteers: both backends are comfortable. 512 volunteers: the
    // thread backend spawns 1024 pump threads per run; the reactor stays at
    // its fixed pool.
    for volunteers in [64usize, 512] {
        let tasks = (volunteers as u64) * 8;
        group.throughput(Throughput::Elements(tasks));
        for (label, backend) in
            [("threads", VolunteerBackend::Threads), ("reactor", VolunteerBackend::Reactor)]
        {
            group.bench_with_input(BenchmarkId::new(label, volunteers), &backend, |b, &backend| {
                b.iter(|| run_fleet(backend, volunteers, tasks))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
