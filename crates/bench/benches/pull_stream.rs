//! Micro-benchmarks of the pull-stream substrate: protocol overhead of the
//! combinators and of the Limiter (paper Figure 5 / §2.4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_pull_stream::sink::drain;
use pando_pull_stream::source::{count, SourceExt};

fn bench_combinators(c: &mut Criterion) {
    let mut group = c.benchmark_group("pull_stream");
    group.sample_size(20);
    for n in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("count_drain", n), &n, |b, &n| {
            b.iter(|| drain(count(n)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("map_filter_take", n), &n, |b, &n| {
            b.iter(|| {
                count(n * 2)
                    .map_values(|x| x * 3)
                    .filter_values(|x| x % 2 == 0)
                    .take_values(n as usize)
                    .drain_all()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("batch_unbatch", n), &n, |b, &n| {
            b.iter(|| {
                count(n)
                    .through(|s| pando_pull_stream::through::Batch::new(s, 16))
                    .through(pando_pull_stream::through::Unbatch::new)
                    .drain_all()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_combinators);
criterion_main!(benches);
