//! Criterion bench A/B-ing the two real-socket TCP backends over loopback:
//! the legacy two-threads-per-connection pumps against the shared epoll
//! readiness poller, at fleet sizes where the thread-pair model is
//! respectively comfortable and strained. The measured quantity is the
//! wall-clock of a complete run (handshake the fleet, stream the input,
//! collect every result in order, tear down); alongside each configuration
//! the bench prints the transport thread census (`/proc/self/task` names
//! starting `tcp-`) so the "O(1) vs O(connections) threads" claim is
//! observable, not inferred.
//!
//! Run with: `cargo bench --bench tcp`

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pando_core::config::PandoConfig;
use pando_core::master::Pando;
use pando_core::transport::tcp::{transport_thread_census, TcpAcceptor, TcpConfig, TcpTransport};
use pando_core::worker::WorkerBuilder;
use pando_pull_stream::source::{count, SourceExt};
use std::time::Duration;

/// Liveness windows wide enough that a loaded bench machine never trips the
/// failure detector mid-measurement.
fn tcp_config(pump: bool) -> TcpConfig {
    #[allow(deprecated)]
    TcpConfig {
        heartbeat_interval: Duration::from_millis(500),
        failure_timeout: Duration::from_secs(30),
        pump_threads_backend: pump,
        ..TcpConfig::default()
    }
}

/// One full deployment over real loopback sockets: `volunteers` connections
/// served by a worker pool in the same process, a stream of `tasks` trivial
/// values, results collected and seq-checked. Returns the transport thread
/// census observed while the fleet was fully wired.
fn run_fleet(pump: bool, volunteers: usize, tasks: u64) -> usize {
    let tcp = tcp_config(pump);
    let config =
        PandoConfig::local_test().with_batch_size(4).with_reactor_threads(4).with_tcp(tcp.clone());
    let pando = Pando::new(config);
    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tcp.clone()).expect("bind loopback");
    let addr = acceptor.local_addr();
    let server = acceptor.serve(&pando);

    let transports: Vec<TcpTransport> = (0..volunteers)
        .map(|i| TcpTransport::connect(addr, &format!("bench-{i}"), tcp.clone()).expect("connect"))
        .collect();
    let pool = WorkerBuilder::new()
        .heartbeats(true)
        .pool_threads(4)
        .spawn_pool(transports, |payload: &Bytes| Ok(payload.clone()));
    let census = transport_thread_census().unwrap_or(0);

    let output = pando
        .run(count(tasks).map_values(|v| Bytes::from(v.to_string().into_bytes())))
        .collect_values()
        .expect("stream completes");
    assert_eq!(output.len() as u64, tasks);
    assert_eq!(output[0].as_ref(), b"1", "results stay ordered");
    pool.join();
    server.stop();
    server.join();
    pando.join_volunteers();
    census
}

fn bench_tcp_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcp_backend");
    group.sample_size(10);
    // 8 volunteers: both backends are comfortable. 64: the pump backend
    // already runs ~256 transport threads for the two in-process sides.
    // 256: ~1024 pump threads against a fixed handful of poller threads.
    for volunteers in [8usize, 64, 256] {
        let tasks = (volunteers as u64) * 8;
        group.throughput(Throughput::Elements(tasks));
        for (label, pump) in [("pump", true), ("poller", false)] {
            let census = run_fleet(pump, volunteers, tasks);
            eprintln!("tcp_backend/{label}/{volunteers}: transport thread census {census}");
            group.bench_with_input(BenchmarkId::new(label, volunteers), &pump, |b, &pump| {
                b.iter(|| run_fleet(pump, volunteers, tasks))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tcp_backends);
criterion_main!(benches);
