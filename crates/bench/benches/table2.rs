//! Benchmarks of the deployment simulator used to regenerate Table 2: one
//! five-minute simulated window per scenario and application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pando_bench::regenerate_column;
use pando_devices::profiles::Scenario;
use pando_workloads::AppKind;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_simulation");
    group.sample_size(10);
    let window = Duration::from_secs(300);
    for scenario in Scenario::all() {
        group.bench_with_input(
            BenchmarkId::new("raytrace", scenario),
            &scenario,
            |b, &scenario| b.iter(|| regenerate_column(scenario, AppKind::Raytrace, window)),
        );
        group.bench_with_input(BenchmarkId::new("collatz", scenario), &scenario, |b, &scenario| {
            b.iter(|| regenerate_column(scenario, AppKind::Collatz, window))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
