//! Benchmarks of the workload kernels themselves (one item of each Table 2
//! column), giving this machine's equivalent of a single table row.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pando_workloads::app::AppKind;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_kernels");
    group.sample_size(10);
    for kind in [
        AppKind::Collatz,
        AppKind::CryptoMining,
        AppKind::StreamLenderTesting,
        AppKind::Raytrace,
        AppKind::ImageProcessing,
        AppKind::MlAgentTraining,
    ] {
        let app = kind.instantiate();
        let input = app.input(0);
        group.throughput(Throughput::Elements(app.items_per_input()));
        group.bench_function(app.name(), |b| b.iter(|| app.process(&input).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
