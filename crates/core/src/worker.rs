//! The volunteer-side worker loop.
//!
//! A worker is the code that runs inside a volunteer's browser tab: it
//! receives task frames over its channel — single tasks or whole batches —
//! applies the processing function (the `AsyncMap(f)` module of paper
//! Figure 7) to each record, and replies in kind: one result for a single
//! task, one coalesced [`Message::ResultBatch`] for a batch. Payloads are
//! opaque bytes; [`WorkerBuilder::spawn_typed`] layers a [`TaskCodec`] on
//! top for processing functions with native types. A worker may crash at a
//! scripted point (fault injection) to reproduce the failure scenarios of
//! the evaluation, and a *panicking* processing function is reported as a
//! crash instead of poisoning the joiner.
//!
//! Workers are transport-generic: the same loop serves a simulated
//! [`Endpoint`](pando_netsim::channel::Endpoint) and a live
//! [`TcpTransport`](crate::transport::tcp::TcpTransport) connected to a
//! master in another process. [`WorkerBuilder`] is the one entry point for
//! spawning; [`run_worker_on`] runs the loop on the calling thread.

use crate::protocol::Message;
use crate::transport::Transport;
use bytes::Bytes;
use pando_netsim::channel::{RecvError, SendError};
use pando_netsim::codec::{record_body_len, Record, MAX_FRAME_LEN, RECORD_HEADER_LEN};
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::codec::{Payload, TaskCodec};
use pando_pull_stream::StreamError;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Options controlling one worker.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Scripted crash behaviour (crash-stop fault injection).
    pub fault: FaultPlan,
    /// Name used in logs and reports.
    pub name: String,
    /// Emit periodic [`Message::Heartbeat`] frames while idle, piggybacked
    /// on result traffic: an interval that saw a data frame suppresses the
    /// standalone control frame. Off by default — unit tests asserting exact
    /// frame sequences stay deterministic — and enabled by deployments that
    /// model real channel chatter (the scale examples, the worker pool).
    pub heartbeats: bool,
}

/// One fluent entry point for every way of running volunteer workers:
/// single thread per transport ([`spawn`](WorkerBuilder::spawn)), typed
/// through a codec ([`spawn_typed`](WorkerBuilder::spawn_typed)), or a pool
/// of threads multiplexing many transports
/// ([`spawn_pool`](WorkerBuilder::spawn_pool)). Transport-generic: pass a
/// simulated [`Endpoint`](pando_netsim::channel::Endpoint) or a live
/// [`TcpTransport`](crate::transport::tcp::TcpTransport).
///
/// # Examples
///
/// ```
/// use pando_core::worker::WorkerBuilder;
/// use pando_core::protocol::Message;
/// use pando_netsim::channel::{pair, ChannelConfig};
/// use bytes::Bytes;
///
/// let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
/// let worker = WorkerBuilder::new()
///     .name("tablet")
///     .heartbeats(false)
///     .spawn(volunteer, |payload: &Bytes| Ok(payload.clone()));
/// master.close();
/// assert_eq!(worker.join().name, "tablet");
/// ```
#[derive(Debug, Clone)]
pub struct WorkerBuilder {
    options: WorkerOptions,
    pool_threads: usize,
}

impl Default for WorkerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerBuilder {
    /// A builder with default options: no name, no scripted fault, no
    /// standalone heartbeats, one pool thread.
    pub fn new() -> Self {
        Self { options: WorkerOptions::default(), pool_threads: 1 }
    }

    /// Wraps pre-assembled [`WorkerOptions`] (the volunteer-lifecycle API
    /// hands these through).
    pub fn from_options(options: WorkerOptions) -> Self {
        Self { options, pool_threads: 1 }
    }

    /// Name used in logs, thread names and reports.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.options.name = name.into();
        self
    }

    /// Scripted crash behaviour (crash-stop fault injection).
    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.options.fault = fault;
        self
    }

    /// Whether to emit standalone [`Message::Heartbeat`] frames while idle
    /// (see [`WorkerOptions::heartbeats`]).
    pub fn heartbeats(mut self, heartbeats: bool) -> Self {
        self.options.heartbeats = heartbeats;
        self
    }

    /// Number of threads a [`spawn_pool`](WorkerBuilder::spawn_pool) call
    /// spreads its transports over.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "a worker pool needs at least one thread");
        self.pool_threads = threads;
        self
    }

    /// Spawns a worker thread processing binary task payloads from
    /// `transport` with `process` — the Rust equivalent of the function
    /// exported under `'/pando/1.0.0'` (paper Figure 2), over the binary
    /// wire form: it receives a task payload (a zero-copy slice of the
    /// received frame) and returns either the result payload or an error.
    pub fn spawn<T, F>(self, transport: T, process: F) -> WorkerHandle
    where
        T: Transport + 'static,
        F: Fn(&Payload) -> Result<Bytes, StreamError> + Send + 'static,
    {
        spawn_on(Arc::new(transport), process, self.options)
    }

    /// Spawns a worker whose processing function works on the native task
    /// and result types of `codec`; payloads are decoded and encoded at the
    /// transport boundary.
    pub fn spawn_typed<T, C, F>(self, transport: T, codec: C, process: F) -> WorkerHandle
    where
        T: Transport + 'static,
        C: TaskCodec,
        F: Fn(&C::Task) -> Result<C::Result, StreamError> + Send + 'static,
    {
        self.spawn(transport, move |payload: &Payload| {
            let task = codec.decode_task(payload)?;
            let result = process(&task)?;
            Ok(codec.encode_result(&result))
        })
    }

    /// Spawns [`pool_threads`](WorkerBuilder::pool_threads) threads that
    /// together serve every transport in `transports` — the volunteer-side
    /// mirror of the master's reactor, used to run fleets of thousands of
    /// devices without a thread per device.
    ///
    /// Each pool thread owns a disjoint slice of the transports and drives
    /// them through a per-thread ready queue mirroring the master reactor:
    /// a transport's waker enqueues it when a frame arrives, so a wake costs
    /// one slot visit instead of a scan over the whole slice. `process` is
    /// shared. Heartbeat pacing follows the builder's
    /// [`heartbeats`](WorkerBuilder::heartbeats) setting; scripted faults
    /// are not supported on the pooled path (use
    /// [`spawn`](WorkerBuilder::spawn) for fault injection).
    pub fn spawn_pool<T, F>(self, transports: Vec<T>, process: F) -> WorkerPoolHandle
    where
        T: Transport + 'static,
        F: Fn(&Payload) -> Result<Bytes, StreamError> + Send + Sync + 'static,
    {
        let threads = self.pool_threads;
        let options = self.options;
        let process = Arc::new(process);
        let transports: Vec<Arc<dyn Transport>> =
            transports.into_iter().map(|t| Arc::new(t) as Arc<dyn Transport>).collect();
        let total = transports.len();
        let per_thread = total.div_ceil(threads).max(1);
        let mut transports = transports.into_iter();
        let mut handles = Vec::new();
        for index in 0..threads {
            let chunk: Vec<Arc<dyn Transport>> = transports.by_ref().take(per_thread).collect();
            if chunk.is_empty() {
                break;
            }
            let process = process.clone();
            let options = options.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pando-worker-pool-{index}"))
                    .spawn(move || run_worker_slice(chunk, &*process, &options, index))
                    .expect("spawn worker pool thread"),
            );
        }
        WorkerPoolHandle { threads: handles }
    }
}

/// What a worker did during its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Name of the worker.
    pub name: String,
    /// Number of tasks processed successfully.
    pub processed: u64,
    /// Number of tasks whose processing function returned an error.
    pub errors: u64,
    /// `true` if the worker crashed (fault injection or a panicking
    /// processing function), `false` if it left cleanly after the master
    /// closed the stream.
    pub crashed: bool,
    /// Standalone heartbeat frames sent (only with
    /// [`WorkerOptions::heartbeats`]).
    pub heartbeats_sent: u64,
    /// Heartbeats suppressed because result traffic inside the interval
    /// already proved liveness.
    pub heartbeats_suppressed: u64,
}

impl WorkerReport {
    fn new(name: String) -> Self {
        Self {
            name,
            processed: 0,
            errors: 0,
            crashed: false,
            heartbeats_sent: 0,
            heartbeats_suppressed: 0,
        }
    }

    fn crashed(name: String) -> Self {
        Self { crashed: true, ..Self::new(name) }
    }
}

/// Handle on a running worker thread.
#[derive(Debug)]
pub struct WorkerHandle {
    handle: JoinHandle<WorkerReport>,
    name: String,
}

impl WorkerHandle {
    /// Waits for the worker to finish and returns its report.
    ///
    /// A worker whose processing function panicked is reported as `crashed`
    /// — the panic is contained inside the worker thread and never poisons
    /// the joining thread.
    pub fn join(self) -> WorkerReport {
        let fallback = WorkerReport::crashed(self.name.clone());
        self.handle.join().unwrap_or(fallback)
    }

    /// Returns `true` once the worker thread has finished.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// The worker body behind [`WorkerBuilder::spawn`]: a dedicated thread, a
/// panic boundary that converts processing-function panics into a crashed
/// channel plus a crashed report.
fn spawn_on<F>(transport: Arc<dyn Transport>, process: F, options: WorkerOptions) -> WorkerHandle
where
    F: Fn(&Payload) -> Result<Bytes, StreamError> + Send + 'static,
{
    let name = options.name.clone();
    let handle = std::thread::Builder::new()
        .name(format!("pando-worker-{}", options.name))
        .spawn(move || {
            let report = {
                let transport = transport.clone();
                let options = options.clone();
                std::panic::catch_unwind(AssertUnwindSafe(move || {
                    run_worker_loop(&*transport, process, options)
                }))
            };
            report.unwrap_or_else(|_| {
                // The processing function panicked: indistinguishable from a
                // browser tab dying mid-task, so crash the channel and report
                // it as such instead of propagating the panic to the joiner.
                transport.crash();
                WorkerReport::crashed(options.name)
            })
        })
        .expect("spawn worker thread");
    WorkerHandle { handle, name }
}

/// Outcome of processing one task frame (single or batch).
struct FrameOutcome {
    results: Vec<Record>,
    error: Option<(u64, StreamError)>,
    crashed: bool,
}

/// Handle on a pool of threads multiplexing many volunteer transports.
#[derive(Debug)]
pub struct WorkerPoolHandle {
    threads: Vec<JoinHandle<Vec<WorkerReport>>>,
}

impl WorkerPoolHandle {
    /// Waits for every transport to finish and returns one report per
    /// volunteer, in registration order within each pool thread.
    pub fn join(self) -> Vec<WorkerReport> {
        self.threads.into_iter().flat_map(|handle| handle.join().unwrap_or_default()).collect()
    }
}

/// One pooled transport and its per-volunteer state.
struct PoolSlot {
    endpoint: Arc<dyn Transport>,
    report: WorkerReport,
    pacer: Option<crate::protocol::HeartbeatPacer>,
    /// Replies refused with [`SendError::WouldBlock`] by a bounded
    /// transport, waiting for its write queue to drain. While non-empty the
    /// slot takes no new input, so transport backpressure propagates to the
    /// task stream instead of ballooning in process memory.
    pending: std::collections::VecDeque<Message>,
    done: bool,
}

/// Sends a slot's parked replies until they are gone or the transport
/// pushes back again. A terminal send error marks the slot done.
fn flush_slot_pending(slot: &mut PoolSlot) {
    while let Some(reply) = slot.pending.front() {
        let size = reply.wire_size();
        let count = reply.record_count();
        match slot.endpoint.send_records_with_size(reply.clone(), size, count) {
            Ok(()) => {
                slot.pending.pop_front();
                if let Some(pacer) = &mut slot.pacer {
                    pacer.on_traffic();
                }
            }
            Err(SendError::WouldBlock) => return,
            Err(SendError::Closed) | Err(SendError::PeerFailed) => {
                slot.done = true;
                return;
            }
        }
    }
}

/// Serves a slice of transports from one pool thread until all of them end.
///
/// Readiness is queue-driven, mirroring the master reactor: each transport's
/// waker ([`Transport::set_waker`]) enqueues that slot's index on a
/// per-thread ready queue (an [`AtomicBool`] per slot coalesces duplicate
/// wakes), and the loop services only queued slots instead of scanning the
/// whole slice per wake. With the queue empty the thread parks on a condvar,
/// capped by the earliest known readiness instant
/// ([`Transport::next_ready_at`]), the next heartbeat deadline, and a coarse
/// safety timeout; a timed-out wait requeues every live slot once so paced
/// heartbeats and matured simulated-latency frames are never missed.
fn run_worker_slice<F>(
    transports: Vec<Arc<dyn Transport>>,
    process: &F,
    options: &WorkerOptions,
    thread_index: usize,
) -> Vec<WorkerReport>
where
    F: Fn(&Payload) -> Result<Bytes, StreamError>,
{
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    let mut fault = FaultPlan::None.arm();
    let ready: Arc<(Mutex<VecDeque<usize>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    let queued: Vec<Arc<AtomicBool>> =
        (0..transports.len()).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let mut slots: Vec<PoolSlot> = transports
        .into_iter()
        .enumerate()
        .map(|(i, endpoint)| {
            let interval = endpoint.heartbeat_interval();
            let ready = ready.clone();
            let flag = queued[i].clone();
            endpoint.set_waker(Arc::new(move || {
                // Coalesce: a slot already sitting in the queue absorbs any
                // number of further wakes until it is serviced.
                if !flag.swap(true, Ordering::SeqCst) {
                    let (queue, cond) = &*ready;
                    queue.lock().push_back(i);
                    cond.notify_one();
                }
            }));
            PoolSlot {
                endpoint,
                report: WorkerReport::new(format!(
                    "{}pool-{thread_index}-{i}",
                    if options.name.is_empty() {
                        String::new()
                    } else {
                        format!("{}-", options.name)
                    }
                )),
                pacer: options.heartbeats.then(|| crate::protocol::HeartbeatPacer::new(interval)),
                pending: VecDeque::new(),
                done: false,
            }
        })
        .collect();
    let mut live = slots.len();
    // Seed every slot once: frames may already be waiting from before the
    // wakers were registered.
    {
        let (queue, _) = &*ready;
        let mut queue = queue.lock();
        for (i, flag) in queued.iter().enumerate() {
            flag.store(true, Ordering::SeqCst);
            queue.push_back(i);
        }
    }
    while live > 0 {
        let next = {
            let (queue, _) = &*ready;
            queue.lock().pop_front()
        };
        let Some(index) = next else {
            // Queue drained: park until a waker enqueues a slot, but never
            // past the earliest moment something is known to become
            // deliverable (simulated latency) or a heartbeat falls due; a
            // coarse safety cap bounds the wait regardless.
            let now = std::time::Instant::now();
            let mut deadline = now + std::time::Duration::from_millis(50);
            for slot in slots.iter().filter(|slot| !slot.done) {
                if let Some(at) = slot.endpoint.next_ready_at() {
                    deadline = deadline.min(at);
                }
                if let Some(pacer) = &slot.pacer {
                    deadline = deadline.min(pacer.next_due());
                }
            }
            let (queue, cond) = &*ready;
            let mut queue = queue.lock();
            if queue.is_empty() {
                cond.wait_until(&mut queue, deadline);
            }
            if queue.is_empty() {
                // Timed out with nothing queued: requeue every live slot
                // once so due heartbeats and matured latency frames are
                // serviced even without a waker event.
                for (i, slot) in slots.iter().enumerate() {
                    if !slot.done {
                        queued[i].store(true, Ordering::SeqCst);
                        queue.push_back(i);
                    }
                }
            }
            continue;
        };
        // Clear the coalescing flag *before* draining: an event arriving
        // mid-drain re-enqueues the slot instead of being lost.
        queued[index].store(false, Ordering::SeqCst);
        let slot = &mut slots[index];
        if slot.done {
            continue;
        }
        {
            // Replies parked by an earlier would-block flush first: taking
            // new input while they wait would break backpressure and
            // reorder sends.
            flush_slot_pending(slot);
            if !slot.done && !slot.pending.is_empty() {
                // Transport still pushing back; its waker re-enqueues the
                // slot once the bounded write queue drains.
                continue;
            }
            let mut drained = 0;
            let mut more = true;
            // Drain a bounded number of frames per visit so one chatty
            // endpoint cannot starve its siblings.
            while !slot.done && drained < 8 {
                drained += 1;
                let (outcome, batched) = match slot.endpoint.try_recv() {
                    Ok(Message::Task { seq, payload }) => {
                        let records = [Record::new(seq, payload)];
                        (process_records(&records, process, &mut fault, &mut slot.report), false)
                    }
                    Ok(Message::TaskBatch(records)) => {
                        (process_records(&records, process, &mut fault, &mut slot.report), true)
                    }
                    Ok(Message::Heartbeat) | Ok(Message::Ack { .. }) => continue,
                    Ok(_) => {
                        slot.endpoint.close();
                        slot.done = true;
                        break;
                    }
                    Err(RecvError::Closed) => {
                        let _ = slot.endpoint.send(Message::Goodbye);
                        slot.endpoint.close();
                        slot.done = true;
                        break;
                    }
                    Err(RecvError::PeerFailed) => {
                        slot.done = true;
                        break;
                    }
                    Err(RecvError::Empty) | Err(RecvError::Timeout) => {
                        more = false;
                        break;
                    }
                };
                slot.pending.extend(build_replies(outcome, batched));
                flush_slot_pending(slot);
                if slot.done {
                    break;
                }
                if !slot.pending.is_empty() {
                    // The bounded write queue pushed back mid-drain: stop
                    // taking new input; the transport waker re-enqueues the
                    // slot once the queue drains below its bound.
                    more = false;
                    break;
                }
            }
            if slot.done {
                live -= 1;
                slot.endpoint.clear_waker();
                continue;
            }
            if let Some(pacer) = &mut slot.pacer {
                match pacer.poll() {
                    crate::protocol::HeartbeatAction::NotDue => {}
                    crate::protocol::HeartbeatAction::Send => {
                        slot.report.heartbeats_sent += 1;
                        let _ = slot.endpoint.send(Message::Heartbeat);
                    }
                    crate::protocol::HeartbeatAction::Suppressed => {
                        slot.report.heartbeats_suppressed += 1;
                    }
                }
            }
            if more && !queued[index].swap(true, Ordering::SeqCst) {
                // The frame-drain bound was hit with input still pending:
                // yield the queue to siblings and come back.
                let (queue, _) = &*ready;
                queue.lock().push_back(index);
            }
        }
    }
    slots.into_iter().map(|slot| slot.report).collect()
}

/// Runs the worker loop on the calling thread over any [`Transport`], until
/// the master closes the connection or the fault plan triggers a crash.
pub fn run_worker_on<F>(
    transport: &dyn Transport,
    process: F,
    options: WorkerOptions,
) -> WorkerReport
where
    F: Fn(&Payload) -> Result<Bytes, StreamError>,
{
    run_worker_loop(transport, process, options)
}

fn run_worker_loop<F>(endpoint: &dyn Transport, process: F, options: WorkerOptions) -> WorkerReport
where
    F: Fn(&Payload) -> Result<Bytes, StreamError>,
{
    let mut report = WorkerReport::new(options.name.clone());
    let mut fault = options.fault.arm();
    let heartbeat_interval = endpoint.heartbeat_interval();
    let mut pacer =
        options.heartbeats.then(|| crate::protocol::HeartbeatPacer::new(heartbeat_interval));

    loop {
        if fault.should_crash() {
            endpoint.crash();
            report.crashed = true;
            return report;
        }
        if fault.pending_disconnect().is_some() {
            // A scripted link flap, not a crash: sever the socket and keep
            // running. A resumable transport redials on its own backoff
            // schedule and the loop sees at most an idle stretch; on a
            // plain transport `drop_link` degrades to a crash, which the
            // receive path below observes as usual.
            endpoint.drop_link();
        }
        // With pacing enabled, wake at least once per heartbeat interval so
        // an idle channel still signals liveness; result traffic below
        // suppresses the standalone frame (piggyback).
        let received = match &mut pacer {
            Some(pacer) => {
                let received = endpoint.recv_timeout(heartbeat_interval);
                match pacer.poll() {
                    crate::protocol::HeartbeatAction::NotDue => {}
                    crate::protocol::HeartbeatAction::Send => {
                        report.heartbeats_sent += 1;
                        let _ = endpoint.send(Message::Heartbeat);
                    }
                    crate::protocol::HeartbeatAction::Suppressed => {
                        report.heartbeats_suppressed += 1;
                    }
                }
                received
            }
            None => endpoint.recv(),
        };
        let batch = match received {
            Ok(Message::Task { seq, payload }) => {
                let outcome = process_records(
                    &[Record::new(seq, payload)],
                    &process,
                    &mut fault,
                    &mut report,
                );
                if outcome.crashed {
                    // The crash happens before the result reaches the master,
                    // like a tab closed mid-upload.
                    endpoint.crash();
                    report.crashed = true;
                    return report;
                }
                (outcome, false)
            }
            Ok(Message::TaskBatch(records)) => {
                let outcome = process_records(&records, &process, &mut fault, &mut report);
                if outcome.crashed {
                    endpoint.crash();
                    report.crashed = true;
                    return report;
                }
                (outcome, true)
            }
            Ok(Message::Heartbeat) | Ok(Message::Ack { .. }) => continue,
            Ok(Message::Goodbye)
            | Ok(Message::TaskResult { .. })
            | Ok(Message::ResultBatch(_))
            | Ok(Message::TaskError { .. }) => {
                // Unexpected on the worker side; treat as end of stream.
                endpoint.close();
                return report;
            }
            Err(RecvError::Closed) => {
                // Clean end of the deployment: acknowledge and leave.
                let _ = endpoint.send(Message::Goodbye);
                endpoint.close();
                return report;
            }
            Err(RecvError::PeerFailed) => return report,
            Err(RecvError::Timeout) | Err(RecvError::Empty) => continue,
        };
        let (outcome, batched) = batch;
        for reply in build_replies(outcome, batched) {
            let size = reply.wire_size();
            let count = reply.record_count();
            loop {
                match endpoint.send_records_with_size(reply.clone(), size, count) {
                    Ok(()) => {
                        if let Some(pacer) = &mut pacer {
                            pacer.on_traffic();
                        }
                        break;
                    }
                    Err(SendError::WouldBlock) => {
                        // Bounded write queue full. A dedicated-thread worker
                        // can afford to wait for the poller to drain it,
                        // bailing out only if the peer dies meanwhile.
                        if !endpoint.is_peer_alive() {
                            return report;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(SendError::Closed) | Err(SendError::PeerFailed) => return report,
                }
            }
        }
    }
}

/// Builds the reply frames for one processed task frame. Results of a batch
/// are coalesced into one frame, mirroring the master's task batching; a
/// lone task is answered in kind. Large result sets are split so no reply
/// frame exceeds the wire limit.
fn build_replies(outcome: FrameOutcome, batched: bool) -> Vec<Message> {
    let mut replies = Vec::with_capacity(2);
    if !outcome.results.is_empty() {
        let mut results = outcome.results;
        if batched {
            for chunk in split_by_frame_limit(results) {
                replies.push(Message::ResultBatch(chunk));
            }
        } else {
            let record = results.pop().expect("non-empty results");
            replies.push(Message::TaskResult { seq: record.seq, payload: record.payload });
        }
    }
    if let Some((seq, err)) = outcome.error {
        replies.push(Message::TaskError {
            seq,
            message: Bytes::copy_from_slice(err.message().as_bytes()),
        });
    }
    replies
}

/// Applies the processing function to every record of one frame, honouring
/// the fault plan between records. Processing stops at the first application
/// error: the master treats an erroring volunteer as faulty anyway.
fn process_records<F>(
    records: &[Record],
    process: &F,
    fault: &mut pando_netsim::fault::ArmedFaultPlan,
    report: &mut WorkerReport,
) -> FrameOutcome
where
    F: Fn(&Payload) -> Result<Bytes, StreamError>,
{
    let mut outcome =
        FrameOutcome { results: Vec::with_capacity(records.len()), error: None, crashed: false };
    for record in records {
        // Errored tasks count towards the fault plan like successful ones:
        // the plan scripts "after N tasks handled", not "after N successes".
        let failed = match process(&record.payload) {
            Ok(payload) => {
                report.processed += 1;
                outcome.results.push(Record::new(record.seq, payload));
                false
            }
            Err(err) => {
                report.errors += 1;
                outcome.error = Some((record.seq, err));
                true
            }
        };
        fault.record_task();
        if fault.should_crash() {
            outcome.crashed = true;
            break;
        }
        if failed {
            break;
        }
    }
    outcome
}

/// Splits result records into chunks whose encoded batch body stays within
/// [`MAX_FRAME_LEN`], so a worker answering a large batch (for example
/// rendered frames) never produces an unencodable reply frame.
fn split_by_frame_limit(records: Vec<Record>) -> Vec<Vec<Record>> {
    if record_body_len(&records) <= MAX_FRAME_LEN {
        return vec![records];
    }
    let mut chunks = Vec::new();
    let mut chunk: Vec<Record> = Vec::new();
    let mut body = 4usize;
    for record in records {
        let add = RECORD_HEADER_LEN + record.payload.len();
        if !chunk.is_empty() && body + add > MAX_FRAME_LEN {
            chunks.push(std::mem::take(&mut chunk));
            body = 4;
        }
        body += add;
        chunk.push(record);
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use pando_netsim::channel::{pair, ChannelConfig};
    use pando_pull_stream::codec::StringCodec;

    #[allow(clippy::ptr_arg)] // must match Fn(&C::Task) with C::Task = String
    fn upper(input: &String) -> Result<String, StreamError> {
        Ok(input.to_uppercase())
    }

    fn task(seq: u64, payload: &[u8]) -> Message {
        Message::Task { seq, payload: Bytes::copy_from_slice(payload) }
    }

    #[test]
    fn worker_processes_tasks_and_leaves_cleanly() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = WorkerBuilder::new().spawn_typed(volunteer, StringCodec, upper);
        master.send(task(0, b"hello")).unwrap();
        master.send(task(1, b"world")).unwrap();
        assert_eq!(
            master.recv().unwrap(),
            Message::TaskResult { seq: 0, payload: Bytes::copy_from_slice(b"HELLO") }
        );
        assert_eq!(
            master.recv().unwrap(),
            Message::TaskResult { seq: 1, payload: Bytes::copy_from_slice(b"WORLD") }
        );
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 2);
        assert_eq!(report.errors, 0);
        assert!(!report.crashed);
        // The worker said goodbye before leaving.
        assert_eq!(master.recv().unwrap(), Message::Goodbye);
    }

    #[test]
    fn task_batches_come_back_as_one_result_batch() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = WorkerBuilder::new().spawn_typed(volunteer, StringCodec, upper);
        master
            .send(Message::TaskBatch(vec![
                Record::new(4, Bytes::copy_from_slice(b"a")),
                Record::new(5, Bytes::copy_from_slice(b"b")),
                Record::new(6, Bytes::copy_from_slice(b"c")),
            ]))
            .unwrap();
        assert_eq!(
            master.recv().unwrap(),
            Message::ResultBatch(vec![
                Record::new(4, Bytes::copy_from_slice(b"A")),
                Record::new(5, Bytes::copy_from_slice(b"B")),
                Record::new(6, Bytes::copy_from_slice(b"C")),
            ])
        );
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 3);
        assert!(!report.crashed);
    }

    #[test]
    fn worker_reports_application_errors() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = WorkerBuilder::new()
            .spawn(volunteer, |_input: &Bytes| Err(StreamError::new("cannot render")));
        master.send(task(5, b"x")).unwrap();
        assert_eq!(
            master.recv().unwrap(),
            Message::TaskError { seq: 5, message: Bytes::copy_from_slice(b"cannot render") }
        );
        master.close();
        let report = worker.join();
        assert_eq!(report.errors, 1);
        assert_eq!(report.processed, 0);
    }

    #[test]
    fn batch_error_still_delivers_earlier_results() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = WorkerBuilder::new().spawn(volunteer, |input: &Bytes| {
            if &input[..] == b"bad" {
                Err(StreamError::new("nope"))
            } else {
                Ok(Bytes::copy_from_slice(input))
            }
        });
        master
            .send(Message::TaskBatch(vec![
                Record::new(0, Bytes::copy_from_slice(b"ok")),
                Record::new(1, Bytes::copy_from_slice(b"bad")),
                Record::new(2, Bytes::copy_from_slice(b"never-reached")),
            ]))
            .unwrap();
        // The successful prefix arrives first, then the error.
        assert_eq!(
            master.recv().unwrap(),
            Message::ResultBatch(vec![Record::new(0, Bytes::copy_from_slice(b"ok"))])
        );
        assert_eq!(
            master.recv().unwrap(),
            Message::TaskError { seq: 1, message: Bytes::copy_from_slice(b"nope") }
        );
        master.close();
        let report = worker.join();
        assert_eq!((report.processed, report.errors), (1, 1));
    }

    #[test]
    fn errored_tasks_count_towards_the_fault_plan() {
        let (master, volunteer) = pair::<Message>(ChannelConfig {
            failure_timeout: std::time::Duration::from_millis(40),
            ..ChannelConfig::instant()
        });
        // Every task errors; the plan still crashes after three *handled*
        // tasks, exactly like the replaced per-message loop did.
        let worker = WorkerBuilder::new()
            .fault(FaultPlan::AfterTasks(3))
            .spawn(volunteer, |_input: &Bytes| Err(StreamError::new("always fails")));
        for seq in 0..5 {
            let _ = master.send(task(seq, b"x"));
        }
        let report = worker.join();
        assert!(report.crashed, "errored tasks must advance the fault plan");
        assert_eq!(report.errors, 3);
    }

    #[test]
    fn oversized_result_batches_are_split_at_the_frame_limit() {
        let nine_mb = Bytes::from(vec![7u8; 9 * 1024 * 1024]);
        let records: Vec<Record> = (0..3).map(|seq| Record::new(seq, nine_mb.clone())).collect();
        let chunks = split_by_frame_limit(records.clone());
        assert!(chunks.len() > 1, "27MB of results cannot travel in one frame");
        for chunk in &chunks {
            assert!(pando_netsim::codec::record_body_len(chunk) <= MAX_FRAME_LEN);
        }
        let rejoined: Vec<Record> = chunks.into_iter().flatten().collect();
        assert_eq!(rejoined, records, "splitting preserves order and content");
        // Small batches stay in one frame.
        let small = vec![Record::new(0, Bytes::copy_from_slice(b"x"))];
        assert_eq!(split_by_frame_limit(small.clone()), vec![small]);
    }

    #[test]
    fn fault_plan_crashes_the_worker() {
        let (master, volunteer) = pair::<Message>(ChannelConfig {
            failure_timeout: std::time::Duration::from_millis(40),
            ..ChannelConfig::instant()
        });
        let worker = WorkerBuilder::new()
            .fault(FaultPlan::AfterTasks(1))
            .name("tablet")
            .spawn_typed(volunteer, StringCodec, upper);
        master.send(task(0, b"only")).unwrap();
        master.send(task(1, b"never answered")).unwrap();
        let report = worker.join();
        assert!(report.crashed);
        assert_eq!(report.name, "tablet");
        // The master eventually suspects the crash instead of seeing results.
        let mut saw_failure = false;
        for _ in 0..10 {
            match master.recv() {
                Err(RecvError::PeerFailed) => {
                    saw_failure = true;
                    break;
                }
                Ok(_) => continue,
                Err(_) => continue,
            }
        }
        assert!(saw_failure, "the crash must be detected through the failure detector");
    }

    #[test]
    fn panicking_process_function_is_reported_as_a_crash() {
        let (master, volunteer) = pair::<Message>(ChannelConfig {
            failure_timeout: std::time::Duration::from_millis(40),
            ..ChannelConfig::instant()
        });
        let worker = WorkerBuilder::new()
            .name("flaky")
            .spawn(volunteer, |_input: &Bytes| panic!("worker code exploded"));
        master.send(task(0, b"boom")).unwrap();
        // Joining must not propagate the panic.
        let report = worker.join();
        assert!(report.crashed);
        assert_eq!(report.name, "flaky");
        // The master sees the crash through the failure detector.
        let mut saw_failure = false;
        for _ in 0..10 {
            match master.recv() {
                Err(RecvError::PeerFailed) => {
                    saw_failure = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(saw_failure, "a panicked worker must look crashed to its peer");
    }

    #[test]
    fn worker_pool_serves_many_endpoints_with_few_threads() {
        use crate::config::PandoConfig;
        use crate::master::Pando;
        use pando_pull_stream::source::{count, SourceExt};

        let pando = Pando::new(PandoConfig::local_test().with_batch_size(4));
        let endpoints: Vec<_> = (0..20).map(|_| pando.open_volunteer_channel()).collect();
        let pool = WorkerBuilder::new().pool_threads(3).spawn_pool(endpoints, |payload: &Bytes| {
            let mut out = payload.to_vec();
            out.reverse();
            Ok(Bytes::from(out))
        });
        let output = pando
            .run(count(200).map_values(|v| Bytes::from(v.to_string().into_bytes())))
            .collect_values()
            .unwrap();
        let expected: Vec<Bytes> = (1..=200u64)
            .map(|v| {
                let mut bytes = v.to_string().into_bytes();
                bytes.reverse();
                Bytes::from(bytes)
            })
            .collect();
        assert_eq!(output, expected, "per-volunteer results stay demultiplexed in order");
        let reports = pool.join();
        assert_eq!(reports.len(), 20);
        let total: u64 = reports.iter().map(|r| r.processed).sum();
        assert_eq!(total, 200);
        assert!(reports.iter().all(|r| !r.crashed));
        pando.join_volunteers();
    }

    #[test]
    fn idle_worker_emits_heartbeats_and_traffic_suppresses_them() {
        let (master, volunteer) = pair::<Message>(ChannelConfig {
            heartbeat_interval: std::time::Duration::from_millis(10),
            failure_timeout: std::time::Duration::from_millis(200),
            ..ChannelConfig::instant()
        });
        let worker =
            WorkerBuilder::new().heartbeats(true).spawn_typed(volunteer, StringCodec, upper);
        // Idle for several intervals: standalone heartbeats flow.
        let mut beats = 0;
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(200);
        while beats < 2 && std::time::Instant::now() < deadline {
            if let Ok(Message::Heartbeat) =
                master.recv_timeout(std::time::Duration::from_millis(50))
            {
                beats += 1;
            }
        }
        assert!(beats >= 2, "an idle worker must keep signalling liveness");
        // Steady result traffic for a few intervals suppresses the beats.
        for seq in 0..8u64 {
            master.send(task(seq, b"x")).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 8);
        assert!(report.heartbeats_sent >= 2);
        assert!(
            report.heartbeats_suppressed >= 1,
            "result traffic within the interval must suppress standalone beats \
             (sent={}, suppressed={})",
            report.heartbeats_sent,
            report.heartbeats_suppressed
        );
    }

    #[test]
    fn is_finished_reflects_thread_state() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = WorkerBuilder::new().spawn_typed(volunteer, StringCodec, upper);
        assert!(!worker.is_finished());
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 0);
    }
}
