//! The volunteer-side worker loop.
//!
//! A worker is the code that runs inside a volunteer's browser tab: it
//! receives tasks over its channel, applies the user-provided processing
//! function (the `AsyncMap(f)` module of paper Figure 7), and sends results
//! back. It may crash at a scripted point (fault injection) to reproduce the
//! failure scenarios of the evaluation.

use crate::protocol::Message;
use pando_netsim::channel::{Endpoint, RecvError, SendError};
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::StreamError;
use std::thread::JoinHandle;

/// Options controlling one worker.
#[derive(Debug, Clone, Default)]
pub struct WorkerOptions {
    /// Scripted crash behaviour (crash-stop fault injection).
    pub fault: FaultPlan,
    /// Name used in logs and reports.
    pub name: String,
}

/// What a worker did during its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// Name of the worker.
    pub name: String,
    /// Number of tasks processed successfully.
    pub processed: u64,
    /// Number of tasks whose processing function returned an error.
    pub errors: u64,
    /// `true` if the worker crashed (fault injection), `false` if it left
    /// cleanly after the master closed the stream.
    pub crashed: bool,
}

/// Handle on a running worker thread.
#[derive(Debug)]
pub struct WorkerHandle {
    handle: JoinHandle<WorkerReport>,
}

impl WorkerHandle {
    /// Waits for the worker to finish and returns its report.
    pub fn join(self) -> WorkerReport {
        self.handle.join().expect("worker threads do not panic")
    }

    /// Returns `true` once the worker thread has finished.
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Spawns a worker thread processing tasks from `endpoint` with `process`.
///
/// `process` is the Rust equivalent of the function exported under
/// `'/pando/1.0.0'` (paper Figure 2): it receives the input as a string and
/// returns either the result string or an error.
pub fn spawn_worker<F>(
    endpoint: Endpoint<Message>,
    process: F,
    options: WorkerOptions,
) -> WorkerHandle
where
    F: Fn(&str) -> Result<String, StreamError> + Send + 'static,
{
    let handle = std::thread::Builder::new()
        .name(format!("pando-worker-{}", options.name))
        .spawn(move || run_worker(endpoint, process, options))
        .expect("spawn worker thread");
    WorkerHandle { handle }
}

/// Runs the worker loop on the calling thread until the master closes the
/// channel or the fault plan triggers a crash.
pub fn run_worker<F>(
    endpoint: Endpoint<Message>,
    process: F,
    options: WorkerOptions,
) -> WorkerReport
where
    F: Fn(&str) -> Result<String, StreamError>,
{
    let mut report =
        WorkerReport { name: options.name.clone(), processed: 0, errors: 0, crashed: false };
    let mut fault = options.fault.arm();
    loop {
        if fault.should_crash() {
            endpoint.crash();
            report.crashed = true;
            return report;
        }
        match endpoint.recv() {
            Ok(Message::Task { seq, payload }) => {
                let reply = match process(&payload) {
                    Ok(result) => {
                        report.processed += 1;
                        Message::TaskResult { seq, payload: result }
                    }
                    Err(err) => {
                        report.errors += 1;
                        Message::TaskError { seq, message: err.to_string() }
                    }
                };
                fault.record_task();
                if fault.should_crash() {
                    // The crash happens before the result reaches the master,
                    // like a tab closed mid-upload.
                    endpoint.crash();
                    report.crashed = true;
                    return report;
                }
                let size = reply.wire_size();
                match endpoint.send_with_size(reply, size) {
                    Ok(()) => {}
                    Err(SendError::Closed) | Err(SendError::PeerFailed) => return report,
                }
            }
            Ok(Message::Heartbeat) => continue,
            Ok(Message::Goodbye)
            | Ok(Message::TaskResult { .. })
            | Ok(Message::TaskError { .. }) => {
                // Unexpected on the worker side; treat as end of stream.
                endpoint.close();
                return report;
            }
            Err(RecvError::Closed) => {
                // Clean end of the deployment: acknowledge and leave.
                let _ = endpoint.send(Message::Goodbye);
                endpoint.close();
                return report;
            }
            Err(RecvError::PeerFailed) => return report,
            Err(RecvError::Timeout) | Err(RecvError::Empty) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pando_netsim::channel::{pair, ChannelConfig};

    fn upper(input: &str) -> Result<String, StreamError> {
        Ok(input.to_uppercase())
    }

    #[test]
    fn worker_processes_tasks_and_leaves_cleanly() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = spawn_worker(volunteer, upper, WorkerOptions::default());
        master.send(Message::Task { seq: 0, payload: "hello".into() }).unwrap();
        master.send(Message::Task { seq: 1, payload: "world".into() }).unwrap();
        assert_eq!(master.recv().unwrap(), Message::TaskResult { seq: 0, payload: "HELLO".into() });
        assert_eq!(master.recv().unwrap(), Message::TaskResult { seq: 1, payload: "WORLD".into() });
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 2);
        assert_eq!(report.errors, 0);
        assert!(!report.crashed);
        // The worker said goodbye before leaving.
        assert_eq!(master.recv().unwrap(), Message::Goodbye);
    }

    #[test]
    fn worker_reports_application_errors() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = spawn_worker(
            volunteer,
            |_input: &str| Err(StreamError::new("cannot render")),
            WorkerOptions::default(),
        );
        master.send(Message::Task { seq: 5, payload: "x".into() }).unwrap();
        assert_eq!(
            master.recv().unwrap(),
            Message::TaskError { seq: 5, message: "cannot render".into() }
        );
        master.close();
        let report = worker.join();
        assert_eq!(report.errors, 1);
        assert_eq!(report.processed, 0);
    }

    #[test]
    fn fault_plan_crashes_the_worker() {
        let (master, volunteer) = pair::<Message>(ChannelConfig {
            failure_timeout: std::time::Duration::from_millis(40),
            ..ChannelConfig::instant()
        });
        let worker = spawn_worker(
            volunteer,
            upper,
            WorkerOptions { fault: FaultPlan::AfterTasks(1), name: "tablet".into() },
        );
        master.send(Message::Task { seq: 0, payload: "only".into() }).unwrap();
        master.send(Message::Task { seq: 1, payload: "never answered".into() }).unwrap();
        let report = worker.join();
        assert!(report.crashed);
        assert_eq!(report.name, "tablet");
        // The master eventually suspects the crash instead of seeing results.
        let mut saw_failure = false;
        for _ in 0..10 {
            match master.recv() {
                Err(RecvError::PeerFailed) => {
                    saw_failure = true;
                    break;
                }
                Ok(_) => continue,
                Err(_) => continue,
            }
        }
        assert!(saw_failure, "the crash must be detected through the failure detector");
    }

    #[test]
    fn is_finished_reflects_thread_state() {
        let (master, volunteer) = pair::<Message>(ChannelConfig::instant());
        let worker = spawn_worker(volunteer, upper, WorkerOptions::default());
        assert!(!worker.is_finished());
        master.close();
        let report = worker.join();
        assert_eq!(report.processed, 0);
    }
}
