//! Pando: personal volunteer computing — the coordination system.
//!
//! This crate assembles the substrates ([`pando_pull_stream`],
//! [`pando_netsim`], [`pando_workloads`], [`pando_devices`]) into the system
//! described by the paper (Figure 7): a **master** process that parallelises
//! the application of a function over a stream of values by lending values to
//! **volunteer** devices, each running a **worker** loop, connected through
//! WebSocket/WebRTC-like channels bootstrapped by a **public server**.
//!
//! * [`config`] — deployment configuration (batch size, channel profile,
//!   worker code bundle);
//! * [`protocol`] — the wire messages exchanged between master and workers
//!   and their framed encoding;
//! * [`master`] — the [`master::Pando`] master: StreamLender +
//!   Limiter per volunteer + ordered output;
//! * [`reactor`] — the event-driven backend: a fixed thread pool
//!   multiplexing dispatch and receive for every volunteer (the default;
//!   the thread-per-volunteer pumps remain available for A/B runs);
//! * [`worker`] — the volunteer-side processing loop (`AsyncMap(f)`), as a
//!   thread per device or a pool serving thousands of simulated devices;
//! * [`volunteer`] — volunteer lifecycle (candidate → processor) and
//!   deployment over a [`PublicServer`](pando_netsim::signaling::PublicServer);
//! * [`monitor`] — the synchronous-parallel-search feedback loop used by the
//!   crypto-currency mining application (paper §4.2);
//! * [`metrics`] — per-device throughput accounting over a measurement
//!   window, as used for Table 2;
//! * [`sim`] — the deterministic simulators: the analytic model replaying
//!   the LAN / VPN / WAN experiments, and the virtual-clock *fleet
//!   simulator* that single-steps the real reactor for tick-for-tick
//!   reproducible 10k-volunteer runs;
//! * [`scenario`] — checked-in `scenarios/*.toml` topology/churn/fault
//!   scripts compiled to fleet-simulator runs, backing the golden-trace
//!   regression suite (`examples/scenario_run.rs`, `make scenarios`);
//! * [`transport`] — the [`transport::Transport`] seam between the
//!   coordination layer and the wire: the simulated [`pando_netsim`]
//!   channels and the real-socket [`transport::tcp::TcpTransport`] backend
//!   drive the same reactor through one object-safe trait;
//! * [`deploy`] — the scripted deployment trace of paper Figure 4.
//!
//! The wire protocol is binary end to end: every task and result travels as
//! a [`bytes::Bytes`] payload with a fixed sequence header, batched into
//! multi-record frames ([`protocol::Message::TaskBatch`]) so a whole window
//! of tasks pays the channel round-trip once. Applications plug in through a
//! [`TaskCodec`](pando_pull_stream::codec::TaskCodec) mapping their native
//! task/result types to payloads.
//!
//! # Quickstart
//!
//! ```
//! use pando_core::config::PandoConfig;
//! use pando_core::master::Pando;
//! use pando_core::worker::WorkerBuilder;
//! use pando_pull_stream::codec::StringCodec;
//! use pando_pull_stream::source::{count, SourceExt};
//!
//! // The function to distribute, typed through a codec (here plain text,
//! // the original '/pando/1.0.0' convention).
//! let square = |input: &String| -> Result<String, pando_pull_stream::StreamError> {
//!     let n: u64 = input.parse().map_err(|_| "not a number")?;
//!     Ok((n * n).to_string())
//! };
//!
//! let pando = Pando::new(PandoConfig::local_test());
//! // Two volunteer devices join.
//! let mut workers = Vec::new();
//! for _ in 0..2 {
//!     let endpoint = pando.open_volunteer_channel();
//!     workers.push(WorkerBuilder::new().spawn_typed(endpoint, StringCodec, square));
//! }
//! let output = pando
//!     .run_typed(StringCodec, count(20).map_values(|v| v.to_string()))
//!     .collect_values()
//!     .unwrap();
//! assert_eq!(output.len(), 20);
//! assert_eq!(output[3], "16");
//! for w in workers { w.join(); }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is
// `transport::sys`, the ~100-line raw epoll/keepalive syscall shim, which
// opts back in locally. Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deploy;
pub mod master;
pub mod metrics;
pub mod monitor;
pub mod protocol;
pub mod reactor;
pub mod scenario;
pub mod sim;
pub mod transport;
pub mod volunteer;
pub mod worker;

pub use config::PandoConfig;
pub use master::Pando;
pub use transport::{Transport, TransportError, TransportErrorKind};
pub use worker::WorkerBuilder;
