//! Throughput accounting, as used for the paper's Table 2.
//!
//! The evaluation measures, for every device, the number of items processed
//! over a five-minute window and derives the device's average throughput and
//! its share of the total. [`ThroughputMeter`] collects those counts during a
//! run; [`ThroughputReport`] renders them.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Collects per-device completion counts during a run.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    inner: Arc<Mutex<MeterState>>,
}

#[derive(Debug)]
struct MeterState {
    started_at: Instant,
    counts: BTreeMap<String, u64>,
    units: BTreeMap<String, f64>,
    bytes: BTreeMap<String, u64>,
    frames: BTreeMap<String, u64>,
    heartbeats: BTreeMap<String, u64>,
    heartbeats_suppressed: BTreeMap<String, u64>,
    shards: BTreeMap<usize, ShardCounters>,
    scheduler: Option<SchedulerCounters>,
}

/// Work-conservation counters of the reactor scheduler: how many driver
/// polls ran, how many of them made no progress, and how the bounded
/// starved-kick budget split wakes between sent and suppressed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerCounters {
    /// Driver polls executed by the reactor.
    pub polls: u64,
    /// Polls that returned `Pending` without making any progress (no frame
    /// received, nothing dispatched): the direct cost of over-waking.
    pub wasted_polls: u64,
    /// Starved drivers actually woken by `kick_starved`.
    pub kicks_sent: u64,
    /// Starved drivers left parked because the kick budget (the shard's
    /// lendable depth) was already covered.
    pub kicks_suppressed: u64,
}

/// Accumulated dispatch counters and last-observed gauges for one lender
/// shard.
#[derive(Debug, Default, Clone, Copy)]
struct ShardCounters {
    borrows: u64,
    results: u64,
    depth: u64,
    in_flight: u64,
}

impl ThroughputMeter {
    /// Creates a meter whose window starts now.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Mutex::new(MeterState {
                started_at: Instant::now(),
                counts: BTreeMap::new(),
                units: BTreeMap::new(),
                bytes: BTreeMap::new(),
                frames: BTreeMap::new(),
                heartbeats: BTreeMap::new(),
                heartbeats_suppressed: BTreeMap::new(),
                shards: BTreeMap::new(),
                scheduler: None,
            })),
        }
    }

    /// Records that `device` completed one task worth `units` table units.
    pub fn record(&self, device: &str, units: f64) {
        let mut state = self.inner.lock();
        *state.counts.entry(device.to_string()).or_insert(0) += 1;
        *state.units.entry(device.to_string()).or_insert(0.0) += units;
    }

    /// Records that one wire frame of `bytes` payload bytes travelled on the
    /// channel of `device` (either direction). Together with the task count
    /// this exposes the protocol overhead per task: batching drives the
    /// frames-per-task ratio below one.
    pub fn record_wire(&self, device: &str, bytes: u64) {
        let mut state = self.inner.lock();
        *state.bytes.entry(device.to_string()).or_insert(0) += bytes;
        *state.frames.entry(device.to_string()).or_insert(0) += 1;
    }

    /// Records the fate of one heartbeat slot on the channel of `device`: a
    /// standalone control frame actually sent, or one suppressed because data
    /// traffic within the heartbeat interval already proved liveness.
    pub fn record_heartbeat(&self, device: &str, suppressed: bool) {
        let mut state = self.inner.lock();
        let map = if suppressed { &mut state.heartbeats_suppressed } else { &mut state.heartbeats };
        *map.entry(device.to_string()).or_insert(0) += 1;
    }

    /// Records that `n` values were borrowed from lender shard `shard` and
    /// dispatched towards a volunteer (including re-lends after crashes).
    pub fn record_shard_borrows(&self, shard: usize, n: u64) {
        self.inner.lock().shards.entry(shard).or_default().borrows += n;
    }

    /// Records that `n` results returned by volunteers were accepted by
    /// lender shard `shard`.
    pub fn record_shard_results(&self, shard: usize, n: u64) {
        self.inner.lock().shards.entry(shard).or_default().results += n;
    }

    /// Records a point-in-time observation of shard `shard`'s queues:
    /// `depth` values staged or awaiting re-lend and `in_flight` values
    /// borrowed but not yet answered. Gauges, overwritten on every call.
    pub fn observe_shard(&self, shard: usize, depth: u64, in_flight: u64) {
        let mut state = self.inner.lock();
        let counters = state.shards.entry(shard).or_default();
        counters.depth = depth;
        counters.in_flight = in_flight;
    }

    /// Records a point-in-time observation of the reactor scheduler's
    /// work-conservation counters. A gauge set, overwritten on every call;
    /// deployments on the legacy threads backend never feed it.
    pub fn observe_scheduler(&self, counters: SchedulerCounters) {
        self.inner.lock().scheduler = Some(counters);
    }

    /// Renders the counts observed so far into a report.
    pub fn report(&self) -> ThroughputReport {
        let state = self.inner.lock();
        let elapsed = state.started_at.elapsed();
        let mut devices: Vec<&String> = state.counts.keys().collect();
        for device in state
            .bytes
            .keys()
            .chain(state.heartbeats.keys())
            .chain(state.heartbeats_suppressed.keys())
        {
            if !state.counts.contains_key(device) && !devices.contains(&device) {
                devices.push(device);
            }
        }
        let rows = devices
            .into_iter()
            .map(|device| {
                let units = state.units.get(device).copied().unwrap_or(0.0);
                DeviceThroughput {
                    device: device.clone(),
                    tasks: state.counts.get(device).copied().unwrap_or(0),
                    units,
                    throughput: units / elapsed.as_secs_f64().max(1e-9),
                    wire_bytes: state.bytes.get(device).copied().unwrap_or(0),
                    wire_frames: state.frames.get(device).copied().unwrap_or(0),
                    heartbeats_sent: state.heartbeats.get(device).copied().unwrap_or(0),
                    heartbeats_suppressed: state
                        .heartbeats_suppressed
                        .get(device)
                        .copied()
                        .unwrap_or(0),
                }
            })
            .collect();
        let shards = state
            .shards
            .iter()
            .map(|(&shard, counters)| ShardThroughput {
                shard,
                borrows: counters.borrows,
                results: counters.results,
                depth: counters.depth,
                in_flight: counters.in_flight,
            })
            .collect();
        ThroughputReport { elapsed, rows, shards, scheduler: state.scheduler }
    }
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

/// Throughput of one device over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceThroughput {
    /// Device identifier.
    pub device: String,
    /// Number of tasks completed.
    pub tasks: u64,
    /// Number of table units completed (tasks × units per task).
    pub units: f64,
    /// Average throughput in units per second.
    pub throughput: f64,
    /// Payload bytes that travelled on this device's channel.
    pub wire_bytes: u64,
    /// Wire frames that carried those bytes (batching lowers frames/task).
    pub wire_frames: u64,
    /// Standalone heartbeat control frames actually sent on this channel.
    pub heartbeats_sent: u64,
    /// Heartbeats suppressed because a data frame within the interval
    /// already proved liveness (piggybacked heartbeats).
    pub heartbeats_suppressed: u64,
}

/// Dispatch activity of one lender shard: how many borrows and results its
/// lock served, plus the last observed queue gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardThroughput {
    /// Shard index.
    pub shard: usize,
    /// Values borrowed from this shard and dispatched (incl. re-lends).
    pub borrows: u64,
    /// Results accepted by this shard.
    pub results: u64,
    /// Last observed number of values staged or awaiting re-lend.
    pub depth: u64,
    /// Last observed number of values borrowed but not yet answered.
    pub in_flight: u64,
}

/// The per-device throughput rows of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Length of the measurement window.
    pub elapsed: Duration,
    /// One row per device that completed at least one task.
    pub rows: Vec<DeviceThroughput>,
    /// One row per lender shard that saw dispatch activity (empty when the
    /// deployment never fed shard counters, e.g. a bare meter).
    pub shards: Vec<ShardThroughput>,
    /// Reactor work-conservation counters, if the deployment observed them
    /// (`None` on the legacy threads backend and bare meters).
    pub scheduler: Option<SchedulerCounters>,
}

impl ThroughputReport {
    /// Total throughput across devices, in units per second.
    pub fn total_throughput(&self) -> f64 {
        self.rows.iter().map(|r| r.throughput).sum()
    }

    /// Total number of units completed across devices.
    pub fn total_units(&self) -> f64 {
        self.rows.iter().map(|r| r.units).sum()
    }

    /// Total payload bytes on the wire across devices.
    pub fn total_wire_bytes(&self) -> u64 {
        self.rows.iter().map(|r| r.wire_bytes).sum()
    }

    /// Total wire frames across devices.
    pub fn total_wire_frames(&self) -> u64 {
        self.rows.iter().map(|r| r.wire_frames).sum()
    }

    /// Total standalone heartbeats sent across devices.
    pub fn total_heartbeats_sent(&self) -> u64 {
        self.rows.iter().map(|r| r.heartbeats_sent).sum()
    }

    /// Total heartbeats suppressed by piggybacking across devices.
    pub fn total_heartbeats_suppressed(&self) -> u64 {
        self.rows.iter().map(|r| r.heartbeats_suppressed).sum()
    }

    /// The share (in percent) of the total contributed by `device`, as in the
    /// `%` columns of Table 2.
    pub fn share(&self, device: &str) -> Option<f64> {
        let total = self.total_units();
        if total <= 0.0 {
            return None;
        }
        self.rows.iter().find(|r| r.device == device).map(|r| 100.0 * r.units / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_reports_nothing() {
        let meter = ThroughputMeter::new();
        let report = meter.report();
        assert!(report.rows.is_empty());
        assert_eq!(report.total_units(), 0.0);
        assert_eq!(report.share("phone"), None);
        assert_eq!(report.scheduler, None);
    }

    #[test]
    fn scheduler_counters_are_a_gauge_set() {
        let meter = ThroughputMeter::new();
        meter.observe_scheduler(SchedulerCounters {
            polls: 10,
            wasted_polls: 4,
            kicks_sent: 3,
            kicks_suppressed: 7,
        });
        // A later observation overwrites, never accumulates.
        meter.observe_scheduler(SchedulerCounters {
            polls: 25,
            wasted_polls: 6,
            kicks_sent: 9,
            kicks_suppressed: 11,
        });
        let scheduler = meter.report().scheduler.unwrap();
        assert_eq!(scheduler.polls, 25);
        assert_eq!(scheduler.wasted_polls, 6);
        assert_eq!(scheduler.kicks_sent, 9);
        assert_eq!(scheduler.kicks_suppressed, 11);
    }

    #[test]
    fn counts_accumulate_per_device() {
        let meter = ThroughputMeter::new();
        meter.record("tablet", 1.0);
        meter.record("tablet", 1.0);
        meter.record("phone", 1.0);
        let report = meter.report();
        assert_eq!(report.rows.len(), 2);
        let tablet = report.rows.iter().find(|r| r.device == "tablet").unwrap();
        assert_eq!(tablet.tasks, 2);
        assert_eq!(report.total_units(), 3.0);
        assert!((report.share("tablet").unwrap() - 66.666).abs() < 0.01);
        assert!((report.share("phone").unwrap() - 33.333).abs() < 0.01);
    }

    #[test]
    fn units_scale_throughput() {
        let meter = ThroughputMeter::new();
        meter.record("miner", 2_000.0);
        meter.record("miner", 2_000.0);
        std::thread::sleep(Duration::from_millis(20));
        let report = meter.report();
        assert_eq!(report.rows[0].units, 4_000.0);
        assert!(report.rows[0].throughput > 0.0);
        assert!(report.total_throughput() > 0.0);
        assert!(report.elapsed >= Duration::from_millis(20));
    }

    #[test]
    fn wire_counters_accumulate_per_device() {
        let meter = ThroughputMeter::new();
        meter.record("tablet", 1.0);
        meter.record_wire("tablet", 120);
        meter.record_wire("tablet", 60);
        // A device that only produced traffic so far still gets a row.
        meter.record_wire("phone", 40);
        let report = meter.report();
        assert_eq!(report.rows.len(), 2);
        let tablet = report.rows.iter().find(|r| r.device == "tablet").unwrap();
        assert_eq!((tablet.wire_bytes, tablet.wire_frames), (180, 2));
        let phone = report.rows.iter().find(|r| r.device == "phone").unwrap();
        assert_eq!((phone.tasks, phone.wire_bytes), (0, 40));
        assert_eq!(report.total_wire_bytes(), 220);
        assert_eq!(report.total_wire_frames(), 3);
    }

    #[test]
    fn heartbeat_counters_accumulate_per_device() {
        let meter = ThroughputMeter::new();
        meter.record_heartbeat("tablet", false);
        meter.record_heartbeat("tablet", true);
        meter.record_heartbeat("tablet", true);
        // A device with only suppressed heartbeats still gets a row.
        meter.record_heartbeat("phone", true);
        let report = meter.report();
        let tablet = report.rows.iter().find(|r| r.device == "tablet").unwrap();
        assert_eq!((tablet.heartbeats_sent, tablet.heartbeats_suppressed), (1, 2));
        let phone = report.rows.iter().find(|r| r.device == "phone").unwrap();
        assert_eq!((phone.heartbeats_sent, phone.heartbeats_suppressed), (0, 1));
        assert_eq!(report.total_heartbeats_sent(), 1);
        assert_eq!(report.total_heartbeats_suppressed(), 3);
    }

    #[test]
    fn shard_counters_accumulate_and_gauges_overwrite() {
        let meter = ThroughputMeter::new();
        meter.record_shard_borrows(0, 4);
        meter.record_shard_borrows(0, 2);
        meter.record_shard_results(0, 5);
        meter.record_shard_borrows(2, 1);
        meter.observe_shard(0, 3, 1);
        meter.observe_shard(0, 0, 2);
        let report = meter.report();
        assert_eq!(report.shards.len(), 2);
        let shard0 = report.shards.iter().find(|s| s.shard == 0).unwrap();
        assert_eq!((shard0.borrows, shard0.results), (6, 5));
        assert_eq!((shard0.depth, shard0.in_flight), (0, 2), "gauges keep the last observation");
        let shard2 = report.shards.iter().find(|s| s.shard == 2).unwrap();
        assert_eq!((shard2.borrows, shard2.results), (1, 0));
        // A meter that never saw shard traffic reports no shard rows.
        assert!(ThroughputMeter::new().report().shards.is_empty());
    }

    #[test]
    fn meter_is_shared_between_clones() {
        let meter = ThroughputMeter::new();
        let clone = meter.clone();
        clone.record("a", 1.0);
        assert_eq!(meter.report().rows.len(), 1);
    }
}
