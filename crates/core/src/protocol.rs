//! Wire messages exchanged between the master and the workers.
//!
//! The original Pando streams base64-encoded *strings* (the `'/pando/1.0.0'`
//! convention); this reproduction's protocol is binary end to end. Every
//! task and result payload is a [`Bytes`] buffer, the sequence number is a
//! fixed 8-byte big-endian header (no `format!`/`parse` on the hot path),
//! and the batched variants pack many `(seq, payload)` records into a single
//! length-delimited frame of [`pando_netsim::codec`] so a whole batch pays
//! the channel round-trip once.
//!
//! Wire layout (after the 5-byte frame header `tag, u32 len`):
//!
//! | Message | Body |
//! |---|---|
//! | `Task`, `TaskResult`, `TaskError` | `u64 seq` then the raw payload |
//! | `TaskBatch`, `ResultBatch` | `u32 count` then per record `u64 seq, u32 len, payload` |
//! | `Heartbeat`, `Goodbye` | empty |
//! | `Ack` | `u64 count` — cumulative data frames received on this session |

use bytes::{Bytes, BytesMut};
use pando_netsim::codec::{
    decode_frame, decode_record_body, encode_frame, encode_record_body, record_body_len, Record,
    FRAME_HEADER_LEN,
};
use pando_pull_stream::StreamError;

/// A message of the Pando master/worker protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A value to process, tagged with its position in the input stream.
    Task {
        /// Sequence number of the value in the input stream.
        seq: u64,
        /// The encoded input value.
        payload: Bytes,
    },
    /// The result of a processed value.
    TaskResult {
        /// Sequence number of the value this result answers.
        seq: u64,
        /// The encoded result value.
        payload: Bytes,
    },
    /// The worker reports an application error for a value; the master treats
    /// the worker as faulty and re-lends the value elsewhere.
    TaskError {
        /// Sequence number of the value that failed.
        seq: u64,
        /// UTF-8 error message produced by the processing function.
        message: Bytes,
    },
    /// Several tasks coalesced into one frame: the whole batch pays the
    /// channel latency and framing overhead once.
    TaskBatch(Vec<Record>),
    /// Several results coalesced into one frame by the worker.
    ResultBatch(Vec<Record>),
    /// Periodic liveness signal.
    Heartbeat,
    /// The sender is leaving cleanly and will not send anything else.
    Goodbye,
    /// Cumulative acknowledgement: the sender has received and durably
    /// processed this many *data* frames (see [`Message::is_data`]) on the
    /// current session. Lets the peer garbage-collect its bounded
    /// unacked-frame redelivery buffer; never redelivered itself.
    Ack {
        /// Total data frames received on the session so far.
        count: u64,
    },
}

const TAG_TASK: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_GOODBYE: u8 = 5;
const TAG_TASK_BATCH: u8 = 6;
const TAG_RESULT_BATCH: u8 = 7;
const TAG_ACK: u8 = 8;

/// Body of a single `(seq, payload)` message: the fixed 8-byte big-endian
/// sequence header followed by the raw payload.
fn encode_seq_body(seq: u64, payload: &[u8]) -> Bytes {
    let mut body = BytesMut::with_capacity(8 + payload.len());
    body.extend_from_slice(&seq.to_be_bytes());
    body.extend_from_slice(payload);
    body.freeze()
}

/// Splits a single-record body into its sequence header and payload. The
/// payload is a zero-copy slice of `body`.
fn decode_seq_body(body: &Bytes) -> Result<(u64, Bytes), StreamError> {
    if body.len() < 8 {
        return Err(StreamError::protocol("message body shorter than its sequence header"));
    }
    let seq = u64::from_be_bytes(body[..8].try_into().expect("checked length above"));
    Ok((seq, body.slice(8..)))
}

impl Message {
    /// Encodes the message as one length-delimited frame.
    ///
    /// # Errors
    ///
    /// Returns a protocol error if the payload (or batch body) exceeds the
    /// frame-size limit of [`pando_netsim::codec::MAX_FRAME_LEN`]; an
    /// infallible encode would silently truncate the length field.
    pub fn encode(&self) -> Result<Bytes, StreamError> {
        match self {
            Message::Task { seq, payload } => {
                encode_frame(TAG_TASK, &encode_seq_body(*seq, payload))
            }
            Message::TaskResult { seq, payload } => {
                encode_frame(TAG_RESULT, &encode_seq_body(*seq, payload))
            }
            Message::TaskError { seq, message } => {
                encode_frame(TAG_ERROR, &encode_seq_body(*seq, message))
            }
            Message::TaskBatch(records) => {
                encode_frame(TAG_TASK_BATCH, &encode_record_body(records)?)
            }
            Message::ResultBatch(records) => {
                encode_frame(TAG_RESULT_BATCH, &encode_record_body(records)?)
            }
            Message::Heartbeat => encode_frame(TAG_HEARTBEAT, b""),
            Message::Goodbye => encode_frame(TAG_GOODBYE, b""),
            Message::Ack { count } => encode_frame(TAG_ACK, &count.to_be_bytes()),
        }
    }

    /// Size in bytes of the encoded message, used for bandwidth modelling.
    /// Computed arithmetically — no allocation or encoding pass.
    pub fn wire_size(&self) -> usize {
        FRAME_HEADER_LEN
            + match self {
                Message::Task { payload, .. }
                | Message::TaskResult { payload, .. }
                | Message::TaskError { message: payload, .. } => 8 + payload.len(),
                Message::TaskBatch(records) | Message::ResultBatch(records) => {
                    record_body_len(records)
                }
                Message::Ack { .. } => 8,
                Message::Heartbeat | Message::Goodbye => 0,
            }
    }

    /// Number of task/result records the message carries, for per-record
    /// channel accounting.
    pub fn record_count(&self) -> u64 {
        match self {
            Message::Task { .. } | Message::TaskResult { .. } | Message::TaskError { .. } => 1,
            Message::TaskBatch(records) | Message::ResultBatch(records) => records.len() as u64,
            Message::Heartbeat | Message::Goodbye | Message::Ack { .. } => 0,
        }
    }

    /// Whether this message counts towards the session-layer data-frame
    /// sequence. Both ends of a resumable session must classify frames
    /// identically — the cumulative [`Message::Ack`] counts and the
    /// redelivery cursor exchanged at resume are indices into this sequence.
    /// Control frames (`Heartbeat`, `Goodbye`, `Ack` itself) are excluded:
    /// they are cheap to lose and must never be redelivered.
    pub fn is_data(&self) -> bool {
        matches!(
            self,
            Message::Task { .. }
                | Message::TaskResult { .. }
                | Message::TaskError { .. }
                | Message::TaskBatch(_)
                | Message::ResultBatch(_)
        )
    }

    /// Builds the task frame for one coalesced dispatch batch: a lone record
    /// travels as [`Message::Task`], several as [`Message::TaskBatch`]. Both
    /// volunteer backends build their frames through this one function so
    /// the wire protocol cannot diverge between them.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty — the dispatcher never coalesces an
    /// empty frame.
    pub fn task_frame(mut records: Vec<Record>) -> Message {
        assert!(!records.is_empty(), "a task frame carries at least one record");
        if records.len() == 1 {
            let record = records.pop().expect("one record present");
            Message::Task { seq: record.seq, payload: record.payload }
        } else {
            Message::TaskBatch(records)
        }
    }

    /// Demultiplexes a result frame into per-record calls of `accept` and
    /// returns `true`, or returns `false` for any non-result message. The
    /// shared receive rule of both volunteer backends: the caller decides
    /// (through `accept`) what a late or duplicate result means.
    pub fn demux_results(self, mut accept: impl FnMut(u64, Bytes)) -> bool {
        match self {
            Message::TaskResult { seq, payload } => {
                accept(seq, payload);
                true
            }
            Message::ResultBatch(records) => {
                for record in records {
                    accept(record.seq, record.payload);
                }
                true
            }
            _ => false,
        }
    }

    /// Decodes a message from one encoded frame. Record payloads are
    /// zero-copy slices of the frame buffer.
    ///
    /// # Errors
    ///
    /// Returns a protocol error on truncated frames, unknown tags or
    /// malformed bodies.
    pub fn decode(frame: &[u8]) -> Result<Message, StreamError> {
        let mut buf = BytesMut::from(frame);
        let decoded = decode_frame(&mut buf)?
            .ok_or_else(|| StreamError::protocol("truncated message frame"))?;
        match decoded.tag {
            TAG_TASK => {
                let (seq, payload) = decode_seq_body(&decoded.payload)?;
                Ok(Message::Task { seq, payload })
            }
            TAG_RESULT => {
                let (seq, payload) = decode_seq_body(&decoded.payload)?;
                Ok(Message::TaskResult { seq, payload })
            }
            TAG_ERROR => {
                let (seq, message) = decode_seq_body(&decoded.payload)?;
                Ok(Message::TaskError { seq, message })
            }
            TAG_TASK_BATCH => Ok(Message::TaskBatch(decode_record_body(&decoded.payload)?)),
            TAG_RESULT_BATCH => Ok(Message::ResultBatch(decode_record_body(&decoded.payload)?)),
            TAG_HEARTBEAT => Ok(Message::Heartbeat),
            TAG_GOODBYE => Ok(Message::Goodbye),
            TAG_ACK => {
                let body = &decoded.payload;
                if body.len() != 8 {
                    return Err(StreamError::protocol("ack body must be exactly 8 bytes"));
                }
                let count = u64::from_be_bytes(body[..8].try_into().expect("checked length above"));
                Ok(Message::Ack { count })
            }
            other => Err(StreamError::protocol(format!("unknown message tag {other}"))),
        }
    }
}

/// What a [`HeartbeatPacer`] decided at a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatAction {
    /// The heartbeat interval has not elapsed yet; nothing to do.
    NotDue,
    /// A standalone [`Message::Heartbeat`] frame should be sent now: the
    /// channel has been idle for a full interval.
    Send,
    /// A heartbeat was due but a data frame travelled within the interval and
    /// already proved liveness — the control frame is suppressed (piggyback).
    Suppressed,
}

/// Piggybacks heartbeats on data traffic: a standalone [`Message::Heartbeat`]
/// control frame is only emitted when the sender has been silent for a full
/// heartbeat interval. Any outgoing `TaskBatch`/`ResultBatch` (or any other
/// frame) counts as a sign of life and suppresses the next standalone
/// heartbeat, cutting idle-channel chatter to zero on busy channels.
#[derive(Debug, Clone)]
pub struct HeartbeatPacer {
    interval: std::time::Duration,
    last_traffic: std::time::Instant,
    next_due: std::time::Instant,
    suppressed: u64,
    sent: u64,
}

impl HeartbeatPacer {
    /// Creates a pacer; the first heartbeat is due one interval from now.
    pub fn new(interval: std::time::Duration) -> Self {
        Self::new_at(interval, std::time::Instant::now())
    }

    /// Creates a pacer whose notion of "now" is supplied by the caller — the
    /// form used by components on a virtual
    /// [`Clock`](pando_netsim::sim::Clock). The first heartbeat is due one
    /// interval after `now`.
    pub fn new_at(interval: std::time::Duration, now: std::time::Instant) -> Self {
        Self { interval, last_traffic: now, next_due: now + interval, suppressed: 0, sent: 0 }
    }

    /// Records that a data frame was just sent on the channel.
    pub fn on_traffic(&mut self) {
        self.on_traffic_at(std::time::Instant::now());
    }

    /// Like [`HeartbeatPacer::on_traffic`], against an explicit `now`.
    pub fn on_traffic_at(&mut self, now: std::time::Instant) {
        self.last_traffic = now;
    }

    /// Decides whether a standalone heartbeat is required right now. When it
    /// answers [`HeartbeatAction::Send`] the caller must actually send the
    /// frame (and need not call [`HeartbeatPacer::on_traffic`] for it — the
    /// pacer books it itself).
    pub fn poll(&mut self) -> HeartbeatAction {
        self.poll_at(std::time::Instant::now())
    }

    /// Like [`HeartbeatPacer::poll`], against an explicit `now`.
    pub fn poll_at(&mut self, now: std::time::Instant) -> HeartbeatAction {
        if now < self.next_due {
            return HeartbeatAction::NotDue;
        }
        self.next_due = now + self.interval;
        if now.duration_since(self.last_traffic) < self.interval {
            self.suppressed += 1;
            HeartbeatAction::Suppressed
        } else {
            self.sent += 1;
            self.last_traffic = now;
            HeartbeatAction::Send
        }
    }

    /// The instant at which the next standalone heartbeat may become due.
    pub fn next_due(&self) -> std::time::Instant {
        self.next_due
    }

    /// Number of standalone heartbeats sent so far.
    pub fn heartbeats_sent(&self) -> u64 {
        self.sent
    }

    /// Number of heartbeats suppressed by piggybacking on data traffic.
    pub fn heartbeats_suppressed(&self) -> u64 {
        self.suppressed
    }
}

/// Adaptive `tasks_per_frame` policy: sizes dispatch frames from observed
/// channel behaviour instead of a static limit.
///
/// The driving signal is the per-channel `records_sent / messages_sent`
/// ratio already exported by [`pando_netsim::channel::Endpoint`]: when it
/// runs close to the current limit, every frame leaves full — the channel is
/// round-trip-bound and larger batches would amortise the RTT further, so
/// the limit grows (doubling, up to `max`). The policy tracks the same
/// signal incrementally as a streak of full frames, so no channel snapshot
/// is needed on the hot path. When the lender starves — the dispatcher had
/// window slots but no value was available — large frames only add latency
/// without improving utilisation, so the limit shrinks (halving, down to
/// `min`).
///
/// One `BatchPolicy` lives per reactor driver (per channel): a high-RTT
/// channel grows independently of a starved one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    min: usize,
    max: usize,
    limit: usize,
    full_streak: u32,
}

impl BatchPolicy {
    /// Number of consecutive full frames required before the limit grows.
    /// Two in a row distinguishes a round-trip-bound channel from a single
    /// coincidental burst.
    const GROW_STREAK: u32 = 2;

    /// Creates a policy bounded by `[min, max]`, starting at `min`: the
    /// limit must earn its growth by proving frames run full.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min > 0, "the batch limit must be at least 1");
        assert!(min <= max, "the minimum batch limit cannot exceed the maximum");
        Self { min, max, limit: min, full_streak: 0 }
    }

    /// The current per-frame coalescing limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Books one dispatched frame of `records` tasks. A streak of frames
    /// filled to the limit doubles it (capped at `max`).
    pub fn on_frame(&mut self, records: usize) {
        if records >= self.limit && self.limit < self.max {
            self.full_streak += 1;
            if self.full_streak >= Self::GROW_STREAK {
                self.limit = (self.limit * 2).min(self.max);
                self.full_streak = 0;
            }
        } else {
            self.full_streak = 0;
        }
    }

    /// Books a lender starvation observed while dispatching: the channel is
    /// input-bound, so the limit halves (floored at `min`).
    pub fn on_starved(&mut self) {
        self.limit = (self.limit / 2).max(self.min);
        self.full_streak = 0;
    }
}

/// Jittered exponential backoff for retry loops: reconnecting volunteers
/// now, sub-master lease retries later.
///
/// Each call to [`Backoff::next_delay`] doubles the nominal delay (starting
/// at `base`, capped at `cap`) and returns a uniformly jittered value in
/// `[nominal/2, nominal]` so a fleet of volunteers knocked offline by the
/// same network event does not reconnect in lock-step. The jitter source is
/// a seeded xorshift64 — no wall-clock or OS entropy, so retry schedules are
/// reproducible under the deterministic sim, matching the explicit-`now`
/// idiom of [`HeartbeatPacer`].
#[derive(Debug, Clone)]
pub struct Backoff {
    base: std::time::Duration,
    cap: std::time::Duration,
    max_attempts: u32,
    attempt: u32,
    rng_state: u64,
    seed: u64,
}

impl Backoff {
    /// Creates a backoff schedule.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero, `cap` is below `base`, or `max_attempts`
    /// is zero — each would describe a retry loop that spins or never runs.
    pub fn new(
        base: std::time::Duration,
        cap: std::time::Duration,
        max_attempts: u32,
        seed: u64,
    ) -> Self {
        assert!(!base.is_zero(), "a zero base delay would busy-retry");
        assert!(cap >= base, "the delay cap cannot undercut the base delay");
        assert!(max_attempts > 0, "a backoff must allow at least one attempt");
        // xorshift64 has a fixed point at zero; fold the seed into a non-zero
        // state so seed 0 still jitters.
        let rng_state = seed ^ 0x9E37_79B9_7F4A_7C15;
        Self { base, cap, max_attempts, attempt: 0, rng_state, seed }
    }

    /// Number of delays handed out since creation or the last
    /// [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Whether the attempt budget is spent: the next
    /// [`Backoff::next_delay`] would answer `None`.
    pub fn exhausted(&self) -> bool {
        self.attempt >= self.max_attempts
    }

    /// Returns the jittered delay to wait before the next attempt, or `None`
    /// once `max_attempts` delays have been handed out — the caller should
    /// then give up and surface a permanent failure.
    pub fn next_delay(&mut self) -> Option<std::time::Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        let doublings = self.attempt.min(32);
        let nominal = self
            .base
            .checked_mul(1u32 << doublings.min(31))
            .map(|d| d.min(self.cap))
            .unwrap_or(self.cap);
        self.attempt += 1;
        // Uniform jitter in [nominal/2, nominal].
        let nanos = nominal.as_nanos().max(1) as u64;
        let half = nanos / 2;
        let jittered = half + self.next_rand() % (nanos - half + 1);
        Some(std::time::Duration::from_nanos(jittered))
    }

    /// Rewinds the schedule after a successful attempt: the next failure
    /// starts again from `base` with the original seed, so a reconnect cycle
    /// replays identically under the deterministic sim.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.rng_state = self.seed ^ 0x9E37_79B9_7F4A_7C15;
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    #[test]
    fn batch_policy_grows_on_full_frames_and_shrinks_on_starvation() {
        let mut policy = BatchPolicy::new(1, 16);
        assert_eq!(policy.limit(), 1);
        // One full frame is not enough; a streak is.
        policy.on_frame(1);
        assert_eq!(policy.limit(), 1);
        policy.on_frame(1);
        assert_eq!(policy.limit(), 2);
        policy.on_frame(2);
        policy.on_frame(2);
        assert_eq!(policy.limit(), 4);
        // A partial frame resets the streak.
        policy.on_frame(4);
        policy.on_frame(3);
        policy.on_frame(4);
        assert_eq!(policy.limit(), 4);
        policy.on_frame(4);
        assert_eq!(policy.limit(), 8);
        // Growth caps at the maximum.
        for _ in 0..8 {
            policy.on_frame(policy.limit());
        }
        assert_eq!(policy.limit(), 16);
        // Starvation halves down to the floor.
        policy.on_starved();
        assert_eq!(policy.limit(), 8);
        for _ in 0..8 {
            policy.on_starved();
        }
        assert_eq!(policy.limit(), 1);
    }

    #[test]
    fn batch_policy_degenerate_range_stays_fixed() {
        let mut policy = BatchPolicy::new(3, 3);
        policy.on_frame(3);
        policy.on_frame(3);
        policy.on_starved();
        assert_eq!(policy.limit(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn batch_policy_zero_minimum_is_rejected() {
        let _ = BatchPolicy::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn batch_policy_inverted_range_is_rejected() {
        let _ = BatchPolicy::new(5, 4);
    }

    #[test]
    fn task_frame_picks_the_single_or_batched_variant() {
        let single = Message::task_frame(vec![Record::new(3, bytes(b"x"))]);
        assert_eq!(single, Message::Task { seq: 3, payload: bytes(b"x") });
        let batch =
            Message::task_frame(vec![Record::new(1, bytes(b"a")), Record::new(2, bytes(b"b"))]);
        assert_eq!(batch.record_count(), 2);
    }

    #[test]
    fn demux_results_visits_result_records_only() {
        let mut seen = Vec::new();
        assert!(Message::TaskResult { seq: 4, payload: bytes(b"r") }
            .demux_results(|seq, payload| seen.push((seq, payload))));
        assert!(Message::ResultBatch(vec![
            Record::new(5, bytes(b"s")),
            Record::new(6, bytes(b"t")),
        ])
        .demux_results(|seq, payload| seen.push((seq, payload))));
        assert_eq!(
            seen,
            vec![(4, bytes(b"r")), (5, bytes(b"s")), (6, bytes(b"t"))],
            "records arrive in frame order"
        );
        assert!(!Message::Heartbeat.demux_results(|_, _| panic!("no records")));
        assert!(!Message::Task { seq: 0, payload: bytes(b"") }.demux_results(|_, _| ()));
    }

    #[test]
    fn pacer_sends_only_after_a_silent_interval() {
        use std::time::Duration;
        let mut pacer = HeartbeatPacer::new(Duration::from_millis(20));
        assert_eq!(pacer.poll(), HeartbeatAction::NotDue);
        std::thread::sleep(Duration::from_millis(25));
        // Idle for a full interval: a standalone heartbeat goes out.
        assert_eq!(pacer.poll(), HeartbeatAction::Send);
        assert_eq!(pacer.poll(), HeartbeatAction::NotDue);
        // Traffic inside the next interval suppresses the following beat.
        std::thread::sleep(Duration::from_millis(15));
        pacer.on_traffic();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(pacer.poll(), HeartbeatAction::Suppressed);
        assert_eq!(pacer.heartbeats_sent(), 1);
        assert_eq!(pacer.heartbeats_suppressed(), 1);
        assert!(pacer.next_due() > std::time::Instant::now());
    }

    #[test]
    fn round_trip_every_variant() {
        let messages = [
            Message::Task { seq: 0, payload: bytes(b"0.52") },
            Message::TaskResult { seq: 7, payload: bytes(b"foobar") },
            Message::TaskError { seq: 3, message: bytes(b"render failed") },
            Message::TaskBatch(vec![
                Record::new(1, bytes(b"a")),
                Record::new(2, bytes(b"")),
                Record::new(u64::MAX, bytes(&[0, 10, 255])),
            ]),
            Message::ResultBatch(vec![Record::new(9, bytes(b"r"))]),
            Message::Heartbeat,
            Message::Goodbye,
            Message::Ack { count: 0 },
            Message::Ack { count: u64::MAX },
        ];
        for message in messages {
            let encoded = message.encode().unwrap();
            assert_eq!(Message::decode(&encoded).unwrap(), message);
            assert_eq!(encoded.len(), message.wire_size(), "wire_size must match the encoding");
        }
    }

    #[test]
    fn binary_payloads_survive() {
        // Newlines, NUL bytes and invalid UTF-8 are all fine: the seq header
        // is fixed-width, not separator-based.
        let payload = bytes(&[b'\n', 0, 0xff, 0xfe, b'\n', 0]);
        let message = Message::Task { seq: 1, payload };
        assert_eq!(Message::decode(&message.encode().unwrap()).unwrap(), message);
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message::Task { seq: 0, payload: bytes(b"x") };
        let large = Message::Task { seq: 0, payload: Bytes::from(vec![b'x'; 10_000]) };
        assert!(large.wire_size() > small.wire_size() + 9_000);
        assert!(Message::Heartbeat.wire_size() < 10);
    }

    #[test]
    fn batching_amortises_framing_overhead() {
        // Per record the batch pays a 4-byte length field more than a single
        // frame's body, but saves the 5-byte frame header — so beyond ~9
        // records a batch is also smaller in bytes, on top of collapsing N
        // channel round-trips into one.
        let singles: usize =
            (0..16).map(|seq| Message::Task { seq, payload: bytes(b"payload") }.wire_size()).sum();
        let batch =
            Message::TaskBatch((0..16).map(|seq| Record::new(seq, bytes(b"payload"))).collect());
        assert!(
            batch.wire_size() < singles,
            "batch {} must be smaller than 16 single frames {singles}",
            batch.wire_size()
        );
        assert_eq!(batch.record_count(), 16);
        assert_eq!(Message::Heartbeat.record_count(), 0);
    }

    #[test]
    fn decoded_batch_payloads_share_one_allocation() {
        let message = Message::TaskBatch(vec![
            Record::new(0, bytes(b"first")),
            Record::new(1, bytes(b"second")),
        ]);
        let Message::TaskBatch(records) = Message::decode(&message.encode().unwrap()).unwrap()
        else {
            panic!("expected a task batch");
        };
        assert!(records[0].payload.shares_allocation_with(&records[1].payload));
    }

    #[test]
    fn oversized_message_encode_fails_cleanly() {
        let message = Message::Task {
            seq: 0,
            payload: Bytes::from(vec![0u8; pando_netsim::codec::MAX_FRAME_LEN + 1]),
        };
        assert!(message.encode().unwrap_err().is_protocol());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[1, 2, 3]).is_err());
        // Unknown tag.
        let frame = encode_frame(42, &encode_seq_body(0, b"x")).unwrap();
        assert!(Message::decode(&frame).is_err());
        // Task too short for the fixed seq header.
        let frame = encode_frame(TAG_TASK, b"1234").unwrap();
        assert!(Message::decode(&frame).is_err());
        // Batch with a corrupt record body.
        let frame = encode_frame(TAG_TASK_BATCH, &[0, 0, 0, 5]).unwrap();
        assert!(Message::decode(&frame).is_err());
        // Ack with a body that is not exactly 8 bytes.
        let frame = encode_frame(TAG_ACK, &[0, 0, 0]).unwrap();
        assert!(Message::decode(&frame).is_err());
    }

    #[test]
    fn data_classification_matches_the_session_contract() {
        assert!(Message::Task { seq: 0, payload: bytes(b"x") }.is_data());
        assert!(Message::TaskResult { seq: 0, payload: bytes(b"x") }.is_data());
        assert!(Message::TaskError { seq: 0, message: bytes(b"x") }.is_data());
        assert!(Message::TaskBatch(vec![Record::new(0, bytes(b"x"))]).is_data());
        assert!(Message::ResultBatch(vec![Record::new(0, bytes(b"x"))]).is_data());
        assert!(!Message::Heartbeat.is_data());
        assert!(!Message::Goodbye.is_data());
        assert!(!Message::Ack { count: 3 }.is_data());
    }

    #[test]
    fn backoff_doubles_jitters_and_caps() {
        use std::time::Duration;
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 12, 42);
        let mut previous_nominal = Duration::ZERO;
        for attempt in 0..12u32 {
            let nominal =
                (Duration::from_millis(10) * 2u32.pow(attempt.min(16))).min(Duration::from_secs(1));
            let delay = backoff.next_delay().expect("within the attempt budget");
            assert!(
                delay >= nominal / 2 && delay <= nominal,
                "attempt {attempt}: {delay:?} outside [{:?}, {nominal:?}]",
                nominal / 2
            );
            assert!(nominal >= previous_nominal, "the nominal delay never shrinks");
            previous_nominal = nominal;
        }
        // The cap was reached well before the budget ran out.
        assert_eq!(previous_nominal, Duration::from_secs(1));
        assert!(backoff.exhausted());
        assert_eq!(backoff.next_delay(), None, "the budget is a hard stop");
        assert_eq!(backoff.attempt(), 12);
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_reset_replays() {
        use std::time::Duration;
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(500), 8, seed);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same jitter");
        assert_ne!(schedule(7), schedule(8), "different seeds de-correlate the fleet");
        // Seed 0 must not degenerate (xorshift zero fixed point is avoided).
        let zeros = schedule(0);
        assert_eq!(zeros.len(), 8);
        assert!(zeros.windows(2).any(|w| w[0] != w[1]), "seed 0 still jitters");
        // reset() rewinds both the attempt counter and the jitter stream.
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(500), 8, 7);
        let first: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        b.reset();
        assert!(!b.exhausted());
        let second: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "busy-retry")]
    fn backoff_zero_base_is_rejected() {
        let _ = Backoff::new(std::time::Duration::ZERO, std::time::Duration::from_secs(1), 3, 0);
    }

    #[test]
    #[should_panic(expected = "cannot undercut")]
    fn backoff_inverted_range_is_rejected() {
        let _ = Backoff::new(
            std::time::Duration::from_secs(2),
            std::time::Duration::from_secs(1),
            3,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn backoff_zero_attempts_is_rejected() {
        let _ = Backoff::new(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_secs(1),
            0,
            0,
        );
    }
}
