//! Wire messages exchanged between the master and the workers.
//!
//! Values and results are strings (the `'/pando/1.0.0'` convention); each
//! message is framed with the length-delimited codec of
//! [`pando_netsim::codec`] so that its wire size is realistic and measurable.

use bytes::BytesMut;
use pando_netsim::codec::{decode_frame, encode_frame};
use pando_pull_stream::StreamError;

/// A message of the Pando master/worker protocol.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Message {
    /// A value to process, tagged with its position in the input stream.
    Task {
        /// Sequence number of the value in the input stream.
        seq: u64,
        /// The serialized input value.
        payload: String,
    },
    /// The result of a processed value.
    TaskResult {
        /// Sequence number of the value this result answers.
        seq: u64,
        /// The serialized result value.
        payload: String,
    },
    /// The worker reports an application error for a value; the master treats
    /// the worker as faulty and re-lends the value elsewhere.
    TaskError {
        /// Sequence number of the value that failed.
        seq: u64,
        /// Error message produced by the processing function.
        message: String,
    },
    /// Periodic liveness signal.
    Heartbeat,
    /// The sender is leaving cleanly and will not send anything else.
    Goodbye,
}

const TAG_TASK: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_ERROR: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_GOODBYE: u8 = 5;

impl Message {
    /// Encodes the message as one length-delimited frame.
    pub fn encode(&self) -> Vec<u8> {
        let (tag, body) = match self {
            Message::Task { seq, payload } => (TAG_TASK, format!("{seq}\n{payload}")),
            Message::TaskResult { seq, payload } => (TAG_RESULT, format!("{seq}\n{payload}")),
            Message::TaskError { seq, message } => (TAG_ERROR, format!("{seq}\n{message}")),
            Message::Heartbeat => (TAG_HEARTBEAT, String::new()),
            Message::Goodbye => (TAG_GOODBYE, String::new()),
        };
        encode_frame(tag, body.as_bytes()).to_vec()
    }

    /// Size in bytes of the encoded message, used for bandwidth modelling.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Decodes a message from one encoded frame.
    ///
    /// # Errors
    ///
    /// Returns a protocol error on truncated frames, unknown tags or
    /// malformed bodies.
    pub fn decode(frame: &[u8]) -> Result<Message, StreamError> {
        let mut buf = BytesMut::from(frame);
        let decoded = decode_frame(&mut buf)?
            .ok_or_else(|| StreamError::protocol("truncated message frame"))?;
        let body = String::from_utf8(decoded.payload.to_vec())
            .map_err(|_| StreamError::protocol("message body is not valid UTF-8"))?;
        let parse_seq_body = |body: &str| -> Result<(u64, String), StreamError> {
            let (seq, rest) = body
                .split_once('\n')
                .ok_or_else(|| StreamError::protocol("missing sequence separator"))?;
            let seq = seq
                .parse()
                .map_err(|_| StreamError::protocol("sequence number is not an integer"))?;
            Ok((seq, rest.to_string()))
        };
        match decoded.tag {
            TAG_TASK => {
                let (seq, payload) = parse_seq_body(&body)?;
                Ok(Message::Task { seq, payload })
            }
            TAG_RESULT => {
                let (seq, payload) = parse_seq_body(&body)?;
                Ok(Message::TaskResult { seq, payload })
            }
            TAG_ERROR => {
                let (seq, message) = parse_seq_body(&body)?;
                Ok(Message::TaskError { seq, message })
            }
            TAG_HEARTBEAT => Ok(Message::Heartbeat),
            TAG_GOODBYE => Ok(Message::Goodbye),
            other => Err(StreamError::protocol(format!("unknown message tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_variant() {
        let messages = [
            Message::Task { seq: 0, payload: "0.52".to_string() },
            Message::TaskResult { seq: 7, payload: "Zm9vYmFy".to_string() },
            Message::TaskError { seq: 3, message: "render failed".to_string() },
            Message::Heartbeat,
            Message::Goodbye,
        ];
        for message in messages {
            let encoded = message.encode();
            assert_eq!(Message::decode(&encoded).unwrap(), message);
        }
    }

    #[test]
    fn payloads_with_newlines_survive() {
        let message = Message::Task { seq: 1, payload: "line1\nline2\nline3".to_string() };
        assert_eq!(Message::decode(&message.encode()).unwrap(), message);
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message::Task { seq: 0, payload: "x".to_string() };
        let large = Message::Task { seq: 0, payload: "x".repeat(10_000) };
        assert!(large.wire_size() > small.wire_size() + 9_000);
        assert!(Message::Heartbeat.wire_size() < 10);
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[1, 2, 3]).is_err());
        // Unknown tag.
        let frame = pando_netsim::codec::encode_frame(42, b"0\nx");
        assert!(Message::decode(&frame).is_err());
        // Task without a sequence separator.
        let frame = pando_netsim::codec::encode_frame(1, b"no-separator");
        assert!(Message::decode(&frame).is_err());
        // Non-numeric sequence number.
        let frame = pando_netsim::codec::encode_frame(1, b"abc\npayload");
        assert!(Message::decode(&frame).is_err());
    }
}
