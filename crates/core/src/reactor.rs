//! The event-driven volunteer reactor.
//!
//! The original master wired every volunteer with two dedicated pump threads
//! (dispatcher + receiver), which caps one master at low thousands of
//! volunteers. This module replaces those pumps with an epoll-style reactor:
//! a small fixed pool of [`ReactorConfig::threads`](crate::config::ReactorConfig::threads)
//! OS threads multiplexes dispatch *and* receive for all volunteers.
//!
//! The moving parts:
//!
//! * **Ready queue** — every volunteer is a driver state machine. An
//!   endpoint waker ([`Endpoint::set_waker`](pando_netsim::channel::Endpoint::set_waker)) enqueues the driver when a
//!   frame arrives or the peer closes/crashes/drops; a wake while the driver
//!   is being polled sets a *dirty* flag so the poll is re-run instead of
//!   lost (no missed wake-ups).
//! * **Timer heap** — frames whose simulated latency has not elapsed, crash
//!   suspicions that mature later ([`Endpoint::next_ready_at`](pando_netsim::channel::Endpoint::next_ready_at)) and heartbeat
//!   deadlines are re-polled via a monotonic timer heap; reactor threads
//!   sleep exactly until the earliest deadline.
//! * **Per-shard starved sets with bounded kicks** — every driver is pinned
//!   to one lender shard ([`ShardedLender`]); a driver with free window
//!   slots but no lendable value parks in its *shard's* starved set, and the
//!   shard's change waker ([`ShardedLender::add_shard_waker`]) kicks that
//!   set whenever a value may have become available there (input progress, a
//!   re-lend after a crash). A kick is *wake-limited*: it wakes at most
//!   `min(parked, shard lendable depth)` drivers (never fewer than one), so
//!   a single staged value no longer thunders the whole herd of parked
//!   drivers awake. An epoch counter per shard closes the register-vs-notify
//!   race, and a per-shard heartbeat-interval *backstop timer* re-kicks any
//!   shard that still has lendable work and parked drivers, so a lost or
//!   under-counted wake can delay a driver by at most one interval. A driver
//!   whose shard drains while another shard still holds work re-lends
//!   itself there (*shard hopping*), so crashes can never strand values on a
//!   device-less shard.
//! * **Shard affinity** — the ready queue is segmented per shard: a wake
//!   enqueues the driver on its shard's FIFO, and pool thread `t` prefers
//!   the queue of shard `t % shards` before stealing from the others in
//!   wrap-around order. Drivers of one shard are therefore mostly polled by
//!   the same thread (warm lender locks and caches) while the stealing
//!   fallback keeps every thread work-conserving.
//! * **Per-shard input pumps** — reactor threads never block, but some
//!   inputs only answer blocking pulls (interactive queues, feedback
//!   loops). One dedicated pump thread per shard calls
//!   [`ShardedLender::prefetch_shard`] while that shard's starved drivers
//!   demand input, staging values for non-blocking asks. These are the
//!   `+ shards` constant threads of the design.
//!
//! Dispatch preserves the batching semantics of the threaded path: values
//! are coalesced up to `tasks_per_frame` and the [`MAX_FRAME_LEN`] byte
//! budget, window slots bound the in-flight count per volunteer, and
//! heartbeats piggyback on data frames (an endpoint with traffic inside the
//! heartbeat interval suppresses the standalone control frame).
//!
//! # Inline mode (deterministic stepping)
//!
//! All time in the reactor flows through a [`Clock`]
//! ([`RunConfig::clock`](crate::config::RunConfig::clock)). On the wall
//! clock the reactor is the thread pool described above. With a *virtual*
//! clock ([`PandoConfig::deterministic`](crate::config::PandoConfig::deterministic))
//! it spawns **no threads at all**: an external single-threaded scheduler
//! pops one driver at a time with [`Reactor::step`], pumps starved shards
//! synchronously with [`Reactor::pump_starved`], and advances the virtual
//! clock to [`Reactor::next_timer_at`] when the ready queue runs dry. Both
//! modes share the same poll function, so the inline path exercises exactly
//! the production state machines — which is what lets the fleet simulator
//! ([`crate::sim::simulate_fleet`]) replay 10 000-volunteer runs
//! tick-for-tick reproducibly.
//!
//! # Examples
//!
//! ```
//! use pando_core::config::PandoConfig;
//! use pando_core::reactor::Reactor;
//!
//! // Wall clock: a pool of OS threads drains the ready queue.
//! let pooled = Reactor::new(&PandoConfig::local_test());
//! assert_eq!(pooled.stats().threads, 2);
//!
//! // Virtual clock: nothing spawns; the caller is the scheduler.
//! let inline = Reactor::new(&PandoConfig::deterministic(7));
//! assert_eq!(inline.stats().threads, 0);
//! assert!(!inline.step(), "no driver registered: the ready queue is empty");
//! assert!(inline.next_timer_at().is_none());
//! ```

use crate::config::PandoConfig;
use crate::metrics::ThroughputMeter;
use crate::protocol::{BatchPolicy, HeartbeatAction, HeartbeatPacer, Message};
use crate::transport::Transport;
use bytes::Bytes;
use pando_netsim::channel::{RecvError, SendError};
use pando_netsim::codec::{Record, MAX_FRAME_LEN, RECORD_HEADER_LEN};
use pando_netsim::sim::Clock;
use pando_pull_stream::lender::{SubStreamSink, SubStreamSource};
use pando_pull_stream::shard::ShardedLender;
use pando_pull_stream::source::Source;
use pando_pull_stream::sync::Signal;
use pando_pull_stream::{Answer, Request, StreamError};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Driver scheduling states (see [`wake`]).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;

/// Snapshot of the reactor's scheduling counters, the observability
/// counterpart of the per-device rows in [`crate::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Number of OS threads in the pool.
    pub threads: usize,
    /// Volunteers registered over the reactor's lifetime.
    pub registered: u64,
    /// Volunteers currently live (not yet terminal).
    pub active: u64,
    /// Wake-ups that enqueued a driver (endpoint events, lender kicks,
    /// timers; coalesced wake-ups of an already-queued driver not counted).
    pub wakeups: u64,
    /// Driver poll loops executed by the pool.
    pub polls: u64,
    /// Timer deadlines fired (delayed frames, crash suspicions, heartbeats).
    pub timer_fires: u64,
    /// Current depth of the ready queue.
    pub ready_depth: u64,
    /// High-water mark of the ready queue depth.
    pub max_ready_depth: u64,
    /// Drivers currently parked in a starved set (waiting for input),
    /// summed across shards.
    pub starved: u64,
    /// Values read ahead by the input pumps on behalf of starved drivers,
    /// summed across shards.
    pub pump_prefetches: u64,
    /// Lender shards (= starved sets = input pumps) this reactor serves.
    pub shards: usize,
    /// Times a driver whose shard drained re-lent itself onto another shard
    /// that still had pending work (end-game rebalancing / crash rescue).
    pub shard_hops: u64,
    /// Driver polls that made no progress: nothing received, nothing
    /// dispatched, no heartbeat sent. The cost of over-waking; bounded kicks
    /// exist to keep this low.
    pub wasted_polls: u64,
    /// Starved drivers actually woken by lender kicks (bounded by the
    /// shard's lendable depth per kick).
    pub kicks_sent: u64,
    /// Starved drivers left parked by wake-limited kicks (the broadcast
    /// would have woken them for nothing).
    pub kicks_suppressed: u64,
    /// Volunteers whose transport reported a permanent failure, firing the
    /// crash re-lend path (`finish(false)` + `Request::Fail`). A transient
    /// disconnect absorbed by a resumable session within its grace window
    /// does *not* count — only the final crash verdict does.
    pub crash_relends: u64,
}

struct Stats {
    registered: AtomicU64,
    active: AtomicU64,
    wakeups: AtomicU64,
    polls: AtomicU64,
    timer_fires: AtomicU64,
    max_ready_depth: AtomicU64,
    pump_prefetches: AtomicU64,
    shard_hops: AtomicU64,
    wasted_polls: AtomicU64,
    kicks_sent: AtomicU64,
    kicks_suppressed: AtomicU64,
    crash_relends: AtomicU64,
}

/// What a timer heap entry re-schedules when its deadline passes.
enum TimerTask {
    /// Re-poll one driver (delayed frame, crash suspicion, heartbeat).
    Driver(Weak<Driver>),
    /// Liveness backstop for one shard: re-kick it if it still has lendable
    /// work and parked drivers (see [`Inner::kick_starved`] — bounded wakes
    /// may leave drivers parked, and this timer guarantees none stays parked
    /// past a heartbeat interval while work is available).
    Backstop(usize),
}

/// A timer heap entry; ordered by deadline through `Reverse` so the
/// `BinaryHeap` pops the earliest first.
struct Timer {
    at: Instant,
    task: TimerTask,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at)
    }
}

/// Per-shard scheduling state: each lender shard has its own starved set,
/// kick epoch and pump signal, so a result arriving on shard 0 never wakes
/// (or contends with) the starved drivers of shard 3.
struct ShardSlot {
    starved: Mutex<Vec<Weak<Driver>>>,
    /// Bumped by every kick *request* of this shard; closes the
    /// starve-vs-notify race.
    kick_epoch: AtomicU64,
    /// A shard waker fired and the bounded kick has not run yet. The waker
    /// contract forbids calling back into the lender, so wakers only set
    /// this flag ([`Inner::request_kick`]) and scheduler threads execute the
    /// kick ([`Inner::drain_kicks`]) where no lender locks are held.
    pending_kick: AtomicBool,
    /// Whether a [`TimerTask::Backstop`] entry for this shard is already on
    /// the timer heap (armed when a driver parks, re-armed on fire while
    /// drivers remain parked; one entry per shard at a time).
    backstop_armed: AtomicBool,
    /// Signals the shard's input pump that a driver starved. The pump itself
    /// decides whether to read ahead (see [`pump_loop`]); the mutex carries
    /// no data.
    demand: Mutex<()>,
    demand_cond: Condvar,
}

impl ShardSlot {
    fn new() -> Self {
        Self {
            starved: Mutex::new(Vec::new()),
            kick_epoch: AtomicU64::new(0),
            pending_kick: AtomicBool::new(false),
            backstop_armed: AtomicBool::new(false),
            demand: Mutex::new(()),
            demand_cond: Condvar::new(),
        }
    }
}

/// The ready queue, segmented per lender shard for affinity: a wake pushes
/// the driver onto its shard's FIFO, and every pop scans the segments
/// starting at the popping thread's preferred shard (work stealing in
/// wrap-around order keeps threads busy when their own shard is quiet).
struct ReadyState {
    queues: Vec<VecDeque<Arc<Driver>>>,
    /// Total queued drivers across all segments.
    len: usize,
}

impl ReadyState {
    fn pop_preferring(&mut self, prefer: usize) -> Option<Arc<Driver>> {
        let shards = self.queues.len();
        for offset in 0..shards {
            if let Some(driver) = self.queues[(prefer + offset) % shards].pop_front() {
                self.len -= 1;
                return Some(driver);
            }
        }
        None
    }
}

struct Inner {
    /// The clock every timer deadline, heartbeat decision and failure
    /// suspicion is measured on. Wall for the threaded pool; virtual in
    /// inline mode, advanced by the external scheduler.
    clock: Clock,
    ready: Mutex<ReadyState>,
    ready_cond: Condvar,
    timers: Mutex<BinaryHeap<Reverse<Timer>>>,
    /// Cadence of the per-shard liveness backstop (the channel's heartbeat
    /// interval): the longest a parked driver can wait while its shard has
    /// lendable work, whatever happens to individual kicks.
    backstop_interval: std::time::Duration,
    /// `false` reverts [`Inner::kick_starved`] to the historical broadcast
    /// (every parked driver woken on every lender change) for A/B runs; see
    /// [`ReactorConfig::bounded_wakes`](crate::config::ReactorConfig::bounded_wakes).
    bounded_wakes: bool,
    /// Set once [`Reactor::attach_lender`] ran (it must be idempotent).
    attached: AtomicBool,
    /// One slot per lender shard (starved set + kick epoch + pump signal).
    shards: Vec<ShardSlot>,
    /// The deployment's sharded lender, installed by
    /// [`Reactor::attach_lender`]; drivers use it to re-lend themselves onto
    /// a shard that still has work once their own shard drains.
    lender: Mutex<Option<ShardedLender<Bytes, Bytes>>>,
    /// Live drivers, kept so shutdown can force-finish them.
    registered: Mutex<Vec<Arc<Driver>>>,
    shutdown: AtomicBool,
    stats: Stats,
}

impl Inner {
    fn next_timer_at(&self) -> Option<Instant> {
        self.timers.lock().peek().map(|Reverse(timer)| timer.at)
    }

    /// Pops and fires every timer whose deadline has passed: driver timers
    /// re-queue their driver, backstop timers re-kick their shard if it
    /// still has lendable work and parked drivers.
    fn fire_due_timers(&self, now: Instant) {
        loop {
            let task = {
                let mut timers = self.timers.lock();
                match timers.peek() {
                    Some(Reverse(timer)) if timer.at <= now => {
                        let Reverse(timer) = timers.pop().expect("peeked entry present");
                        timer.task
                    }
                    _ => return,
                }
            };
            match task {
                TimerTask::Driver(weak) => {
                    if let Some(driver) = weak.upgrade() {
                        if !driver.finished.fired() {
                            driver.scheduled_at.lock().take();
                            self.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
                            wake(self, &driver);
                        }
                    }
                }
                TimerTask::Backstop(shard) => {
                    let slot = &self.shards[shard];
                    slot.backstop_armed.store(false, Ordering::SeqCst);
                    if slot.starved.lock().is_empty() {
                        // Nobody is parked; the next park re-arms the timer.
                        continue;
                    }
                    self.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
                    let lendable = self
                        .lender
                        .lock()
                        .as_ref()
                        .map(|lender| lender.shard_depth(shard))
                        .unwrap_or(0);
                    if lendable > 0 {
                        self.kick_starved(shard);
                    }
                    self.arm_backstop(shard, now + self.backstop_interval);
                }
            }
        }
    }

    /// Books a liveness-backstop timer for `shard` unless one is already
    /// pending (at most one heap entry per shard).
    fn arm_backstop(&self, shard: usize, at: Instant) {
        let slot = &self.shards[shard];
        if slot.backstop_armed.swap(true, Ordering::SeqCst) {
            return;
        }
        self.timers.lock().push(Reverse(Timer { at, task: TimerTask::Backstop(shard) }));
        // A sleeping pool thread may need to shorten its wait.
        self.ready_cond.notify_one();
    }

    /// The shard-waker entry point: records that `shard` changed and needs a
    /// kick, without touching the lender. Wakers fire with lender/splitter
    /// internals locked (and their contract forbids re-entering the lender),
    /// so the budget computation of [`Inner::kick_starved`] cannot run here —
    /// a scheduler thread picks the flag up via [`Inner::drain_kicks`]. The
    /// epoch bump happens *now* so a driver racing into its starved set
    /// observes the change and re-polls (see [`poll_driver`]).
    fn request_kick(&self, shard: usize) {
        let slot = &self.shards[shard];
        slot.kick_epoch.fetch_add(1, Ordering::SeqCst);
        slot.pending_kick.store(true, Ordering::SeqCst);
        // Lock-fence against a pool thread that just checked the flag and is
        // about to sleep, then wake one sleeper to run the kick.
        drop(self.ready.lock());
        self.ready_cond.notify_one();
    }

    /// True if any shard has a kick requested but not yet executed.
    fn has_pending_kicks(&self) -> bool {
        self.shards.iter().any(|slot| slot.pending_kick.load(Ordering::SeqCst))
    }

    /// Executes every requested kick. Called from scheduler context only
    /// (pool-thread loop top and the inline [`Reactor::step`]) where no
    /// lender or splitter lock is held, so [`Inner::kick_starved`] may query
    /// shard depths freely.
    fn drain_kicks(&self) {
        for shard in 0..self.shards.len() {
            if self.shards[shard].pending_kick.swap(false, Ordering::SeqCst) {
                self.kick_starved(shard);
            }
        }
    }

    /// Moves starved drivers of `shard` back onto the ready queue — at most
    /// as many as the shard could serve right now. Runs in scheduler context
    /// on behalf of the shard's change waker (see [`Inner::request_kick`]):
    /// any state change of that shard may have made a value lendable there.
    ///
    /// The wake budget is `min(parked, max(lendable depth, 1))`: one staged
    /// value wakes one driver instead of the whole set, and at least one
    /// driver always wakes so termination (`Done`, depth zero) propagates
    /// promptly. Drivers left parked are covered three ways: the next state
    /// change kicks again, every parked driver re-polls on its own heartbeat
    /// timer, and the per-shard backstop timer re-kicks a shard that still
    /// has lendable work. Dead `Weak` entries are pruned on every kick so
    /// churning fleets do not accumulate stale slots.
    fn kick_starved(&self, shard: usize) {
        let slot = &self.shards[shard];
        slot.kick_epoch.fetch_add(1, Ordering::SeqCst);
        let budget = if self.bounded_wakes {
            match self.lender.lock().as_ref() {
                Some(lender) => lender.shard_depth(shard).max(1),
                // No lender attached (bare reactor): nothing to bound by.
                None => usize::MAX,
            }
        } else {
            usize::MAX
        };
        let mut woken: Vec<Arc<Driver>> = Vec::new();
        let suppressed = {
            let mut starved = slot.starved.lock();
            starved.retain(|weak| weak.strong_count() > 0);
            let take = starved.len().min(budget);
            for weak in starved.drain(..take) {
                if let Some(driver) = weak.upgrade() {
                    driver.in_starved.store(false, Ordering::SeqCst);
                    woken.push(driver);
                }
            }
            starved.len()
        };
        self.stats.kicks_sent.fetch_add(woken.len() as u64, Ordering::Relaxed);
        self.stats.kicks_suppressed.fetch_add(suppressed as u64, Ordering::Relaxed);
        for driver in &woken {
            wake(self, driver);
        }
    }

    fn signal_pump(&self, shard: usize) {
        let slot = &self.shards[shard];
        let demand = slot.demand.lock();
        drop(demand);
        slot.demand_cond.notify_one();
    }

    /// A shard other than `from` that still has work a fresh sub-stream
    /// could progress (values awaiting re-lend, parked in the splitter, or
    /// in flight on a crashable borrower). Prefers the deepest backlog.
    fn hop_target(&self, from: usize) -> Option<usize> {
        let lender = self.lender.lock().clone()?;
        let mut best: Option<(usize, usize)> = None;
        for shard in 0..lender.shard_count() {
            if shard == from || !lender.shard_needs_help(shard) {
                continue;
            }
            let backlog = lender.shard_depth(shard) + lender.shard_in_flight(shard);
            if best.map(|(_, deepest)| backlog > deepest).unwrap_or(true) {
                best = Some((shard, backlog));
            }
        }
        best.map(|(shard, _)| shard)
    }
}

/// Enqueues `driver` for a poll unless it is already queued; a wake during a
/// running poll flags it dirty so the poll re-runs.
fn wake(inner: &Inner, driver: &Arc<Driver>) {
    if driver.finished.fired() {
        return;
    }
    loop {
        let state = driver.sched.load(Ordering::SeqCst);
        let (target, enqueue) = match state {
            IDLE => (QUEUED, true),
            RUNNING => (RUNNING_DIRTY, false),
            _ => return, // already queued or dirty: the wake is coalesced
        };
        if driver.sched.compare_exchange(state, target, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            if enqueue {
                let shard = driver.shard.load(Ordering::Relaxed);
                let mut ready = inner.ready.lock();
                ready.queues[shard].push_back(driver.clone());
                ready.len += 1;
                let depth = ready.len as u64;
                drop(ready);
                inner.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                inner.stats.max_ready_depth.fetch_max(depth, Ordering::Relaxed);
                inner.ready_cond.notify_one();
            }
            return;
        }
    }
}

/// The per-volunteer dispatch/receive state machine, polled by the pool.
struct Driver {
    name: String,
    endpoint: Arc<dyn Transport>,
    meter: ThroughputMeter,
    tasks_per_frame: usize,
    /// Lender shard this driver currently borrows from. Pinned at
    /// registration (volunteer id hash → shard, with an override for shards
    /// left without devices); changes only when the driver hops to a shard
    /// that still has work after its own drained.
    shard: AtomicUsize,
    sched: AtomicU8,
    in_starved: AtomicBool,
    /// Earliest timer currently scheduled for this driver, to avoid flooding
    /// the heap with duplicates.
    scheduled_at: Mutex<Option<Instant>>,
    io: Mutex<DriverIo>,
    result: Mutex<Option<Result<(), StreamError>>>,
    finished: Signal,
}

struct DriverIo {
    source: SubStreamSource<Bytes, Bytes>,
    sink: SubStreamSink<Bytes, Bytes>,
    /// Free in-flight window slots (the `batch_size` Limiter of the paper):
    /// one is consumed per dispatched task and released per accepted result.
    credits: usize,
    /// A value pulled for a frame that had no byte budget left; it opens the
    /// next frame (its window slot is already consumed).
    carry: Option<Record>,
    /// A fully-built frame the transport refused with
    /// [`SendError::WouldBlock`] (its wire size and record count ride
    /// along). It must go out before anything newer — the driver parks on
    /// the transport waker and retries it first on the next poll.
    pending: Option<(Message, usize, u64)>,
    /// Set once the task flow ended (lender done, channel closed, or send
    /// failure); receive may still be running.
    dispatch_done: bool,
    /// First dispatch-side error, reported over a clean receive shutdown.
    dispatch_error: Option<StreamError>,
    pacer: HeartbeatPacer,
    /// Adaptive `tasks_per_frame` state, when the policy is enabled.
    policy: Option<BatchPolicy>,
}

/// What a poll decided about the driver's future.
enum PollOutcome {
    /// Wait for the next waker or the given timer. `progressed` records
    /// whether the poll achieved anything (received, dispatched, or sent a
    /// heartbeat) — a `false` is a wasted poll, the cost bounded kicks
    /// exist to avoid.
    Pending { timer: Option<Instant>, starved: bool, starve_epoch: u64, progressed: bool },
    /// The volunteer session ended; the driver was finished.
    Terminal,
}

impl Driver {
    /// Runs one non-blocking dispatch + receive round.
    fn poll(self: &Arc<Self>, inner: &Inner) -> PollOutcome {
        if self.finished.fired() {
            // A stale wake (timer or lender kick) raced termination.
            return PollOutcome::Terminal;
        }
        let now = inner.clock.now();
        let mut io = self.io.lock();
        let mut progressed = false;

        // Receive: drain every deliverable frame, demultiplex results into
        // the lender and release window slots (send-window readiness is
        // re-checked by the dispatch phase below in the same poll).
        loop {
            match self.endpoint.try_recv() {
                Ok(message @ Message::TaskResult { .. })
                | Ok(message @ Message::ResultBatch(_)) => {
                    progressed = true;
                    self.meter.record_wire(&self.name, message.wire_size() as u64);
                    let mut accepted = 0u64;
                    message.demux_results(|seq, payload| {
                        // A late result for a value this sub-stream no longer
                        // borrows is dropped (conservative property): no
                        // window slot is released for it.
                        if io.sink.push(seq, payload).is_ok() {
                            self.meter.record(&self.name, 1.0);
                            io.credits += 1;
                            accepted += 1;
                        }
                    });
                    if accepted > 0 {
                        self.meter
                            .record_shard_results(self.shard.load(Ordering::Relaxed), accepted);
                    }
                }
                Ok(Message::TaskError { seq, message }) => {
                    // An application error marks the volunteer faulty; its
                    // values are re-lent elsewhere (crash-stop model).
                    io.sink.finish(false);
                    self.endpoint.close();
                    let text = String::from_utf8_lossy(&message).into_owned();
                    let name = &self.name;
                    return self.finish(
                        inner,
                        io,
                        Err(StreamError::new(format!(
                            "volunteer {name} failed on value {seq}: {text}"
                        ))),
                    );
                }
                Ok(Message::Heartbeat) | Ok(Message::Ack { .. }) => {
                    // Session-layer acks are normally absorbed inside the
                    // transport; one surfacing here is harmless control
                    // traffic, like a heartbeat.
                    progressed = true;
                    continue;
                }
                Ok(Message::Goodbye) | Ok(Message::Task { .. }) | Ok(Message::TaskBatch(_)) => {
                    io.sink.finish(true);
                    let _ = io.source.pull(Request::Abort);
                    return self.finish(inner, io, Ok(()));
                }
                Err(RecvError::Closed) => {
                    io.sink.finish(true);
                    let _ = io.source.pull(Request::Abort);
                    return self.finish(inner, io, Ok(()));
                }
                Err(RecvError::PeerFailed) => {
                    io.sink.finish(false);
                    inner.stats.crash_relends.fetch_add(1, Ordering::Relaxed);
                    let name = &self.name;
                    let err = StreamError::transport(format!(
                        "volunteer {name} disconnected (heartbeat timeout)"
                    ));
                    let _ = io.source.pull(Request::Fail(err.clone()));
                    return self.finish(inner, io, Err(err));
                }
                Err(RecvError::Empty) | Err(RecvError::Timeout) => break,
            }
        }

        // Dispatch: coalesce whatever the lender can hand out *right now*
        // into frames, within the window and the byte budget.
        let mut starved = false;
        let mut starve_epoch = 0;
        while !io.dispatch_done {
            // A frame parked on a previous send-would-block goes out first:
            // per-connection FIFO, and its records are already pulled. The
            // clone is cheap (`Message` wraps refcounted `Bytes`).
            if let Some((message, size, count)) = io.pending.take() {
                match self.endpoint.send_records_with_size(message.clone(), size, count) {
                    Ok(()) => {
                        progressed = true;
                        self.meter.record_wire(&self.name, size as u64);
                        self.meter.record_shard_borrows(self.shard.load(Ordering::Relaxed), count);
                        if let Some(policy) = io.policy.as_mut() {
                            policy.on_frame(count as usize);
                        }
                        io.pacer.on_traffic_at(now);
                        continue;
                    }
                    Err(SendError::WouldBlock) => {
                        // Bounded write queue is full: park the frame and
                        // wait for the transport waker instead of buffering
                        // unboundedly or spinning.
                        io.pending = Some((message, size, count));
                        break;
                    }
                    Err(SendError::Closed) => {
                        let _ = io.source.pull(Request::Abort);
                        io.dispatch_done = true;
                        progressed = true;
                        continue;
                    }
                    Err(SendError::PeerFailed) => {
                        let err = StreamError::transport("volunteer failed while sending tasks");
                        let _ = io.source.pull(Request::Fail(err.clone()));
                        io.dispatch_error = Some(err);
                        io.dispatch_done = true;
                        progressed = true;
                        continue;
                    }
                }
            }
            let first = match io.carry.take() {
                Some(record) => record,
                None => {
                    if io.credits == 0 {
                        break;
                    }
                    let shard = self.shard.load(Ordering::Relaxed);
                    let epoch = inner.shards[shard].kick_epoch.load(Ordering::SeqCst);
                    match io.source.poll_pull() {
                        None => {
                            if let Some(policy) = io.policy.as_mut() {
                                policy.on_starved();
                            }
                            starved = true;
                            starve_epoch = epoch;
                            break;
                        }
                        Some(Answer::Value(lend)) => {
                            io.credits -= 1;
                            Record::new(lend.seq, lend.value)
                        }
                        Some(Answer::Done) | Some(Answer::Err(_)) => {
                            // This shard will never lend again. Before
                            // closing the channel, try to re-lend the driver
                            // onto a shard that still has work (a crash may
                            // have orphaned values there, or its devices may
                            // simply be slower): end-game rebalancing that
                            // keeps every volunteer busy until the whole
                            // stream drains.
                            if let Some(target) = inner.hop_target(shard) {
                                let lender =
                                    inner.lender.lock().clone().expect("hop target implies lender");
                                io.sink.finish(true);
                                let (source, sink) = lender.lend_on(target).into_duplex();
                                io.source = source;
                                io.sink = sink;
                                self.shard.store(target, Ordering::Relaxed);
                                inner.stats.shard_hops.fetch_add(1, Ordering::Relaxed);
                                progressed = true;
                                continue;
                            }
                            // The task flow is over; the channel half-closes
                            // and receive drains the remaining results.
                            self.endpoint.close();
                            io.dispatch_done = true;
                            progressed = true;
                            break;
                        }
                    }
                }
            };
            let limit = io.policy.as_ref().map(BatchPolicy::limit).unwrap_or(self.tasks_per_frame);
            let mut body = 4 + RECORD_HEADER_LEN + first.payload.len();
            let mut records = vec![first];
            while records.len() < limit && body < MAX_FRAME_LEN && io.credits > 0 {
                match io.source.try_pull() {
                    Some(lend) => {
                        let add = RECORD_HEADER_LEN + lend.value.len();
                        if body + add > MAX_FRAME_LEN {
                            io.credits -= 1;
                            io.carry = Some(Record::new(lend.seq, lend.value));
                            break;
                        }
                        io.credits -= 1;
                        body += add;
                        records.push(Record::new(lend.seq, lend.value));
                    }
                    None => break,
                }
            }
            let message = Message::task_frame(records);
            let size = message.wire_size();
            let count = message.record_count();
            // Route every frame through the pending slot; the loop head owns
            // the single send site and its would-block parking.
            io.pending = Some((message, size, count));
        }

        // Heartbeat pacing: data traffic above suppressed the control frame;
        // a fully idle interval emits a standalone heartbeat.
        match io.pacer.poll_at(now) {
            HeartbeatAction::NotDue => {}
            HeartbeatAction::Send => {
                progressed = true;
                self.meter.record_heartbeat(&self.name, false);
                let _ = self.endpoint.send(Message::Heartbeat);
            }
            HeartbeatAction::Suppressed => {
                self.meter.record_heartbeat(&self.name, true);
            }
        }

        let timer = match self.endpoint.next_ready_at() {
            Some(ready_at) => Some(ready_at.min(io.pacer.next_due())),
            None => Some(io.pacer.next_due()),
        };
        PollOutcome::Pending { timer, starved, starve_epoch, progressed }
    }

    /// Marks the driver terminal: books the result (dispatch errors win over
    /// a clean receive end, like the threaded `VolunteerLink::join`),
    /// deregisters it and fires the completion signal.
    fn finish(
        self: &Arc<Self>,
        inner: &Inner,
        mut io: parking_lot::MutexGuard<'_, DriverIo>,
        result: Result<(), StreamError>,
    ) -> PollOutcome {
        io.dispatch_done = true;
        let result = match io.dispatch_error.take() {
            Some(err) => Err(err),
            None => result,
        };
        drop(io);
        self.endpoint.clear_waker();
        *self.result.lock() = Some(result);
        inner.stats.active.fetch_sub(1, Ordering::Relaxed);
        inner.registered.lock().retain(|d| !Arc::ptr_eq(d, self));
        // Leave the starved set too: a stale entry would make the input pump
        // read ahead with no real demand, breaking its laziness guarantee.
        if self.in_starved.swap(false, Ordering::SeqCst) {
            let shard = self.shard.load(Ordering::Relaxed);
            inner.shards[shard]
                .starved
                .lock()
                .retain(|weak| weak.upgrade().map(|d| !Arc::ptr_eq(&d, self)).unwrap_or(false));
        }
        self.finished.fire();
        PollOutcome::Terminal
    }
}

/// Handle on one volunteer registered with a [`Reactor`]; the event-driven
/// counterpart of the pump-thread pair of the threaded backend.
pub struct DriverHandle {
    driver: Arc<Driver>,
}

impl std::fmt::Debug for DriverHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverHandle")
            .field("name", &self.driver.name)
            .field("finished", &self.driver.finished.fired())
            .finish()
    }
}

impl DriverHandle {
    /// Waits until the volunteer session ends and returns its outcome.
    ///
    /// # Errors
    ///
    /// Returns the first stream error observed on either the dispatch or the
    /// receive side, like the threaded `VolunteerLink::join`.
    pub fn join(self) -> Result<(), StreamError> {
        self.driver.finished.wait();
        self.driver.result.lock().clone().expect("result set before the signal fires")
    }

    /// Returns `true` once the volunteer session has ended.
    pub fn is_finished(&self) -> bool {
        self.driver.finished.fired()
    }
}

/// A fixed pool of reactor threads multiplexing every volunteer of one Pando
/// deployment. Created by the master when the
/// [`Reactor`](crate::config::VolunteerBackend::Reactor) backend is active.
pub struct Reactor {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// One input pump per lender shard, spawned by
    /// [`Reactor::attach_lender`].
    pumps: Mutex<Vec<JoinHandle<()>>>,
    thread_count: usize,
    /// Inline mode: no threads at all. An external single-threaded scheduler
    /// steps the ready queue ([`Reactor::step`]), fires timers by advancing
    /// the virtual clock, and pumps starved shards synchronously
    /// ([`Reactor::pump_starved`]). Selected by a virtual
    /// [`PandoConfig::clock`]; the basis of the deterministic fleet
    /// simulator in [`crate::sim`].
    inline: bool,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("threads", &self.thread_count)
            .field("active", &self.inner.stats.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl Reactor {
    /// Starts a reactor laid out for `config.effective_lender_shards()`
    /// lender shards: a pool of `config.reactor.threads` OS threads on the
    /// wall clock, or — when [`RunConfig::clock`](crate::config::RunConfig::clock) is virtual — an *inline*
    /// reactor with no threads at all, stepped externally through
    /// [`Reactor::step`].
    pub fn new(config: &PandoConfig) -> Self {
        let shard_count = config.effective_lender_shards();
        let inline = config.run.clock.is_virtual();
        let inner = Arc::new(Inner {
            clock: config.run.clock.clone(),
            ready: Mutex::new(ReadyState {
                queues: (0..shard_count).map(|_| VecDeque::new()).collect(),
                len: 0,
            }),
            ready_cond: Condvar::new(),
            timers: Mutex::new(BinaryHeap::new()),
            backstop_interval: config.transport.channel.heartbeat_interval,
            bounded_wakes: config.reactor.bounded_wakes,
            attached: AtomicBool::new(false),
            shards: (0..shard_count).map(|_| ShardSlot::new()).collect(),
            lender: Mutex::new(None),
            registered: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            stats: Stats {
                registered: AtomicU64::new(0),
                active: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
                polls: AtomicU64::new(0),
                timer_fires: AtomicU64::new(0),
                max_ready_depth: AtomicU64::new(0),
                pump_prefetches: AtomicU64::new(0),
                shard_hops: AtomicU64::new(0),
                wasted_polls: AtomicU64::new(0),
                kicks_sent: AtomicU64::new(0),
                kicks_suppressed: AtomicU64::new(0),
                crash_relends: AtomicU64::new(0),
            },
        });
        let thread_count = if inline { 0 } else { config.reactor.threads.max(1) };
        let threads = (0..thread_count)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("pando-reactor-{i}"))
                    .spawn(move || reactor_loop(&inner, i))
                    .expect("spawn reactor thread")
            })
            .collect();
        Self {
            inner,
            threads: Mutex::new(threads),
            pumps: Mutex::new(Vec::new()),
            thread_count,
            inline,
        }
    }

    /// Connects the reactor to the deployment's sharded lender: registers
    /// one change waker per shard (kicking only that shard's starved
    /// drivers) and starts one input-pump thread per shard. Called once when
    /// the input stream is attached.
    ///
    /// # Panics
    ///
    /// Panics if the lender's shard count differs from the reactor's layout
    /// (both derive from the same [`PandoConfig`]).
    pub fn attach_lender(&self, lender: &ShardedLender<Bytes, Bytes>) {
        assert_eq!(
            lender.shard_count(),
            self.inner.shards.len(),
            "lender shards must match the reactor layout"
        );
        let mut pumps = self.pumps.lock();
        if self.inner.attached.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.inner.lender.lock() = Some(lender.clone());
        for shard in 0..lender.shard_count() {
            let waker_inner = Arc::downgrade(&self.inner);
            lender.add_shard_waker(
                shard,
                Arc::new(move || {
                    if let Some(inner) = waker_inner.upgrade() {
                        inner.request_kick(shard);
                    }
                }),
            );
            if self.inline {
                // Inline mode pumps synchronously: the scheduler calls
                // [`Reactor::pump_starved`] between steps.
                continue;
            }
            let inner = self.inner.clone();
            let lender = lender.clone();
            pumps.push(
                std::thread::Builder::new()
                    .name(format!("pando-input-pump-{shard}"))
                    .spawn(move || pump_loop(&inner, &lender, shard))
                    .expect("spawn input pump thread"),
            );
        }
    }

    /// Registers one volunteer transport on lender shard `shard`: the
    /// event-driven replacement of the dispatcher/receiver thread pair.
    /// Any [`Transport`] works — a simulated channel endpoint or a live TCP
    /// connection drive the identical state machine.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is outside the reactor's shard layout.
    pub fn register(
        &self,
        name: &str,
        shard: usize,
        endpoint: Arc<dyn Transport>,
        duplex: (SubStreamSource<Bytes, Bytes>, SubStreamSink<Bytes, Bytes>),
        config: &PandoConfig,
        meter: &ThroughputMeter,
    ) -> DriverHandle {
        assert!(shard < self.inner.shards.len(), "shard {shard} outside the reactor layout");
        let (source, sink) = duplex;
        let driver = Arc::new(Driver {
            name: name.to_string(),
            endpoint: endpoint.clone(),
            meter: meter.clone(),
            tasks_per_frame: config.effective_tasks_per_frame(),
            shard: AtomicUsize::new(shard),
            sched: AtomicU8::new(IDLE),
            in_starved: AtomicBool::new(false),
            scheduled_at: Mutex::new(None),
            io: Mutex::new(DriverIo {
                source,
                sink,
                credits: config.batching.batch_size,
                carry: None,
                pending: None,
                dispatch_done: false,
                dispatch_error: None,
                pacer: HeartbeatPacer::new_at(
                    endpoint.heartbeat_interval(),
                    self.inner.clock.now(),
                ),
                policy: config
                    .batching
                    .adaptive
                    .then(|| BatchPolicy::new(1, config.effective_tasks_per_frame())),
            }),
            result: Mutex::new(None),
            finished: Signal::new(),
        });
        let weak_driver = Arc::downgrade(&driver);
        let weak_inner = Arc::downgrade(&self.inner);
        endpoint.set_waker(Arc::new(move || {
            if let (Some(driver), Some(inner)) = (weak_driver.upgrade(), weak_inner.upgrade()) {
                wake(&inner, &driver);
            }
        }));
        self.inner.stats.registered.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.active.fetch_add(1, Ordering::Relaxed);
        self.inner.registered.lock().push(driver.clone());
        wake(&self.inner, &driver);
        DriverHandle { driver }
    }

    /// Inline mode only: runs one scheduling step — fires every timer due at
    /// the current (virtual) clock reading, then polls the driver at the
    /// head of the ready queue. Returns `false` when the ready queue was
    /// empty (the scheduler should then pump starved shards or advance the
    /// clock to [`Reactor::next_timer_at`]).
    ///
    /// Stepping a threaded reactor is harmless but pointless: the pool
    /// threads race the caller for the same queue.
    pub fn step(&self) -> bool {
        self.inner.drain_kicks();
        self.inner.fire_due_timers(self.inner.clock.now());
        let driver = self.inner.ready.lock().pop_preferring(0);
        match driver {
            Some(driver) => {
                poll_driver(&self.inner, driver);
                true
            }
            None => false,
        }
    }

    /// The earliest pending timer deadline (delayed frames, crash
    /// suspicions, heartbeats), if any — the instant an inline scheduler
    /// should advance the virtual clock to when the ready queue runs dry.
    pub fn next_timer_at(&self) -> Option<Instant> {
        self.inner.next_timer_at()
    }

    /// Inline mode only: one synchronous pass of the per-shard input pumps —
    /// for every shard with starved drivers and an empty staging pool, reads
    /// one value ahead on the shard's behalf (the staged value fires the
    /// shard waker, which re-queues its starved drivers). Returns `true` if
    /// any shard staged a value, i.e. the scheduler should step again before
    /// advancing the clock.
    ///
    /// The deterministic simulator requires inputs that answer immediately
    /// (in-memory iterators); an input that truly blocks would block the
    /// scheduler itself.
    pub fn pump_starved(&self) -> bool {
        let Some(lender) = self.inner.lender.lock().clone() else {
            return false;
        };
        let mut staged = false;
        for (shard, slot) in self.inner.shards.iter().enumerate() {
            if slot.starved.lock().is_empty() || lender.shard_failed_pending(shard) > 0 {
                continue;
            }
            if lender.prefetch_shard(shard) {
                self.inner.stats.pump_prefetches.fetch_add(1, Ordering::Relaxed);
                staged = true;
            }
        }
        staged
    }

    /// A snapshot of the scheduling counters.
    pub fn stats(&self) -> ReactorStats {
        let stats = &self.inner.stats;
        ReactorStats {
            threads: self.thread_count,
            registered: stats.registered.load(Ordering::Relaxed),
            active: stats.active.load(Ordering::Relaxed),
            wakeups: stats.wakeups.load(Ordering::Relaxed),
            polls: stats.polls.load(Ordering::Relaxed),
            timer_fires: stats.timer_fires.load(Ordering::Relaxed),
            ready_depth: self.inner.ready.lock().len as u64,
            max_ready_depth: stats.max_ready_depth.load(Ordering::Relaxed),
            starved: self.inner.shards.iter().map(|slot| slot.starved.lock().len() as u64).sum(),
            pump_prefetches: stats.pump_prefetches.load(Ordering::Relaxed),
            shards: self.inner.shards.len(),
            shard_hops: stats.shard_hops.load(Ordering::Relaxed),
            wasted_polls: stats.wasted_polls.load(Ordering::Relaxed),
            kicks_sent: stats.kicks_sent.load(Ordering::Relaxed),
            kicks_suppressed: stats.kicks_suppressed.load(Ordering::Relaxed),
            crash_relends: stats.crash_relends.load(Ordering::Relaxed),
        }
    }

    /// Stops the pool: wakes every thread, joins them, and force-finishes any
    /// driver still live (its sub-stream ends with crash semantics so
    /// borrowed values are re-lent — relevant only when tearing down
    /// mid-run).
    fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.ready_cond.notify_all();
        for slot in &self.inner.shards {
            slot.demand_cond.notify_all();
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
        for pump in self.pumps.lock().drain(..) {
            let _ = pump.join();
        }
        let leftover: Vec<Arc<Driver>> = self.inner.registered.lock().drain(..).collect();
        for driver in leftover {
            driver.endpoint.clear_waker();
            driver.endpoint.close();
            let io = driver.io.lock();
            io.sink.finish(false);
            drop(io);
            *driver.result.lock() = Some(Err(StreamError::transport("reactor shut down")));
            self.inner.stats.active.fetch_sub(1, Ordering::Relaxed);
            driver.finished.fire();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Body of one reactor pool thread. `thread_index` selects the thread's
/// preferred ready-queue segment (shard `thread_index % shards`): drivers of
/// that shard are popped first, the other segments are stolen from in
/// wrap-around order when it is empty.
fn reactor_loop(inner: &Inner, thread_index: usize) {
    let prefer = thread_index % inner.shards.len().max(1);
    'schedule: loop {
        // Requested kicks run here, outside the ready lock and outside any
        // lender lock (see [`Inner::request_kick`] for why wakers defer).
        inner.drain_kicks();
        inner.fire_due_timers(inner.clock.now());
        let driver = {
            let mut ready = inner.ready.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(driver) = ready.pop_preferring(prefer) {
                    break driver;
                }
                if inner.has_pending_kicks() {
                    // A waker fired while we idled: restart the cycle so the
                    // kick executes without the ready lock held.
                    continue 'schedule;
                }
                match inner.next_timer_at() {
                    Some(at) => {
                        if at <= inner.clock.now() {
                            drop(ready);
                            inner.fire_due_timers(inner.clock.now());
                            ready = inner.ready.lock();
                            continue;
                        }
                        inner.ready_cond.wait_until(&mut ready, at);
                    }
                    None => inner.ready_cond.wait(&mut ready),
                }
            }
        };
        poll_driver(inner, driver);
    }
}

/// Polls one driver popped off the ready queue and books the outcome:
/// timers are (de-duplicated and) scheduled, starved drivers park in their
/// shard's starved set, and a wake observed mid-poll re-queues the driver.
/// Shared verbatim between the pool threads and the inline [`Reactor::step`]
/// path, so the two modes cannot diverge behaviourally.
fn poll_driver(inner: &Inner, driver: Arc<Driver>) {
    driver.sched.store(RUNNING, Ordering::SeqCst);
    inner.stats.polls.fetch_add(1, Ordering::Relaxed);
    let outcome = driver.poll(inner);
    match outcome {
        PollOutcome::Terminal => {
            driver.sched.store(IDLE, Ordering::SeqCst);
        }
        PollOutcome::Pending { timer, starved, starve_epoch, progressed } => {
            if !progressed {
                inner.stats.wasted_polls.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(at) = timer {
                let mut scheduled = driver.scheduled_at.lock();
                let stale = scheduled.map(|existing| at < existing).unwrap_or(true);
                if stale {
                    *scheduled = Some(at);
                    drop(scheduled);
                    inner.timers.lock().push(Reverse(Timer {
                        at,
                        task: TimerTask::Driver(Arc::downgrade(&driver)),
                    }));
                    // A sleeping sibling may need to shorten its wait.
                    inner.ready_cond.notify_one();
                }
            }
            let shard = driver.shard.load(Ordering::Relaxed);
            if starved && !driver.in_starved.swap(true, Ordering::SeqCst) {
                inner.shards[shard].starved.lock().push(Arc::downgrade(&driver));
                inner.signal_pump(shard);
                // Liveness backstop: bounded kicks may leave this driver
                // parked, so guarantee a re-kick within one interval while
                // the shard has lendable work.
                inner.arm_backstop(shard, inner.clock.now() + inner.backstop_interval);
            }
            // Transition out of RUNNING; a wake observed mid-poll means
            // the poll must re-run.
            if driver
                .sched
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                driver.sched.store(QUEUED, Ordering::SeqCst);
                let mut ready = inner.ready.lock();
                ready.queues[shard].push_back(driver.clone());
                ready.len += 1;
                drop(ready);
                inner.ready_cond.notify_one();
            } else if starved
                && inner.shards[shard].kick_epoch.load(Ordering::SeqCst) != starve_epoch
            {
                // A lender kick raced our starve registration: re-poll.
                wake(inner, &driver);
            }
        }
    }
}

/// Body of one per-shard input pump thread.
///
/// The pump preserves the lender's *laziness*: it reads ahead only while at
/// least one of its shard's drivers is parked starved **and** the shard's
/// staged pool is empty, so the read-ahead never exceeds one value per shard
/// beyond actual consumption — the per-ask rhythm of the blocking dispatcher
/// it replaces. (An eager pump would let feedback-loop inputs like the
/// mining monitor race millions of values ahead of the workers.)
fn pump_loop(inner: &Inner, lender: &ShardedLender<Bytes, Bytes>, shard: usize) {
    let slot = &inner.shards[shard];
    loop {
        {
            let mut demand = slot.demand.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !slot.starved.lock().is_empty() && lender.shard_failed_pending(shard) == 0 {
                    break;
                }
                slot.demand_cond.wait(&mut demand);
            }
        }
        if lender.prefetch_shard(shard) {
            inner.stats.pump_prefetches.fetch_add(1, Ordering::Relaxed);
            // The staged value triggered the shard's waker, which requests a
            // kick of its starved drivers (executed by a pool thread); they
            // will re-signal if they starve again.
        } else {
            // This shard will never receive another value: the input is
            // exhausted (or the output closed). Starved drivers terminate
            // (or hop) through their own Done observations; park until shut
            // down.
            let mut demand = slot.demand.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                slot.demand_cond.wait(&mut demand);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_snapshot_starts_clean() {
        let reactor = Reactor::new(&PandoConfig::local_test());
        let stats = reactor.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.registered, 0);
        assert_eq!(stats.active, 0);
        assert_eq!(stats.ready_depth, 0);
    }

    #[test]
    fn drop_joins_the_pool() {
        let reactor = Reactor::new(&PandoConfig::local_test().with_reactor_threads(3));
        assert_eq!(reactor.stats().threads, 3);
        drop(reactor); // must not hang
    }
}
