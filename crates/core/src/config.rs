//! Deployment configuration.
//!
//! [`PandoConfig`] groups its knobs into nested sub-configs, one per
//! subsystem: [`BatchingConfig`] (how values are windowed and framed),
//! [`ReactorConfig`] (how volunteer endpoints are driven and how the lender
//! is sharded), [`TransportConfig`] (how bytes reach the volunteers) and
//! [`RunConfig`] (clock, reporting windows, bundle identity). Every
//! sub-config implements `Default`, so a custom deployment can override one
//! group without spelling out the rest:
//!
//! ```
//! use pando_core::config::{BatchingConfig, PandoConfig};
//!
//! let config = PandoConfig {
//!     batching: BatchingConfig { batch_size: 8, ..BatchingConfig::default() },
//!     ..PandoConfig::default()
//! };
//! assert_eq!(config.batching.batch_size, 8);
//! assert_eq!(config.reactor.threads, PandoConfig::DEFAULT_REACTOR_THREADS);
//! ```
//!
//! The `with_*` builder methods remain the recommended way to tweak a
//! preset ([`PandoConfig::local_test`], [`PandoConfig::lan`],
//! [`PandoConfig::deterministic`]); they write through to the nested fields.

use crate::transport::tcp::TcpConfig;
use pando_netsim::channel::ChannelConfig;
use pando_netsim::sim::Clock;
use std::time::Duration;

/// How the master wires volunteer endpoints to the StreamLender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VolunteerBackend {
    /// Event-driven: every volunteer is a registration on a shared reactor
    /// pool of [`ReactorConfig::threads`] threads; ready endpoints are
    /// queued and drained without blocking, so one master scales to tens of
    /// thousands of volunteers with a constant thread count.
    #[default]
    Reactor,
    /// Thread-per-volunteer: two dedicated pump threads (dispatcher +
    /// receiver) per volunteer, the original shape. Kept for A/B comparison;
    /// caps a master at low thousands of volunteers.
    Threads,
}

/// How values are windowed towards each volunteer and coalesced into wire
/// frames.
///
/// ```
/// use pando_core::config::BatchingConfig;
///
/// let batching = BatchingConfig::default();
/// assert_eq!(batching.batch_size, 2);
/// assert_eq!(batching.tasks_per_frame, None); // pack up to the window
/// assert!(!batching.adaptive);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchingConfig {
    /// Number of values that may be in flight towards one volunteer at a
    /// time (the `--batch-size` argument of the original tool). A batch size
    /// of 2 lets one input travel while another is being processed, which is
    /// enough to hide the network latency of compute-bound applications
    /// (paper §5.5). Example: `PandoConfig::local_test().with_batch_size(8)`
    /// widens the window for latency-bound workloads.
    pub batch_size: usize,
    /// Maximum number of tasks (and results) coalesced into one wire frame.
    /// `None` means "up to the batch size": the dispatcher packs whatever is
    /// immediately available, so a whole window can travel in one frame and
    /// pay the channel round-trip once. `Some(1)` (or
    /// `with_tasks_per_frame(1)`) reproduces the original one-frame-per-task
    /// protocol.
    pub tasks_per_frame: Option<usize>,
    /// Enables the adaptive `tasks_per_frame` policy
    /// ([`BatchPolicy`](crate::protocol::BatchPolicy)): reactor drivers
    /// start with single-task frames, grow the coalescing limit on channels
    /// whose frames run full (a high records-per-frame ratio means the
    /// round-trip dominates) and shrink it when the lender starves. Off by
    /// default: the static limit keeps frame counts deterministic.
    pub adaptive: bool,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        Self { batch_size: 2, tasks_per_frame: None, adaptive: false }
    }
}

/// How volunteer endpoints are driven and how the stream lender is sharded.
///
/// ```
/// use pando_core::config::{ReactorConfig, VolunteerBackend};
///
/// let reactor = ReactorConfig::default();
/// assert_eq!(reactor.backend, VolunteerBackend::Reactor);
/// assert_eq!(reactor.threads, 4);
/// assert_eq!(reactor.lender_shards, None); // derived from the pool size
/// assert!(reactor.bounded_wakes);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorConfig {
    /// How volunteer endpoints are driven: the event-driven reactor (the
    /// default) or the legacy thread-per-volunteer pumps. Example:
    /// `PandoConfig::local_test().with_backend(VolunteerBackend::Threads)`
    /// switches a deployment to the legacy pumps for an A/B run.
    pub backend: VolunteerBackend,
    /// Number of OS threads in the reactor pool when [`Self::backend`] is
    /// [`VolunteerBackend::Reactor`]. All volunteers are multiplexed over
    /// this fixed pool (plus one input-pump thread per lender shard), so the
    /// thread count no longer grows with the fleet. Example:
    /// `PandoConfig::lan().with_reactor_threads(8)`.
    pub threads: usize,
    /// Number of independent StreamLender shards the input stream is
    /// partitioned across (the
    /// [`ShardedLender`](pando_pull_stream::shard::ShardedLender) layout):
    /// each reactor driver is pinned to one shard, so borrows, results and
    /// crash re-lends of different shards proceed under different locks.
    /// `None` derives `min(threads, 4)`; `Some(1)` (or
    /// `with_lender_shards(1)`) reproduces the single global lender exactly.
    /// The legacy [`VolunteerBackend::Threads`] backend always runs a single
    /// shard.
    pub lender_shards: Option<usize>,
    /// Whether `kick_starved` wakes only `min(parked, shard lendable depth)`
    /// drivers per lender change (the work-conserving default) or broadcasts
    /// to every parked driver of the shard (the pre-bounded behaviour, kept
    /// for A/B runs: `with_bounded_wakes(false)`). Liveness under bounded
    /// wakes is guaranteed by the kick-epoch counter plus a
    /// heartbeat-interval backstop timer that re-kicks any shard holding
    /// lendable work while drivers are parked.
    pub bounded_wakes: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            backend: VolunteerBackend::default(),
            threads: PandoConfig::DEFAULT_REACTOR_THREADS,
            lender_shards: None,
            bounded_wakes: true,
        }
    }
}

/// How bytes reach the volunteers: the profile of the simulated
/// [`pando_netsim`] channels and the knobs of the real-socket
/// [`TcpTransport`](crate::transport::tcp::TcpTransport) backend. Both live
/// here because a deployment may mix them — in-process simulated volunteers
/// and remote TCP ones attach to the same master.
///
/// ```
/// use pando_core::config::TransportConfig;
///
/// let transport = TransportConfig::default();
/// assert_eq!(transport.channel.latency.as_millis(), 2); // LAN profile
/// assert!(transport.tcp.nodelay);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Network profile of the simulated channels towards in-process
    /// volunteers (latency, jitter, heartbeat cadence, failure timeout,
    /// seed). Example: `PandoConfig::local_test()
    /// .with_channel(ChannelConfig::wan())` simulates wide-area links.
    pub channel: ChannelConfig,
    /// Liveness and socket options for volunteers connecting over real TCP
    /// ([`TcpAcceptor`](crate::transport::tcp::TcpAcceptor)). Example:
    /// `TcpConfig::local_test()` tightens the crash-detection windows for
    /// localhost demos.
    pub tcp: TcpConfig,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self { channel: ChannelConfig::lan(), tcp: TcpConfig::default() }
    }
}

/// Clock, reporting windows and the identity of the served bundle — the
/// knobs of the run as a whole rather than of any one subsystem.
///
/// ```
/// use pando_core::config::RunConfig;
///
/// let run = RunConfig::default();
/// assert!(!run.clock.is_virtual());
/// assert_eq!(run.measurement_window.as_secs(), 300); // the paper's window
/// assert_eq!(run.protocol_version, "/pando/1.0.0");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The clock the deployment reads time from. [`Clock::wall`] (the
    /// default) runs in real time with the threaded reactor pool; a virtual
    /// clock ([`PandoConfig::deterministic`]) switches the reactor to its
    /// *inline* mode — no threads are spawned, and a single-threaded
    /// scheduler (the fleet simulator in [`sim`](crate::sim)) steps drivers
    /// and advances time explicitly, making whole runs reproducible
    /// tick-for-tick.
    pub clock: Clock,
    /// How long the master waits for the first volunteer before reporting
    /// (it keeps waiting regardless; this only controls a log line).
    pub startup_grace: Duration,
    /// Length of the throughput measurement window used by
    /// [`metrics`](crate::metrics) (five minutes in the paper).
    pub measurement_window: Duration,
    /// Human-readable name of the processing-function bundle served to
    /// volunteers (the equivalent of the browserified `render.js`).
    pub bundle_name: String,
    /// Version tag of the Pando protocol exposed to the bundle.
    pub protocol_version: String,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            clock: Clock::wall(),
            startup_grace: Duration::from_secs(1),
            measurement_window: Duration::from_secs(300),
            bundle_name: "bundle.js".to_string(),
            protocol_version: PandoConfig::PROTOCOL_VERSION.to_string(),
        }
    }
}

/// Configuration of one Pando deployment.
///
/// A deployment is specific to a single user, project and task lifetime
/// (design principle DP1): the configuration is created on startup, passed to
/// [`Pando::new`](crate::master::Pando::new) and dropped when the stream of
/// values is exhausted.
///
/// The knobs are grouped into nested sub-configs — [`BatchingConfig`],
/// [`ReactorConfig`], [`TransportConfig`], [`RunConfig`] — each with a
/// `Default`; see the [module docs](self) for the struct-update idiom. The
/// `with_*` builders below write through to the nested fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PandoConfig {
    /// Windowing and frame coalescing; see [`BatchingConfig`].
    pub batching: BatchingConfig,
    /// Endpoint driving and lender sharding; see [`ReactorConfig`].
    pub reactor: ReactorConfig,
    /// Simulated-channel profile and TCP knobs; see [`TransportConfig`].
    pub transport: TransportConfig,
    /// Clock, windows and bundle identity; see [`RunConfig`].
    pub run: RunConfig,
}

impl PandoConfig {
    /// The protocol version implemented by this crate.
    pub const PROTOCOL_VERSION: &'static str = "/pando/1.0.0";

    /// Default size of the reactor pool: enough to keep a few cores busy
    /// with dispatch/receive bookkeeping while volunteers do the actual
    /// compute. Deterministic (not derived from the host's core count) so
    /// runs are reproducible.
    pub const DEFAULT_REACTOR_THREADS: usize = 4;

    /// A configuration suitable for in-process tests: instant channels, a
    /// batch size of 2, a two-thread reactor and tightened TCP liveness
    /// windows.
    pub fn local_test() -> Self {
        Self {
            reactor: ReactorConfig { threads: 2, ..ReactorConfig::default() },
            transport: TransportConfig {
                channel: ChannelConfig::instant(),
                tcp: TcpConfig::local_test(),
            },
            run: RunConfig {
                startup_grace: Duration::from_millis(100),
                measurement_window: Duration::from_secs(1),
                ..RunConfig::default()
            },
            ..Self::default()
        }
    }

    /// The configuration used by the paper's LAN experiment (batch size 2,
    /// Wi-Fi profile, five-minute window). This is also the `Default`.
    pub fn lan() -> Self {
        Self::default()
    }

    /// Returns the configuration with a different batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be at least 1");
        self.batching.batch_size = batch_size;
        self
    }

    /// Returns the configuration with a different channel profile.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.transport.channel = channel;
        self
    }

    /// Returns the configuration with different TCP transport knobs.
    pub fn with_tcp(mut self, tcp: TcpConfig) -> Self {
        self.transport.tcp = tcp;
        self
    }

    /// Returns the configuration with an explicit per-frame coalescing limit.
    ///
    /// # Panics
    ///
    /// Panics if `tasks_per_frame` is zero.
    pub fn with_tasks_per_frame(mut self, tasks_per_frame: usize) -> Self {
        assert!(tasks_per_frame > 0, "tasks per frame must be at least 1");
        self.batching.tasks_per_frame = Some(tasks_per_frame);
        self
    }

    /// Returns the configuration with a different volunteer backend.
    pub fn with_backend(mut self, backend: VolunteerBackend) -> Self {
        self.reactor.backend = backend;
        self
    }

    /// Returns the configuration with a different reactor pool size.
    ///
    /// # Panics
    ///
    /// Panics if `reactor_threads` is zero.
    pub fn with_reactor_threads(mut self, reactor_threads: usize) -> Self {
        assert!(reactor_threads > 0, "reactor threads must be at least 1");
        self.reactor.threads = reactor_threads;
        self
    }

    /// Returns the configuration with an explicit lender shard count.
    ///
    /// # Panics
    ///
    /// Panics if `lender_shards` is zero.
    pub fn with_lender_shards(mut self, lender_shards: usize) -> Self {
        assert!(lender_shards > 0, "lender shards must be at least 1");
        self.reactor.lender_shards = Some(lender_shards);
        self
    }

    /// Returns the configuration with bounded starved-kicks switched on or
    /// off; see [`ReactorConfig::bounded_wakes`]. `false` restores the
    /// broadcast kicks for A/B comparison.
    pub fn with_bounded_wakes(mut self, bounded_wakes: bool) -> Self {
        self.reactor.bounded_wakes = bounded_wakes;
        self
    }

    /// Returns the configuration with adaptive batching switched on or off.
    pub fn with_adaptive_batching(mut self, adaptive_batching: bool) -> Self {
        self.batching.adaptive = adaptive_batching;
        self
    }

    /// A fully deterministic configuration for the virtual-clock fleet
    /// simulator ([`sim::simulate_fleet`](crate::sim::simulate_fleet)): the
    /// LAN network profile (2 ms latency, 1 ms jitter, 100 ms heartbeats,
    /// 500 ms failure timeout) with every jitter generator seeded from
    /// `seed`, a virtual [`Clock`], and the reactor backend in inline mode.
    /// Two deployments built from the same seed and driven by the same
    /// scheduler produce identical event traces, byte for byte.
    ///
    /// Deployments with a virtual clock must be *driven*: nothing spawns
    /// threads, so time (and therefore progress) only happens when a
    /// scheduler steps the reactor and advances the clock. Use
    /// [`simulate_fleet`](crate::sim::simulate_fleet) rather than wiring one
    /// manually.
    pub fn deterministic(seed: u64) -> Self {
        Self {
            transport: TransportConfig {
                channel: ChannelConfig::lan().with_seed(seed),
                ..TransportConfig::default()
            },
            run: RunConfig {
                clock: Clock::virtual_clock(),
                startup_grace: Duration::from_millis(100),
                ..RunConfig::default()
            },
            ..Self::default()
        }
    }

    /// Returns the configuration with a different clock. A virtual clock
    /// puts the reactor in inline (thread-free, externally stepped) mode;
    /// see [`PandoConfig::deterministic`].
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.run.clock = clock;
        self
    }

    /// The lender shard count actually used by the master: the explicit
    /// [`ReactorConfig::lender_shards`] if set, otherwise
    /// `min(threads, 4)` — more shards than reactor threads cannot
    /// dispatch concurrently, and beyond four the splitter serialisation
    /// dominates. The [`VolunteerBackend::Threads`] backend ignores this and
    /// always runs a single shard.
    pub fn effective_lender_shards(&self) -> usize {
        match self.reactor.backend {
            VolunteerBackend::Threads => 1,
            VolunteerBackend::Reactor => {
                self.reactor.lender_shards.unwrap_or(self.reactor.threads.min(4)).max(1)
            }
        }
    }

    /// The coalescing limit actually used by the dispatcher: the explicit
    /// [`BatchingConfig::tasks_per_frame`] if set, otherwise the batch size.
    pub fn effective_tasks_per_frame(&self) -> usize {
        self.batching.tasks_per_frame.unwrap_or(self.batching.batch_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = PandoConfig::default();
        assert_eq!(config.batching.batch_size, 2);
        assert_eq!(config.run.measurement_window, Duration::from_secs(300));
        assert_eq!(config.run.protocol_version, "/pando/1.0.0");
        assert_eq!(config, PandoConfig::lan(), "the default is the paper's LAN setup");
    }

    #[test]
    fn builders_adjust_fields() {
        let config =
            PandoConfig::local_test().with_batch_size(4).with_channel(ChannelConfig::wan());
        assert_eq!(config.batching.batch_size, 4);
        assert_eq!(config.transport.channel, ChannelConfig::wan());
        let config = config.with_tcp(TcpConfig::default());
        assert_eq!(config.transport.tcp, TcpConfig::default());
    }

    #[test]
    fn sub_configs_compose_with_struct_update() {
        let config = PandoConfig {
            batching: BatchingConfig { batch_size: 16, ..BatchingConfig::default() },
            reactor: ReactorConfig { threads: 8, ..ReactorConfig::default() },
            ..PandoConfig::default()
        };
        assert_eq!(config.batching.batch_size, 16);
        assert_eq!(config.reactor.threads, 8);
        assert_eq!(config.transport, TransportConfig::default());
        assert_eq!(config.run, RunConfig::default());
    }

    #[test]
    fn bounded_wakes_defaults_on_and_toggles() {
        assert!(ReactorConfig::default().bounded_wakes);
        assert!(PandoConfig::local_test().reactor.bounded_wakes);
        let config = PandoConfig::local_test().with_bounded_wakes(false);
        assert!(!config.reactor.bounded_wakes);
        assert!(config.with_bounded_wakes(true).reactor.bounded_wakes);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_is_rejected() {
        let _ = PandoConfig::local_test().with_batch_size(0);
    }

    #[test]
    fn tasks_per_frame_defaults_to_the_batch_size() {
        let config = PandoConfig::local_test().with_batch_size(8);
        assert_eq!(config.batching.tasks_per_frame, None);
        assert_eq!(config.effective_tasks_per_frame(), 8);
        let config = config.with_tasks_per_frame(3);
        assert_eq!(config.effective_tasks_per_frame(), 3);
    }

    #[test]
    #[should_panic(expected = "tasks per frame")]
    fn zero_tasks_per_frame_is_rejected() {
        let _ = PandoConfig::local_test().with_tasks_per_frame(0);
    }

    #[test]
    fn reactor_is_the_default_backend() {
        let config = PandoConfig::default();
        assert_eq!(config.reactor.backend, VolunteerBackend::Reactor);
        assert_eq!(config.reactor.threads, PandoConfig::DEFAULT_REACTOR_THREADS);
        let config = config.with_backend(VolunteerBackend::Threads).with_reactor_threads(8);
        assert_eq!(config.reactor.backend, VolunteerBackend::Threads);
        assert_eq!(config.reactor.threads, 8);
    }

    #[test]
    #[should_panic(expected = "reactor threads")]
    fn zero_reactor_threads_is_rejected() {
        let _ = PandoConfig::local_test().with_reactor_threads(0);
    }

    #[test]
    fn lender_shards_derive_from_the_reactor_pool() {
        let config = PandoConfig::local_test();
        assert_eq!(config.reactor.lender_shards, None);
        assert_eq!(config.effective_lender_shards(), 2, "min(reactor_threads = 2, 4)");
        let config = config.with_reactor_threads(8);
        assert_eq!(config.effective_lender_shards(), 4, "derived shards cap at 4");
        let config = config.with_lender_shards(6);
        assert_eq!(config.effective_lender_shards(), 6, "an explicit count wins");
        let config = config.with_backend(VolunteerBackend::Threads);
        assert_eq!(config.effective_lender_shards(), 1, "the threads backend never shards");
    }

    #[test]
    #[should_panic(expected = "lender shards")]
    fn zero_lender_shards_is_rejected() {
        let _ = PandoConfig::local_test().with_lender_shards(0);
    }

    #[test]
    fn deterministic_config_uses_a_virtual_clock() {
        let config = PandoConfig::deterministic(42);
        assert!(config.run.clock.is_virtual());
        assert_eq!(config.transport.channel.seed, 42);
        assert_eq!(config.reactor.backend, VolunteerBackend::Reactor);
        assert!(!PandoConfig::local_test().run.clock.is_virtual());
        let clock = Clock::virtual_clock();
        let config = PandoConfig::local_test().with_clock(clock.clone());
        assert_eq!(config.run.clock, clock);
    }

    #[test]
    fn adaptive_batching_defaults_off() {
        let config = PandoConfig::local_test();
        assert!(!config.batching.adaptive);
        assert!(config.with_adaptive_batching(true).batching.adaptive);
    }
}
