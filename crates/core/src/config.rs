//! Deployment configuration.

use pando_netsim::channel::ChannelConfig;
use std::time::Duration;

/// Configuration of one Pando deployment.
///
/// A deployment is specific to a single user, project and task lifetime
/// (design principle DP1): the configuration is created on startup, passed to
/// [`Pando::new`](crate::master::Pando::new) and dropped when the stream of
/// values is exhausted.
#[derive(Debug, Clone, PartialEq)]
pub struct PandoConfig {
    /// Number of values that may be in flight towards one volunteer at a
    /// time (the `--batch-size` argument of the original tool). A batch size
    /// of 2 lets one input travel while another is being processed,
    /// which is enough to hide the network latency of compute-bound
    /// applications (paper §5.5).
    pub batch_size: usize,
    /// Network profile of the channels towards the volunteers.
    pub channel: ChannelConfig,
    /// How long the master waits for the first volunteer before reporting
    /// (it keeps waiting regardless; this only controls a log line).
    pub startup_grace: Duration,
    /// Length of the throughput measurement window used by
    /// [`metrics`](crate::metrics) (five minutes in the paper).
    pub measurement_window: Duration,
    /// Human-readable name of the processing-function bundle served to
    /// volunteers (the equivalent of the browserified `render.js`).
    pub bundle_name: String,
    /// Version tag of the Pando protocol exposed to the bundle.
    pub protocol_version: String,
}

impl PandoConfig {
    /// The protocol version implemented by this crate.
    pub const PROTOCOL_VERSION: &'static str = "/pando/1.0.0";

    /// A configuration suitable for in-process tests: instant channels and a
    /// batch size of 2.
    pub fn local_test() -> Self {
        Self {
            batch_size: 2,
            channel: ChannelConfig::instant(),
            startup_grace: Duration::from_millis(100),
            measurement_window: Duration::from_secs(1),
            bundle_name: "bundle.js".to_string(),
            protocol_version: Self::PROTOCOL_VERSION.to_string(),
        }
    }

    /// The configuration used by the paper's LAN experiment (batch size 2,
    /// Wi-Fi profile, five-minute window).
    pub fn lan() -> Self {
        Self {
            batch_size: 2,
            channel: ChannelConfig::lan(),
            startup_grace: Duration::from_secs(1),
            measurement_window: Duration::from_secs(300),
            bundle_name: "bundle.js".to_string(),
            protocol_version: Self::PROTOCOL_VERSION.to_string(),
        }
    }

    /// Returns the configuration with a different batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Returns the configuration with a different channel profile.
    pub fn with_channel(mut self, channel: ChannelConfig) -> Self {
        self.channel = channel;
        self
    }
}

impl Default for PandoConfig {
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = PandoConfig::default();
        assert_eq!(config.batch_size, 2);
        assert_eq!(config.measurement_window, Duration::from_secs(300));
        assert_eq!(config.protocol_version, "/pando/1.0.0");
    }

    #[test]
    fn builders_adjust_fields() {
        let config =
            PandoConfig::local_test().with_batch_size(4).with_channel(ChannelConfig::wan());
        assert_eq!(config.batch_size, 4);
        assert_eq!(config.channel, ChannelConfig::wan());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_is_rejected() {
        let _ = PandoConfig::local_test().with_batch_size(0);
    }
}
