//! The scripted deployment example of paper Figure 4.
//!
//! "A tablet joins after the volunteer URL has been opened, then renders an
//! image, then a faster phone joins, also renders an image, then the tablet
//! crashes, and the phone takes over for the missing image." This module
//! replays that scenario against the real master/worker implementation and
//! returns a trace of the observable events, used both by an integration test
//! and by the `fig4_deployment` bench binary.

use crate::config::PandoConfig;
use crate::master::Pando;
use crate::worker::WorkerBuilder;
use pando_netsim::fault::FaultPlan;
use pando_pull_stream::codec::StringCodec;
use pando_pull_stream::source::{values, SourceExt};
use pando_pull_stream::StreamError;
use std::time::Duration;

/// One observable event of the deployment example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployEvent {
    /// Pando started and printed the volunteer URL.
    Started {
        /// Number of values to process.
        inputs: u64,
    },
    /// A device joined the deployment.
    Joined {
        /// Name of the device.
        device: String,
    },
    /// A device crashed.
    Crashed {
        /// Name of the device.
        device: String,
        /// Number of values it had completed before crashing.
        completed: u64,
    },
    /// A device left cleanly at the end.
    Left {
        /// Name of the device.
        device: String,
        /// Number of values it completed.
        completed: u64,
    },
    /// The run finished: all outputs produced, in order.
    Finished {
        /// The ordered outputs.
        outputs: Vec<String>,
        /// Number of values that had to be re-lent because of the crash.
        relends: u64,
    },
}

/// Replays the Figure 4 scenario: three frames to render, a slow tablet that
/// crashes after one frame, and a faster phone that takes over.
///
/// The `render` function stands in for the raytracer; the default used by the
/// bench binary renders real (small) frames.
pub fn run_figure4_scenario<F>(render: F) -> Vec<DeployEvent>
where
    F: Fn(&str) -> Result<String, StreamError> + Send + Clone + 'static,
{
    let inputs = vec!["x1".to_string(), "x2".to_string(), "x3".to_string()];
    let mut trace = vec![DeployEvent::Started { inputs: inputs.len() as u64 }];

    let config = PandoConfig::local_test().with_batch_size(1);
    let pando = Pando::new(config);

    // The tablet joins first; it is slow and crashes after one frame.
    let slow_render = {
        let render = render.clone();
        move |input: &String| {
            std::thread::sleep(Duration::from_millis(30));
            render(input)
        }
    };
    let tablet = WorkerBuilder::new().fault(FaultPlan::AfterTasks(1)).name("tablet").spawn_typed(
        pando.open_volunteer_channel(),
        StringCodec,
        slow_render,
    );
    trace.push(DeployEvent::Joined { device: "tablet".into() });

    // Start processing, collecting the ordered output in the background.
    let output_source = pando.run_typed(StringCodec, values(inputs));
    let collector = std::thread::spawn(move || output_source.collect_values());

    // The phone joins a moment later.
    std::thread::sleep(Duration::from_millis(10));
    let phone = WorkerBuilder::new().name("phone").spawn_typed(
        pando.open_volunteer_channel(),
        StringCodec,
        move |input: &String| render(input),
    );
    trace.push(DeployEvent::Joined { device: "phone".into() });

    let tablet_report = tablet.join();
    trace.push(DeployEvent::Crashed {
        device: tablet_report.name.clone(),
        completed: tablet_report.processed,
    });

    let outputs =
        collector.join().expect("collector does not panic").expect("output stream succeeds");
    let phone_report = phone.join();
    trace.push(DeployEvent::Left {
        device: phone_report.name.clone(),
        completed: phone_report.processed,
    });
    pando.join_volunteers();
    let relends = pando.lender_stats().map(|s| s.relends).unwrap_or(0);
    trace.push(DeployEvent::Finished { outputs, relends });
    trace
}

/// Renders the trace as human-readable lines, one per event, the format
/// printed by the `fig4_deployment` binary.
pub fn format_trace(trace: &[DeployEvent]) -> Vec<String> {
    trace
        .iter()
        .map(|event| match event {
            DeployEvent::Started { inputs } => {
                format!("pando: serving volunteer code, {inputs} values to process")
            }
            DeployEvent::Joined { device } => format!("{device}: joined"),
            DeployEvent::Crashed { device, completed } => {
                format!("{device}: crashed after {completed} value(s)")
            }
            DeployEvent::Left { device, completed } => {
                format!("{device}: left after {completed} value(s)")
            }
            DeployEvent::Finished { outputs, relends } => format!(
                "pando: done, {} ordered outputs, {relends} value(s) re-lent after the crash",
                outputs.len()
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_render(input: &str) -> Result<String, StreamError> {
        Ok(format!("frame({input})"))
    }

    #[test]
    fn figure4_scenario_completes_despite_the_crash() {
        let trace = run_figure4_scenario(fake_render);
        // The tablet crashed, the phone finished, every frame is present and
        // in order.
        let crashed = trace
            .iter()
            .any(|e| matches!(e, DeployEvent::Crashed { device, .. } if device == "tablet"));
        assert!(crashed, "trace: {trace:?}");
        let DeployEvent::Finished { outputs, .. } = trace.last().unwrap() else {
            panic!("last event must be Finished");
        };
        assert_eq!(outputs, &vec!["frame(x1)".to_string(), "frame(x2)".into(), "frame(x3)".into()]);
        // The phone processed at least the frames the tablet never finished.
        let phone_completed = trace.iter().find_map(|e| match e {
            DeployEvent::Left { device, completed } if device == "phone" => Some(*completed),
            _ => None,
        });
        assert!(phone_completed.unwrap() >= 2);
    }

    #[test]
    fn trace_formatting_is_readable() {
        let trace = run_figure4_scenario(fake_render);
        let lines = format_trace(&trace);
        assert_eq!(lines.len(), trace.len());
        assert!(lines[0].contains("3 values"));
        assert!(lines.iter().any(|l| l.contains("crashed")));
        assert!(lines.last().unwrap().contains("ordered outputs"));
    }
}
