//! The Pando master process.
//!
//! The master (paper Figure 7) owns the StreamLender that coordinates the
//! distributed map. Each volunteer is wired to a fresh sub-stream through
//! one of two backends ([`ReactorConfig::backend`](crate::config::ReactorConfig::backend)):
//!
//! * **Reactor** (default): the volunteer becomes a registration on the
//!   shared [`reactor`](crate::reactor) pool — a fixed number of threads
//!   multiplexes dispatch and receive for *all* volunteers, so one master
//!   scales to tens of thousands of endpoints.
//! * **Threads** (legacy, kept for A/B comparison): two dedicated pump
//!   threads per volunteer. The *dispatcher* borrows values from the
//!   sub-stream — bounded by the batch-size window — and coalesces whatever
//!   is immediately available into a single [`Message::TaskBatch`] frame, so
//!   a whole window pays the channel round-trip once. The *receiver*
//!   demultiplexes [`Message::ResultBatch`] frames back into the lender and
//!   releases window slots.
//!
//! Either way, results are emitted on a single ordered output stream.
//! Payloads are opaque [`Bytes`] end to end; [`Pando::run_typed`] layers a
//! [`TaskCodec`] on top for applications with native task/result types.

use crate::config::{PandoConfig, VolunteerBackend};
use crate::metrics::ThroughputMeter;
use crate::protocol::Message;
use crate::reactor::{DriverHandle, Reactor, ReactorStats};
use crate::transport::Transport;
use bytes::Bytes;
use pando_netsim::channel::{pair_with_clock, ChannelConfig, Endpoint, RecvError, SendError};
use pando_netsim::codec::{Record, MAX_FRAME_LEN, RECORD_HEADER_LEN};
use pando_pull_stream::codec::TaskCodec;
use pando_pull_stream::lender::{LenderStats, SubStreamSink, SubStreamSource};
use pando_pull_stream::shard::{ShardedLender, ShardedOutput};
use pando_pull_stream::source::Source;
use pando_pull_stream::sync::Semaphore;
use pando_pull_stream::{Answer, Request, StreamError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The Pando master: accepts volunteers and distributes a stream of values to
/// them. See the [crate documentation](crate) for a complete example.
pub struct Pando {
    config: PandoConfig,
    meter: ThroughputMeter,
    state: Arc<Mutex<MasterState>>,
}

struct MasterState {
    lender: Option<ShardedLender<Bytes, Bytes>>,
    /// The reactor pool, created lazily on the first reactor-backed wiring.
    /// Dropping the last Pando handle joins its threads.
    reactor: Option<Arc<Reactor>>,
    /// Volunteer transports accepted before the input stream was attached.
    pending: Vec<(String, Arc<dyn Transport>)>,
    links: Vec<VolunteerLink>,
    next_volunteer: u64,
    volunteers_connected: u64,
}

impl Clone for Pando {
    /// Cloning a `Pando` yields another handle on the *same* deployment:
    /// volunteers registered through any handle feed the same StreamLender.
    fn clone(&self) -> Self {
        Self { config: self.config.clone(), meter: self.meter.clone(), state: self.state.clone() }
    }
}

impl std::fmt::Debug for Pando {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Pando")
            .field("batch_size", &self.config.batching.batch_size)
            .field("volunteers_connected", &state.volunteers_connected)
            .field("running", &state.lender.is_some())
            .finish()
    }
}

impl Pando {
    /// Creates a master with the given configuration.
    pub fn new(config: PandoConfig) -> Self {
        Self {
            config,
            meter: ThroughputMeter::new(),
            state: Arc::new(Mutex::new(MasterState {
                lender: None,
                reactor: None,
                pending: Vec::new(),
                links: Vec::new(),
                next_volunteer: 0,
                volunteers_connected: 0,
            })),
        }
    }

    /// The configuration of this deployment.
    pub fn config(&self) -> &PandoConfig {
        &self.config
    }

    /// The throughput meter fed by this deployment (one row per volunteer).
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Creates a channel pair using the deployment's network profile (and
    /// clock), registers the master side, and returns the volunteer side —
    /// the in-process equivalent of a device opening the volunteer URL on
    /// the same LAN. Each channel's jitter generator is seeded from the
    /// deployment seed plus the volunteer's join index, so a whole fleet is
    /// reproducible from one [`PandoConfig::deterministic`] seed.
    pub fn open_volunteer_channel(&self) -> Endpoint<Message> {
        let channel = self.config.transport.channel.clone();
        let seed = channel.seed.wrapping_add(self.state.lock().next_volunteer);
        self.open_volunteer_channel_with(channel.with_seed(seed))
    }

    /// Like [`Pando::open_volunteer_channel`] but with an explicit channel
    /// configuration (including its jitter seed) instead of the deployment's
    /// network profile — how a scenario script gives each volunteer its own
    /// link: a phone on lossy WAN next to a laptop on the office LAN. The
    /// channel still runs on the deployment clock, so scenario links stay
    /// deterministic under [`PandoConfig::deterministic`].
    pub fn open_volunteer_channel_with(&self, channel: ChannelConfig) -> Endpoint<Message> {
        let index = self.state.lock().next_volunteer;
        let (master_side, volunteer_side) =
            pair_with_clock::<Message>(channel, self.config.run.clock.clone());
        self.add_volunteer_endpoint(format!("volunteer-{index}"), master_side);
        volunteer_side
    }

    /// Registers the master side of a simulated volunteer connection, for
    /// example one delivered by a
    /// [`PublicServer`](pando_netsim::signaling::PublicServer). Shorthand
    /// for [`Pando::add_volunteer_transport`] with a netsim endpoint.
    pub fn add_volunteer_endpoint(&self, name: String, endpoint: Endpoint<Message>) {
        self.add_volunteer_transport(name, Arc::new(endpoint));
    }

    /// Registers the master side of a volunteer connection over any
    /// [`Transport`] — a simulated channel or a live
    /// [`TcpTransport`](crate::transport::tcp::TcpTransport) accepted from
    /// another process. Volunteers may be added at any time, before or while
    /// the input stream is processed (dynamic property).
    pub fn add_volunteer_transport(&self, name: String, endpoint: Arc<dyn Transport>) {
        let mut state = self.state.lock();
        state.next_volunteer += 1;
        state.volunteers_connected += 1;
        match state.lender.clone() {
            Some(lender) => {
                let reactor = self.reactor_for(&mut state, &lender);
                let link = wire_volunteer(
                    &lender,
                    reactor.as_deref(),
                    &name,
                    endpoint,
                    &self.config,
                    &self.meter,
                );
                state.links.push(link);
            }
            None => state.pending.push((name, endpoint)),
        }
    }

    /// Returns the shared reactor when the reactor backend is active,
    /// creating the pool (and attaching it to the lender) on first use.
    fn reactor_for(
        &self,
        state: &mut MasterState,
        lender: &ShardedLender<Bytes, Bytes>,
    ) -> Option<Arc<Reactor>> {
        match self.config.reactor.backend {
            VolunteerBackend::Threads => None,
            VolunteerBackend::Reactor => Some(
                state
                    .reactor
                    .get_or_insert_with(|| {
                        let reactor = Arc::new(Reactor::new(&self.config));
                        reactor.attach_lender(lender);
                        reactor
                    })
                    .clone(),
            ),
        }
    }

    /// Scheduling counters of the reactor pool, if the reactor backend is
    /// active and at least one volunteer was wired.
    pub fn reactor_stats(&self) -> Option<ReactorStats> {
        self.state.lock().reactor.as_ref().map(|reactor| reactor.stats())
    }

    /// The shared reactor, once the first volunteer was wired on the reactor
    /// backend. The deterministic fleet simulator uses this to single-step
    /// an inline reactor.
    pub(crate) fn reactor_handle(&self) -> Option<Arc<Reactor>> {
        self.state.lock().reactor.clone()
    }

    /// The claim log of the underlying sharded lender (chunk index → owning
    /// shard, in claim order), if the run has started. Under the
    /// deterministic simulator this sequence is identical across same-seed
    /// runs; see [`ShardedLender::claim_log`].
    pub fn claim_log(&self) -> Option<Vec<usize>> {
        self.state.lock().lender.as_ref().map(ShardedLender::claim_log)
    }

    /// Number of volunteers that have connected so far (including ones that
    /// have since left or crashed).
    pub fn volunteers_connected(&self) -> u64 {
        self.state.lock().volunteers_connected
    }

    /// Aggregated statistics of the underlying lender shards, if the run has
    /// started.
    pub fn lender_stats(&self) -> Option<LenderStats> {
        self.state.lock().lender.as_ref().map(ShardedLender::stats)
    }

    /// Per-shard lender statistics, if the run has started. Index `i` is
    /// shard `i`; a single-shard deployment reports one row.
    pub fn shard_stats(&self) -> Option<Vec<LenderStats>> {
        self.state.lock().lender.as_ref().map(ShardedLender::shard_stats)
    }

    /// Samples every shard's queue gauges (staged depth, in-flight count)
    /// and the reactor's wake-discipline counters into the
    /// [`ThroughputMeter`], so the next [`ThroughputMeter::report`] carries
    /// fresh per-shard rows and a scheduler row alongside the borrow/result
    /// counters the dispatch path accumulates.
    pub fn observe_shards(&self) {
        let state = self.state.lock();
        if let Some(lender) = state.lender.as_ref() {
            for shard in 0..lender.shard_count() {
                self.meter.observe_shard(
                    shard,
                    lender.shard_depth(shard) as u64,
                    lender.shard_in_flight(shard) as u64,
                );
            }
        }
        if let Some(reactor) = state.reactor.as_ref() {
            let stats = reactor.stats();
            self.meter.observe_scheduler(crate::metrics::SchedulerCounters {
                polls: stats.polls,
                wasted_polls: stats.wasted_polls,
                kicks_sent: stats.kicks_sent,
                kicks_suppressed: stats.kicks_suppressed,
            });
        }
    }

    /// Attaches the binary input stream and returns the ordered output
    /// stream. Payloads are opaque [`Bytes`]; use [`Pando::run_typed`] to
    /// work with an application's native types through a [`TaskCodec`].
    ///
    /// Volunteers registered earlier are wired immediately; others may join
    /// later. The output terminates once the input is exhausted and every
    /// value has produced a result.
    ///
    /// # Panics
    ///
    /// Panics if `run` was already called: a Pando deployment processes a
    /// single stream during its lifetime (design principle DP1).
    pub fn run(&self, input: impl Source<Bytes> + 'static) -> ShardedOutput<Bytes, Bytes> {
        let mut state = self.state.lock();
        assert!(state.lender.is_none(), "a Pando deployment runs a single stream");
        let lender = ShardedLender::new(
            input,
            self.config.effective_lender_shards(),
            self.config.effective_tasks_per_frame(),
        );
        let pending: Vec<(String, Arc<dyn Transport>)> = state.pending.drain(..).collect();
        for (name, endpoint) in pending {
            let reactor = self.reactor_for(&mut state, &lender);
            let link = wire_volunteer(
                &lender,
                reactor.as_deref(),
                &name,
                endpoint,
                &self.config,
                &self.meter,
            );
            state.links.push(link);
        }
        let output = lender.output();
        state.lender = Some(lender);
        output
    }

    /// Attaches a *typed* input stream through `codec` and returns the
    /// ordered stream of decoded results.
    ///
    /// Tasks are encoded to their binary wire form as the lender reads them
    /// (lazily), and results are decoded as the output is pulled; the hot
    /// path in between carries only [`Bytes`]. A result that fails to decode
    /// terminates the output with its protocol error.
    ///
    /// # Panics
    ///
    /// Panics if a stream was already attached, like [`Pando::run`].
    pub fn run_typed<C>(
        &self,
        codec: C,
        input: impl Source<C::Task> + 'static,
    ) -> impl Source<C::Result> + 'static
    where
        C: TaskCodec,
    {
        use pando_pull_stream::source::SourceExt;
        let codec = Arc::new(codec);
        let encoder = codec.clone();
        let output = self.run(input.map_values(move |task| encoder.encode_task(&task)));
        output.try_map(move |payload: Bytes| codec.decode_result(&payload))
    }

    /// Waits for every volunteer pump thread spawned so far to finish.
    /// Useful in tests to assert on final statistics.
    pub fn join_volunteers(&self) {
        let links: Vec<VolunteerLink> = {
            let mut state = self.state.lock();
            state.links.drain(..).collect()
        };
        for link in links {
            // Transport errors here reflect volunteer crashes, which are an
            // expected part of operation; the lender already re-lent the
            // affected values.
            let _ = link.join();
        }
    }
}

/// Handle on the machinery driving one volunteer: either the dispatcher and
/// receiver pump threads (legacy backend) or a registration on the shared
/// reactor pool.
#[derive(Debug)]
pub enum VolunteerLink {
    /// Thread-per-volunteer pumps.
    Threads {
        /// The dispatcher pump thread.
        dispatcher: JoinHandle<Result<(), StreamError>>,
        /// The receiver pump thread.
        receiver: JoinHandle<Result<(), StreamError>>,
    },
    /// A driver registered on the reactor pool.
    Reactor(DriverHandle),
}

impl VolunteerLink {
    /// Waits for the volunteer session to end and reports the first error.
    ///
    /// # Errors
    ///
    /// Returns the first stream error reported by either direction.
    pub fn join(self) -> Result<(), StreamError> {
        match self {
            VolunteerLink::Threads { dispatcher, receiver } => {
                let dispatcher = dispatcher
                    .join()
                    .map_err(|_| StreamError::protocol("volunteer dispatcher panicked"))?;
                let receiver = receiver
                    .join()
                    .map_err(|_| StreamError::protocol("volunteer receiver panicked"))?;
                dispatcher.and(receiver)
            }
            VolunteerLink::Reactor(handle) => handle.join(),
        }
    }

    /// Returns `true` once the volunteer session has ended.
    pub fn is_finished(&self) -> bool {
        match self {
            VolunteerLink::Threads { dispatcher, receiver } => {
                dispatcher.is_finished() && receiver.is_finished()
            }
            VolunteerLink::Reactor(handle) => handle.is_finished(),
        }
    }
}

/// Picks the lender shard a joining volunteer is pinned to: the hash of its
/// id spreads a fleet uniformly, but a shard left without any device (none
/// hashed there yet, or its devices crashed away while it still holds
/// values) takes priority — deepest backlog first — so no shard's work ever
/// waits for the hash to land on it.
fn shard_for_volunteer(lender: &ShardedLender<Bytes, Bytes>, name: &str) -> usize {
    let shards = lender.shard_count();
    if shards == 1 {
        return 0;
    }
    let mut rescue: Option<(usize, usize)> = None;
    for shard in 0..shards {
        if lender.shard_active_substreams(shard) == 0 {
            let backlog = lender.shard_depth(shard);
            if rescue.map(|(_, deepest)| backlog > deepest).unwrap_or(true) {
                rescue = Some((shard, backlog));
            }
        }
    }
    if let Some((shard, _)) = rescue {
        return shard;
    }
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// Wires one volunteer endpoint to a fresh sub-stream on one lender shard
/// (volunteer id hash → shard; see [`shard_for_volunteer`]). On the reactor
/// backend this is a registration on the shared pool; on the legacy backend
/// it spawns a dispatcher thread that batches borrowed values into task
/// frames and a receiver thread that demultiplexes result frames (paper
/// Figures 7 and 9, with protocol-level batching on top).
fn wire_volunteer(
    lender: &ShardedLender<Bytes, Bytes>,
    reactor: Option<&Reactor>,
    name: &str,
    endpoint: Arc<dyn Transport>,
    config: &PandoConfig,
    meter: &ThroughputMeter,
) -> VolunteerLink {
    let shard = shard_for_volunteer(lender, name);
    let duplex = lender.lend_on(shard).into_duplex();
    if let Some(reactor) = reactor {
        return VolunteerLink::Reactor(
            reactor.register(name, shard, endpoint, duplex, config, meter),
        );
    }
    let (source, sink) = duplex;
    // The in-flight window: `batch_size` slots, one per borrowed value that
    // has not produced a result yet (the Limiter of the original pipeline,
    // here driving batch coalescing as well).
    let window = Semaphore::new(config.batching.batch_size);
    let tasks_per_frame = config.effective_tasks_per_frame();

    let dispatcher = {
        let endpoint = endpoint.clone();
        let window = window.clone();
        let meter = meter.clone();
        let name = name.to_string();
        std::thread::Builder::new()
            .name(format!("pando-dispatch-{name}"))
            .spawn(move || run_dispatcher(source, endpoint, window, tasks_per_frame, meter, name))
            .expect("spawn volunteer dispatcher thread")
    };
    let receiver = {
        let name = name.to_string();
        let meter = meter.clone();
        std::thread::Builder::new()
            .name(format!("pando-receive-{name}"))
            .spawn(move || run_receiver(sink, endpoint, window, meter, name))
            .expect("spawn volunteer receiver thread")
    };
    VolunteerLink::Threads { dispatcher, receiver }
}

/// Dispatcher pump: borrows values from the sub-stream within the in-flight
/// window and coalesces whatever is immediately available — up to
/// `tasks_per_frame` — into one frame.
fn run_dispatcher(
    mut source: SubStreamSource<Bytes, Bytes>,
    endpoint: Arc<dyn Transport>,
    window: Semaphore,
    tasks_per_frame: usize,
    meter: ThroughputMeter,
    name: String,
) -> Result<(), StreamError> {
    // A value pulled for a frame that had no byte budget left; it opens the
    // next frame (its window slot is already held).
    let mut carry: Option<Record> = None;
    loop {
        let first = match carry.take() {
            Some(record) => record,
            None => {
                // One window slot per task; the receiver releases slots as
                // results return and closes the window when the channel ends.
                if !window.acquire() {
                    let _ = source.pull(Request::Abort);
                    return Ok(());
                }
                match source.pull(Request::Ask) {
                    Answer::Value(lend) => Record::new(lend.seq, lend.value),
                    Answer::Done => {
                        endpoint.close();
                        return Ok(());
                    }
                    Answer::Err(err) => {
                        endpoint.close();
                        return Err(err);
                    }
                }
            }
        };
        // Frame byte budget: batching must never assemble a frame the codec
        // would reject (its u32 length field caps at MAX_FRAME_LEN).
        let mut body = 4 + RECORD_HEADER_LEN + first.payload.len();
        let mut records = vec![first];
        // Coalesce without blocking: take only values that are ready *now*,
        // only while window slots remain and only within the byte budget.
        while records.len() < tasks_per_frame && body < MAX_FRAME_LEN && window.try_acquire() {
            match source.try_pull() {
                Some(lend) => {
                    let add = RECORD_HEADER_LEN + lend.value.len();
                    if body + add > MAX_FRAME_LEN {
                        // Keep the value (and its window slot) for the next
                        // frame instead of overflowing this one.
                        carry = Some(Record::new(lend.seq, lend.value));
                        break;
                    }
                    body += add;
                    records.push(Record::new(lend.seq, lend.value));
                }
                None => {
                    window.release();
                    break;
                }
            }
        }
        let message = Message::task_frame(records);
        let size = message.wire_size();
        let count = message.record_count();
        loop {
            match endpoint.send_records_with_size(message.clone(), size, count) {
                Ok(()) => {
                    meter.record_wire(&name, size as u64);
                    // The threads backend always runs a single shard.
                    meter.record_shard_borrows(0, count);
                    break;
                }
                Err(SendError::WouldBlock) => {
                    // Bounded write queue full: this dedicated dispatcher
                    // thread blocks until the transport drains, bailing out
                    // only if the volunteer dies while we wait.
                    if !endpoint.is_peer_alive() {
                        let err = StreamError::transport("volunteer failed while sending tasks");
                        let _ = source.pull(Request::Fail(err.clone()));
                        return Err(err);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(SendError::Closed) => {
                    let _ = source.pull(Request::Abort);
                    return Ok(());
                }
                Err(SendError::PeerFailed) => {
                    let err = StreamError::transport("volunteer failed while sending tasks");
                    let _ = source.pull(Request::Fail(err.clone()));
                    return Err(err);
                }
            }
        }
    }
}

/// Receiver pump: demultiplexes result frames back into the lender, releases
/// window slots, and decides how the sub-stream ends.
fn run_receiver(
    sink: SubStreamSink<Bytes, Bytes>,
    endpoint: Arc<dyn Transport>,
    window: Semaphore,
    meter: ThroughputMeter,
    name: String,
) -> Result<(), StreamError> {
    let mut accept = |seq: u64, payload: Bytes| {
        // A late or duplicate result for a value this sub-stream no longer
        // borrows is dropped (the conservative property makes the other copy
        // authoritative) — and it neither frees a window slot nor counts as
        // a completed task, since no in-flight borrow corresponds to it.
        if sink.push(seq, payload).is_ok() {
            meter.record(&name, 1.0);
            // The threads backend always runs a single shard.
            meter.record_shard_results(0, 1);
            window.release();
        }
    };
    loop {
        match endpoint.recv() {
            Ok(message @ Message::TaskResult { .. }) | Ok(message @ Message::ResultBatch(_)) => {
                meter.record_wire(&name, message.wire_size() as u64);
                message.demux_results(&mut accept);
            }
            Ok(Message::TaskError { seq, message }) => {
                // The processing function reported an error for this value;
                // the volunteer is treated as faulty so its values are
                // re-lent to other devices (crash-stop model).
                sink.finish(false);
                endpoint.close();
                window.close();
                let text = String::from_utf8_lossy(&message).into_owned();
                return Err(StreamError::new(format!(
                    "volunteer {name} failed on value {seq}: {text}"
                )));
            }
            Ok(Message::Heartbeat) | Ok(Message::Ack { .. }) => continue,
            Ok(Message::Goodbye) | Ok(Message::Task { .. }) | Ok(Message::TaskBatch(_)) => {
                // A clean goodbye (or nonsense we treat as end of stream).
                sink.finish(true);
                window.close();
                return Ok(());
            }
            Err(RecvError::Closed) => {
                sink.finish(true);
                window.close();
                return Ok(());
            }
            Err(RecvError::PeerFailed) => {
                sink.finish(false);
                window.close();
                return Err(StreamError::transport(format!(
                    "volunteer {name} disconnected (heartbeat timeout)"
                )));
            }
            Err(RecvError::Timeout) | Err(RecvError::Empty) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerBuilder;
    use pando_netsim::fault::FaultPlan;
    use pando_pull_stream::codec::StringCodec;
    use pando_pull_stream::source::{count, SourceExt};

    #[allow(clippy::ptr_arg)] // must match Fn(&C::Task) with C::Task = String
    fn square(input: &String) -> Result<String, StreamError> {
        let n: u64 = input.parse().map_err(|_| StreamError::new("not a number"))?;
        Ok((n * n).to_string())
    }

    fn number_source(n: u64) -> impl Source<String> + 'static {
        count(n).map_values(|v| v.to_string())
    }

    #[test]
    fn single_volunteer_end_to_end() {
        let pando = Pando::new(PandoConfig::local_test());
        let endpoint = pando.open_volunteer_channel();
        let worker = WorkerBuilder::new().spawn_typed(endpoint, StringCodec, square);
        let output = pando.run_typed(StringCodec, number_source(30)).collect_values().unwrap();
        assert_eq!(output, (1..=30u64).map(|v| (v * v).to_string()).collect::<Vec<_>>());
        let report = worker.join();
        assert_eq!(report.processed, 30);
        assert!(!report.crashed);
        pando.join_volunteers();
        let stats = pando.lender_stats().unwrap();
        assert_eq!(stats.results_emitted, 30);
        assert_eq!(stats.substreams_crashed, 0);
    }

    #[test]
    fn multiple_volunteers_share_work_and_order_is_kept() {
        let pando = Pando::new(PandoConfig::local_test());
        let workers: Vec<_> = (0..4)
            .map(|_| {
                WorkerBuilder::new().spawn_typed(
                    pando.open_volunteer_channel(),
                    StringCodec,
                    square,
                )
            })
            .collect();
        let output = pando.run_typed(StringCodec, number_source(200)).collect_values().unwrap();
        assert_eq!(output.len(), 200);
        assert_eq!(output[99], (100u64 * 100).to_string());
        let total: u64 = workers.into_iter().map(|w| w.join().processed).sum();
        assert_eq!(total, 200, "each value processed exactly once");
        assert_eq!(pando.volunteers_connected(), 4);
    }

    #[test]
    fn volunteer_joining_mid_run_is_used() {
        let pando = Pando::new(PandoConfig::local_test());
        let first =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let output_source = pando.run_typed(StringCodec, number_source(100));
        let collector =
            std::thread::spawn(move || pando_pull_stream::sink::collect(output_source).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let second =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let output = collector.join().unwrap();
        assert_eq!(output.len(), 100);
        let (a, b) = (first.join().processed, second.join().processed);
        assert_eq!(a + b, 100);
    }

    #[test]
    fn crashed_volunteer_work_is_recovered() {
        let pando = Pando::new(PandoConfig::local_test());
        // A volunteer that crashes after 3 tasks, plus a reliable one.
        let crashing = WorkerBuilder::new().fault(FaultPlan::AfterTasks(3)).spawn_typed(
            pando.open_volunteer_channel(),
            StringCodec,
            square,
        );
        let reliable =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let output = pando.run_typed(StringCodec, number_source(50)).collect_values().unwrap();
        assert_eq!(output, (1..=50u64).map(|v| (v * v).to_string()).collect::<Vec<_>>());
        assert!(crashing.join().crashed);
        assert!(!reliable.join().crashed);
        pando.join_volunteers();
        let stats = pando.lender_stats().unwrap();
        assert_eq!(stats.substreams_crashed, 1);
        assert!(stats.relends >= 1, "values held by the crashed volunteer are re-lent");
    }

    #[test]
    fn application_errors_do_not_lose_values() {
        let pando = Pando::new(PandoConfig::local_test());
        // The first worker fails on every odd value; a healthy worker joins
        // afterwards and completes the stream.
        let flaky = |input: &String| -> Result<String, StreamError> {
            let n: u64 = input.parse().unwrap();
            if n % 2 == 1 {
                Err(StreamError::new("odd values unsupported"))
            } else {
                Ok(n.to_string())
            }
        };
        let flaky_worker =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, flaky);
        let output_source = pando.run_typed(StringCodec, number_source(10));
        let collector =
            std::thread::spawn(move || pando_pull_stream::sink::collect(output_source).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let healthy = WorkerBuilder::new().spawn_typed(
            pando.open_volunteer_channel(),
            StringCodec,
            |s: &String| Ok(s.clone()),
        );
        let output = collector.join().unwrap();
        assert_eq!(output, (1..=10u64).map(|v| v.to_string()).collect::<Vec<_>>());
        let _ = flaky_worker.join();
        let _ = healthy.join();
    }

    #[test]
    #[should_panic(expected = "single stream")]
    fn run_twice_is_rejected() {
        let pando = Pando::new(PandoConfig::local_test());
        let _ = pando.run_typed(StringCodec, number_source(1));
        let _ = pando.run_typed(StringCodec, number_source(1));
    }

    #[test]
    fn meter_records_volunteer_activity() {
        let pando = Pando::new(PandoConfig::local_test());
        let worker =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let _ = pando.run_typed(StringCodec, number_source(10)).collect_values().unwrap();
        worker.join();
        let report = pando.meter().report();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].tasks, 10);
        assert!(report.rows[0].wire_bytes > 0, "wire traffic is accounted");
    }

    #[test]
    fn batched_dispatch_coalesces_frames() {
        // A wide window and one worker: the dispatcher should pack several
        // tasks per frame, so far fewer frames than tasks cross the wire.
        let config = PandoConfig::local_test().with_batch_size(16);
        let pando = Pando::new(config);
        let worker =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let output = pando.run_typed(StringCodec, number_source(200)).collect_values().unwrap();
        assert_eq!(output.len(), 200);
        worker.join();
        pando.join_volunteers();
        let report = pando.meter().report();
        let row = &report.rows[0];
        assert_eq!(row.tasks, 200);
        assert!(
            row.wire_frames < 2 * row.tasks,
            "batching must send fewer frames ({}) than the two-per-task unbatched protocol",
            row.wire_frames
        );
    }

    #[test]
    fn tasks_per_frame_one_reproduces_the_unbatched_protocol() {
        let config = PandoConfig::local_test().with_batch_size(8).with_tasks_per_frame(1);
        let pando = Pando::new(config);
        let worker =
            WorkerBuilder::new().spawn_typed(pando.open_volunteer_channel(), StringCodec, square);
        let output = pando.run_typed(StringCodec, number_source(40)).collect_values().unwrap();
        assert_eq!(output.len(), 40);
        worker.join();
        pando.join_volunteers();
        let report = pando.meter().report();
        // One task frame out and one result frame back per value.
        assert_eq!(report.rows[0].wire_frames, 80);
    }

    #[test]
    fn raw_bytes_run_carries_binary_payloads() {
        let pando = Pando::new(PandoConfig::local_test());
        let worker = WorkerBuilder::new().spawn(pando.open_volunteer_channel(), |input: &Bytes| {
            let mut out = input.to_vec();
            out.reverse();
            Ok(Bytes::from(out))
        });
        use pando_pull_stream::source::from_iter;
        let inputs: Vec<Bytes> = vec![
            Bytes::copy_from_slice(&[0, 1, 2, b'\n', 255]),
            Bytes::new(),
            Bytes::copy_from_slice(b"abc"),
        ];
        let output = pando.run(from_iter(inputs)).collect_values().unwrap();
        assert_eq!(
            output,
            vec![
                Bytes::copy_from_slice(&[255, b'\n', 2, 1, 0]),
                Bytes::new(),
                Bytes::copy_from_slice(b"cba"),
            ]
        );
        worker.join();
    }
}
