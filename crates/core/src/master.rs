//! The Pando master process.
//!
//! The master (paper Figure 7) owns the StreamLender that coordinates the
//! distributed map: for every volunteer that connects, it creates a
//! sub-stream, bounds the number of values in flight with a Limiter sized by
//! the batch size, and pumps tasks and results over the volunteer's channel.
//! Results are emitted on a single ordered output stream.

use crate::config::PandoConfig;
use crate::metrics::ThroughputMeter;
use crate::protocol::Message;
use pando_netsim::channel::{pair, Endpoint, RecvError, SendError};
use pando_pull_stream::duplex::{connect, Duplex, DuplexLink};
use pando_pull_stream::lender::{Lend, LenderOutput, LenderStats, StreamLender};
use pando_pull_stream::limit::Limiter;
use pando_pull_stream::sink::Sink;
use pando_pull_stream::source::{BoxSource, Source};
use pando_pull_stream::{Answer, Request, StreamError};
use parking_lot::Mutex;
use std::sync::Arc;

/// The Pando master: accepts volunteers and distributes a stream of values to
/// them. See the [crate documentation](crate) for a complete example.
pub struct Pando {
    config: PandoConfig,
    meter: ThroughputMeter,
    state: Arc<Mutex<MasterState>>,
}

struct MasterState {
    lender: Option<StreamLender<String, String>>,
    /// Volunteer endpoints accepted before the input stream was attached.
    pending: Vec<(String, Endpoint<Message>)>,
    links: Vec<DuplexLink>,
    next_volunteer: u64,
    volunteers_connected: u64,
}

impl Clone for Pando {
    /// Cloning a `Pando` yields another handle on the *same* deployment:
    /// volunteers registered through any handle feed the same StreamLender.
    fn clone(&self) -> Self {
        Self { config: self.config.clone(), meter: self.meter.clone(), state: self.state.clone() }
    }
}

impl std::fmt::Debug for Pando {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Pando")
            .field("batch_size", &self.config.batch_size)
            .field("volunteers_connected", &state.volunteers_connected)
            .field("running", &state.lender.is_some())
            .finish()
    }
}

impl Pando {
    /// Creates a master with the given configuration.
    pub fn new(config: PandoConfig) -> Self {
        Self {
            config,
            meter: ThroughputMeter::new(),
            state: Arc::new(Mutex::new(MasterState {
                lender: None,
                pending: Vec::new(),
                links: Vec::new(),
                next_volunteer: 0,
                volunteers_connected: 0,
            })),
        }
    }

    /// The configuration of this deployment.
    pub fn config(&self) -> &PandoConfig {
        &self.config
    }

    /// The throughput meter fed by this deployment (one row per volunteer).
    pub fn meter(&self) -> &ThroughputMeter {
        &self.meter
    }

    /// Creates a channel pair using the deployment's network profile,
    /// registers the master side, and returns the volunteer side — the
    /// in-process equivalent of a device opening the volunteer URL on the
    /// same LAN.
    pub fn open_volunteer_channel(&self) -> Endpoint<Message> {
        let seed = self.state.lock().next_volunteer;
        let (master_side, volunteer_side) =
            pair::<Message>(self.config.channel.clone().with_seed(seed));
        self.add_volunteer_endpoint(format!("volunteer-{seed}"), master_side);
        volunteer_side
    }

    /// Registers the master side of a volunteer connection, for example one
    /// delivered by a [`PublicServer`](pando_netsim::signaling::PublicServer).
    /// Volunteers may be added at any time, before or while the input stream
    /// is processed (dynamic property).
    pub fn add_volunteer_endpoint(&self, name: String, endpoint: Endpoint<Message>) {
        let mut state = self.state.lock();
        state.next_volunteer += 1;
        state.volunteers_connected += 1;
        match &state.lender {
            Some(lender) => {
                let link = wire_volunteer(
                    lender,
                    &name,
                    endpoint,
                    self.config.batch_size,
                    self.meter.clone(),
                );
                state.links.push(link);
            }
            None => state.pending.push((name, endpoint)),
        }
    }

    /// Number of volunteers that have connected so far (including ones that
    /// have since left or crashed).
    pub fn volunteers_connected(&self) -> u64 {
        self.state.lock().volunteers_connected
    }

    /// Statistics of the underlying StreamLender, if the run has started.
    pub fn lender_stats(&self) -> Option<LenderStats> {
        self.state.lock().lender.as_ref().map(StreamLender::stats)
    }

    /// Attaches the input stream and returns the ordered output stream.
    ///
    /// Volunteers registered earlier are wired immediately; others may join
    /// later. The output terminates once the input is exhausted and every
    /// value has produced a result.
    ///
    /// # Panics
    ///
    /// Panics if `run` was already called: a Pando deployment processes a
    /// single stream during its lifetime (design principle DP1).
    pub fn run(&self, input: impl Source<String> + 'static) -> LenderOutput<String, String> {
        let mut state = self.state.lock();
        assert!(state.lender.is_none(), "a Pando deployment runs a single stream");
        let lender = StreamLender::new(input);
        let pending: Vec<(String, Endpoint<Message>)> = state.pending.drain(..).collect();
        for (name, endpoint) in pending {
            let link = wire_volunteer(
                &lender,
                &name,
                endpoint,
                self.config.batch_size,
                self.meter.clone(),
            );
            state.links.push(link);
        }
        let output = lender.output();
        state.lender = Some(lender);
        output
    }

    /// Waits for every volunteer pump thread spawned so far to finish.
    /// Useful in tests to assert on final statistics.
    pub fn join_volunteers(&self) {
        let links: Vec<DuplexLink> = {
            let mut state = self.state.lock();
            state.links.drain(..).collect()
        };
        for link in links {
            // Transport errors here reflect volunteer crashes, which are an
            // expected part of operation; the lender already re-lent the
            // affected values.
            let _ = link.join();
        }
    }
}

/// Wires one volunteer endpoint to a fresh sub-stream of the lender through a
/// Limiter sized by the batch size (paper Figure 7 and Figure 9).
fn wire_volunteer(
    lender: &StreamLender<String, String>,
    name: &str,
    endpoint: Endpoint<Message>,
    batch_size: usize,
    meter: ThroughputMeter,
) -> DuplexLink {
    let sub = lender.lend();
    let (sub_source, sub_sink) = sub.into_duplex();
    let sub_duplex: Duplex<Lend<String>, Lend<String>> = Duplex::new(sub_source, sub_sink);

    let endpoint = Arc::new(endpoint);
    let channel_duplex: Duplex<Lend<String>, Lend<String>> = Duplex {
        source: Box::new(ChannelResultSource {
            endpoint: endpoint.clone(),
            volunteer: name.to_string(),
            meter,
        }),
        sink: Box::new(ChannelTaskSink { endpoint }),
    };
    let limited = Limiter::new(batch_size).wrap(channel_duplex);
    connect(sub_duplex, limited)
}

/// Master-side source of results coming back from one volunteer.
struct ChannelResultSource {
    endpoint: Arc<Endpoint<Message>>,
    volunteer: String,
    meter: ThroughputMeter,
}

impl Source<Lend<String>> for ChannelResultSource {
    fn pull(&mut self, request: Request) -> Answer<Lend<String>> {
        if request.is_termination() {
            self.endpoint.close();
            return Answer::Done;
        }
        loop {
            match self.endpoint.recv() {
                Ok(Message::TaskResult { seq, payload }) => {
                    self.meter.record(&self.volunteer, 1.0);
                    return Answer::Value(Lend::new(seq, payload));
                }
                Ok(Message::TaskError { seq, message }) => {
                    // The processing function reported an error for this
                    // value; the volunteer is treated as faulty so the value
                    // is re-lent to another device (crash-stop model).
                    return Answer::Err(StreamError::new(format!(
                        "volunteer {} failed on value {seq}: {message}",
                        self.volunteer
                    )));
                }
                Ok(Message::Heartbeat) => continue,
                Ok(Message::Goodbye) | Ok(Message::Task { .. }) => return Answer::Done,
                Err(RecvError::Closed) => return Answer::Done,
                Err(RecvError::PeerFailed) => {
                    return Answer::Err(StreamError::transport(format!(
                        "volunteer {} disconnected (heartbeat timeout)",
                        self.volunteer
                    )));
                }
                Err(RecvError::Timeout) | Err(RecvError::Empty) => continue,
            }
        }
    }
}

/// Master-side sink sending tasks to one volunteer.
struct ChannelTaskSink {
    endpoint: Arc<Endpoint<Message>>,
}

impl Sink<Lend<String>> for ChannelTaskSink {
    fn drain(&mut self, mut source: BoxSource<Lend<String>>) -> Result<(), StreamError> {
        loop {
            match source.pull(Request::Ask) {
                Answer::Value(lend) => {
                    let message = Message::Task { seq: lend.seq, payload: lend.value };
                    let size = message.wire_size();
                    match self.endpoint.send_with_size(message, size) {
                        Ok(()) => {}
                        Err(SendError::Closed) => {
                            let _ = source.pull(Request::Abort);
                            return Ok(());
                        }
                        Err(SendError::PeerFailed) => {
                            let err = StreamError::transport("volunteer failed while sending task");
                            let _ = source.pull(Request::Fail(err.clone()));
                            return Err(err);
                        }
                    }
                }
                Answer::Done => {
                    self.endpoint.close();
                    return Ok(());
                }
                Answer::Err(err) => {
                    self.endpoint.close();
                    return Err(err);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{spawn_worker, WorkerOptions};
    use pando_netsim::fault::FaultPlan;
    use pando_pull_stream::source::{count, SourceExt};

    fn square(input: &str) -> Result<String, StreamError> {
        let n: u64 = input.parse().map_err(|_| StreamError::new("not a number"))?;
        Ok((n * n).to_string())
    }

    #[test]
    fn single_volunteer_end_to_end() {
        let pando = Pando::new(PandoConfig::local_test());
        let endpoint = pando.open_volunteer_channel();
        let worker = spawn_worker(endpoint, square, WorkerOptions::default());
        let output = pando.run(count(30).map_values(|v| v.to_string())).collect_values().unwrap();
        assert_eq!(output, (1..=30u64).map(|v| (v * v).to_string()).collect::<Vec<_>>());
        let report = worker.join();
        assert_eq!(report.processed, 30);
        assert!(!report.crashed);
        pando.join_volunteers();
        let stats = pando.lender_stats().unwrap();
        assert_eq!(stats.results_emitted, 30);
        assert_eq!(stats.substreams_crashed, 0);
    }

    #[test]
    fn multiple_volunteers_share_work_and_order_is_kept() {
        let pando = Pando::new(PandoConfig::local_test());
        let workers: Vec<_> = (0..4)
            .map(|_| spawn_worker(pando.open_volunteer_channel(), square, WorkerOptions::default()))
            .collect();
        let output = pando.run(count(200).map_values(|v| v.to_string())).collect_values().unwrap();
        assert_eq!(output.len(), 200);
        assert_eq!(output[99], (100u64 * 100).to_string());
        let total: u64 = workers.into_iter().map(|w| w.join().processed).sum();
        assert_eq!(total, 200, "each value processed exactly once");
        assert_eq!(pando.volunteers_connected(), 4);
    }

    #[test]
    fn volunteer_joining_mid_run_is_used() {
        let pando = Pando::new(PandoConfig::local_test());
        let first = spawn_worker(pando.open_volunteer_channel(), square, WorkerOptions::default());
        let output_source = pando.run(count(100).map_values(|v| v.to_string()));
        let collector =
            std::thread::spawn(move || pando_pull_stream::sink::collect(output_source).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let second = spawn_worker(pando.open_volunteer_channel(), square, WorkerOptions::default());
        let output = collector.join().unwrap();
        assert_eq!(output.len(), 100);
        let (a, b) = (first.join().processed, second.join().processed);
        assert_eq!(a + b, 100);
    }

    #[test]
    fn crashed_volunteer_work_is_recovered() {
        let pando = Pando::new(PandoConfig::local_test());
        // A volunteer that crashes after 3 tasks, plus a reliable one.
        let crashing = spawn_worker(
            pando.open_volunteer_channel(),
            square,
            WorkerOptions { fault: FaultPlan::AfterTasks(3), ..WorkerOptions::default() },
        );
        let reliable =
            spawn_worker(pando.open_volunteer_channel(), square, WorkerOptions::default());
        let output = pando.run(count(50).map_values(|v| v.to_string())).collect_values().unwrap();
        assert_eq!(output, (1..=50u64).map(|v| (v * v).to_string()).collect::<Vec<_>>());
        assert!(crashing.join().crashed);
        assert!(!reliable.join().crashed);
        pando.join_volunteers();
        let stats = pando.lender_stats().unwrap();
        assert_eq!(stats.substreams_crashed, 1);
        assert!(stats.relends >= 1, "values held by the crashed volunteer are re-lent");
    }

    #[test]
    fn application_errors_do_not_lose_values() {
        let pando = Pando::new(PandoConfig::local_test());
        // The first worker fails on every odd value; a healthy worker joins
        // afterwards and completes the stream.
        let flaky = |input: &str| -> Result<String, StreamError> {
            let n: u64 = input.parse().unwrap();
            if n % 2 == 1 {
                Err(StreamError::new("odd values unsupported"))
            } else {
                Ok(n.to_string())
            }
        };
        let flaky_worker =
            spawn_worker(pando.open_volunteer_channel(), flaky, WorkerOptions::default());
        let output_source = pando.run(count(10).map_values(|v| v.to_string()));
        let collector =
            std::thread::spawn(move || pando_pull_stream::sink::collect(output_source).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(50));
        let healthy = spawn_worker(
            pando.open_volunteer_channel(),
            |s: &str| Ok(s.to_string()),
            WorkerOptions::default(),
        );
        let output = collector.join().unwrap();
        assert_eq!(output, (1..=10u64).map(|v| v.to_string()).collect::<Vec<_>>());
        let _ = flaky_worker.join();
        let _ = healthy.join();
    }

    #[test]
    #[should_panic(expected = "single stream")]
    fn run_twice_is_rejected() {
        let pando = Pando::new(PandoConfig::local_test());
        let _ = pando.run(count(1).map_values(|v| v.to_string()));
        let _ = pando.run(count(1).map_values(|v| v.to_string()));
    }

    #[test]
    fn meter_records_volunteer_activity() {
        let pando = Pando::new(PandoConfig::local_test());
        let worker = spawn_worker(pando.open_volunteer_channel(), square, WorkerOptions::default());
        let _ = pando.run(count(10).map_values(|v| v.to_string())).collect_values().unwrap();
        worker.join();
        let report = pando.meter().report();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].tasks, 10);
    }
}
