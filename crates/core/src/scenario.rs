//! Checked-in scenario files for the deterministic fleet simulator.
//!
//! A scenario is a small TOML document (parsed by the in-tree
//! [`minitoml`] subset) declaring a fleet topology — volunteer groups on
//! per-link latency/jitter/loss profiles, optionally typed by a published
//! device from [`pando_devices`] — plus a timed churn and fault schedule:
//! join waves, clean leaves, crash-stops, link flaps and group-scoped
//! partitions. [`Scenario::to_fleet_params`] compiles it to a
//! [`FleetScript`] that [`simulate_fleet`](crate::sim::simulate_fleet)
//! executes deterministically on the virtual clock, so every scenario run
//! from the same file is byte-identical and the canonical trace can be
//! committed as a golden artefact (see `scenarios/` and
//! `examples/scenario_run.rs`).
//!
//! # Format
//!
//! ```toml
//! name = "wan_mix"          # must match the file stem
//! seed = 7                  # jitter/loss seed (volunteer v uses seed + v)
//! tasks = 200               # input values to process
//! duration_us = 60000000    # schedule horizon (default 600s)
//! # input = "interactive"   # route tasks through the would-block pump path
//!
//! [defaults]                # optional fallbacks for every group
//! service_us = 1500
//! loss = 0.01
//!
//! [[group]]                 # volunteer ids are assigned in group order
//! name = "phones"
//! count = 3
//! net = "wan"               # base profile: instant | lan | vpn | wan
//! device = "iPhone SE"      # optional: service time from Table 2 ...
//! app = "raytrace"          # ... for this application
//! loss = 0.05               # per-group link overrides
//! joins_at_us = 0
//! join_stagger_us = 2000    # member k joins at joins_at + k * stagger
//! # leaves_at_us = 50000    # the whole group leaves cleanly
//!
//! [[crash]]                 # crash-stop volunteer 2 mid-run
//! volunteer = 2
//! at_us = 15000
//!
//! [[flap]]                  # transient disconnect (delays, never loses)
//! volunteer = 1
//! at_us = 10000
//! down_us = 5000
//!
//! [[partition]]             # pause every link of a group, then heal
//! group = "phones"
//! at_us = 20000
//! heal_us = 26000
//!
//! [expect]                  # optional post-run assertions
//! crash_relends = 0
//! min_retransmits = 1
//! ```
//!
//! Every key outside this reference is a typed [`ScenarioError`], as are
//! out-of-range loss, overlapping partitions of one group, events past
//! `duration_us` or before their target's join, and schedules that leave no
//! survivor to finish the stream.

use crate::sim::{FleetParams, FleetReport, FleetScript, VolunteerSpec};
use minitoml::{Document, Table, Value};
use pando_devices::profiles::{Scenario as PaperNet, ScenarioSetup};
use pando_netsim::channel::ChannelConfig;
use pando_workloads::AppKind;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// The loss ceiling scenarios may declare. Above this the capped geometric
/// retransmit draw saturates so often that "loss as delay" stops being an
/// honest model.
pub const MAX_LOSS: f64 = 0.9;

/// Horizon used when a scenario does not declare `duration_us`: the fleet
/// simulator's own 600-second virtual ceiling.
pub const DEFAULT_DURATION_US: u64 = 600_000_000;

/// A typed scenario-file error: what went wrong and where.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// Path that failed to read.
        path: String,
        /// The I/O error rendered.
        error: String,
    },
    /// The TOML subset parser rejected the text.
    Toml(minitoml::Error),
    /// A table carries a key outside the format reference.
    UnknownKey {
        /// Which table (`scenario` for the top level).
        table: String,
        /// The offending key.
        key: String,
    },
    /// A key holds a value of the wrong type or outside its range.
    InvalidValue {
        /// The offending key (qualified, e.g. `group.loss`).
        key: String,
        /// Why the value was rejected.
        message: String,
    },
    /// A partition names a `[[group]]` that does not exist.
    UnknownGroup(String),
    /// A crash or flap names a volunteer id outside the fleet.
    UnknownVolunteer(usize),
    /// A group's `device` is not in the published Table 2 set, or has no
    /// measurement for the requested `app`.
    UnknownDevice(String),
    /// An event is scheduled after `duration_us`.
    EventPastDuration {
        /// Event description (`crash v2`, `partition phones`, ...).
        what: String,
        /// Its instant in microseconds.
        at_us: u64,
    },
    /// An event targets a volunteer before it joins (or a leave before the
    /// join, or a partition heal before its start).
    EventBeforeJoin {
        /// Event description.
        what: String,
        /// Why the ordering is impossible.
        message: String,
    },
    /// Two partitions of the same group overlap in time.
    OverlappingPartitions {
        /// The group partitioned twice at once.
        group: String,
    },
    /// Every volunteer crashes or leaves: nobody is left to finish the
    /// stream, so the run could never complete.
    NoSurvivor,
    /// The `name` key does not match the file stem the scenario was loaded
    /// from.
    NameMismatch {
        /// The in-file name.
        name: String,
        /// The file stem.
        stem: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, error } => write!(f, "reading {path}: {error}"),
            ScenarioError::Toml(err) => write!(f, "parsing scenario: {err}"),
            ScenarioError::UnknownKey { table, key } => {
                write!(f, "unknown key {key:?} in [{table}]")
            }
            ScenarioError::InvalidValue { key, message } => write!(f, "{key}: {message}"),
            ScenarioError::UnknownGroup(group) => write!(f, "unknown group {group:?}"),
            ScenarioError::UnknownVolunteer(v) => {
                write!(f, "volunteer {v} is outside the fleet")
            }
            ScenarioError::UnknownDevice(device) => {
                write!(f, "device {device:?} has no published measurement for the requested app")
            }
            ScenarioError::EventPastDuration { what, at_us } => {
                write!(f, "{what} at {at_us}us lies past duration_us")
            }
            ScenarioError::EventBeforeJoin { what, message } => write!(f, "{what}: {message}"),
            ScenarioError::OverlappingPartitions { group } => {
                write!(f, "group {group:?} has overlapping partitions")
            }
            ScenarioError::NoSurvivor => {
                f.write_str("every volunteer crashes or leaves; the stream can never finish")
            }
            ScenarioError::NameMismatch { name, stem } => {
                write!(f, "scenario name {name:?} does not match the file stem {stem:?}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<minitoml::Error> for ScenarioError {
    fn from(err: minitoml::Error) -> Self {
        ScenarioError::Toml(err)
    }
}

/// Per-link knobs a group (or `[defaults]`) may override on its base `net`
/// profile. `None` falls through group → defaults → profile constructor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkOverrides {
    /// Virtual compute time per task record.
    pub service_us: Option<u64>,
    /// One-way propagation latency.
    pub latency_us: Option<u64>,
    /// Maximum additional random delay per frame.
    pub jitter_us: Option<u64>,
    /// Per-transmission loss probability (`[0, 0.9]`).
    pub loss: Option<f64>,
    /// Recovery delay per lost transmission.
    pub retransmit_us: Option<u64>,
    /// Heartbeat interval.
    pub heartbeat_us: Option<u64>,
    /// Crash-suspicion timeout.
    pub failure_timeout_us: Option<u64>,
    /// Link bandwidth in bytes per second (`0` = unlimited).
    pub bandwidth_bps: Option<u64>,
}

impl LinkOverrides {
    const KEYS: [&'static str; 8] = [
        "service_us",
        "latency_us",
        "jitter_us",
        "loss",
        "retransmit_us",
        "heartbeat_us",
        "failure_timeout_us",
        "bandwidth_bps",
    ];

    fn parse(table: &Table, scope: &str) -> Result<Self, ScenarioError> {
        Ok(Self {
            service_us: opt_u64(table, scope, "service_us")?,
            latency_us: opt_u64(table, scope, "latency_us")?,
            jitter_us: opt_u64(table, scope, "jitter_us")?,
            loss: opt_loss(table, scope)?,
            retransmit_us: opt_u64(table, scope, "retransmit_us")?,
            heartbeat_us: opt_u64(table, scope, "heartbeat_us")?,
            failure_timeout_us: opt_u64(table, scope, "failure_timeout_us")?,
            bandwidth_bps: opt_u64(table, scope, "bandwidth_bps")?,
        })
    }

    fn render_into(&self, table: &mut Table) {
        let pairs = [
            ("service_us", self.service_us),
            ("latency_us", self.latency_us),
            ("jitter_us", self.jitter_us),
            ("retransmit_us", self.retransmit_us),
            ("heartbeat_us", self.heartbeat_us),
            ("failure_timeout_us", self.failure_timeout_us),
            ("bandwidth_bps", self.bandwidth_bps),
        ];
        // `loss` keeps its position in the fixed render order for
        // readability; Option skipping makes order irrelevant to equality.
        for (key, value) in &pairs[..3] {
            if let Some(v) = value {
                table.set(*key, Value::Integer(*v as i64));
            }
        }
        if let Some(loss) = self.loss {
            table.set("loss", Value::Float(loss));
        }
        for (key, value) in &pairs[3..] {
            if let Some(v) = value {
                table.set(*key, Value::Integer(*v as i64));
            }
        }
    }

    /// Overrides from `self`, falling back to `other` where unset.
    fn or(&self, other: &LinkOverrides) -> LinkOverrides {
        LinkOverrides {
            service_us: self.service_us.or(other.service_us),
            latency_us: self.latency_us.or(other.latency_us),
            jitter_us: self.jitter_us.or(other.jitter_us),
            loss: self.loss.or(other.loss),
            retransmit_us: self.retransmit_us.or(other.retransmit_us),
            heartbeat_us: self.heartbeat_us.or(other.heartbeat_us),
            failure_timeout_us: self.failure_timeout_us.or(other.failure_timeout_us),
            bandwidth_bps: self.bandwidth_bps.or(other.bandwidth_bps),
        }
    }
}

/// One `[[group]]`: `count` volunteers sharing a link profile and a churn
/// schedule. Volunteer ids are assigned in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Group name (referenced by `[[partition]]`).
    pub name: String,
    /// Number of volunteers in the group.
    pub count: usize,
    /// Base channel profile: `instant`, `lan`, `vpn` or `wan`.
    pub net: String,
    /// Published device the service time is derived from, if any.
    pub device: Option<String>,
    /// Application the device's Table 2 rate is read for (with `device`).
    pub app: Option<String>,
    /// Link overrides on top of the `net` profile and `[defaults]`.
    pub link: LinkOverrides,
    /// When the group joins, in microseconds from the run origin.
    pub joins_at_us: u64,
    /// Member `k` joins at `joins_at_us + k * join_stagger_us` — a join
    /// wave instead of a thundering herd.
    pub join_stagger_us: u64,
    /// When the whole group leaves cleanly, if ever.
    pub leaves_at_us: Option<u64>,
}

/// One `[[partition]]`: pause every link of `group` from `at_us` until
/// `heal_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// The partitioned group.
    pub group: String,
    /// Partition start, microseconds from the origin.
    pub at_us: u64,
    /// Heal instant, microseconds from the origin (must exceed `at_us`).
    pub heal_us: u64,
}

/// The optional `[expect]` table: assertions the runner checks against the
/// finished [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Expectations {
    /// Exact number of volunteers that crashed.
    pub crashed: Option<u64>,
    /// Lower bound on crashed volunteers.
    pub min_crashed: Option<u64>,
    /// Exact number of crash re-lends the reactor performed.
    pub crash_relends: Option<u64>,
    /// Upper bound on the reactor's wasted polls (the PR 7 busy-loop
    /// budget).
    pub max_wasted_polls: Option<u64>,
    /// Lower bound on lost-and-re-sent transmissions (proves the loss knob
    /// actually fired).
    pub min_retransmits: Option<u64>,
}

impl Expectations {
    const KEYS: [&'static str; 5] =
        ["crashed", "min_crashed", "crash_relends", "max_wasted_polls", "min_retransmits"];

    fn is_empty(&self) -> bool {
        *self == Expectations::default()
    }

    /// Checks every declared expectation against a finished run.
    ///
    /// # Errors
    ///
    /// Returns every violated expectation, one per line.
    pub fn check(&self, report: &FleetReport) -> Result<(), String> {
        let mut failures = Vec::new();
        let mut expect = |label: &str, ok: bool, got: u64| {
            if !ok {
                failures.push(format!("expect.{label} violated (got {got})"));
            }
        };
        if let Some(want) = self.crashed {
            expect("crashed", report.crashed == want, report.crashed);
        }
        if let Some(min) = self.min_crashed {
            expect("min_crashed", report.crashed >= min, report.crashed);
        }
        if let Some(want) = self.crash_relends {
            expect(
                "crash_relends",
                report.reactor.crash_relends == want,
                report.reactor.crash_relends,
            );
        }
        if let Some(max) = self.max_wasted_polls {
            expect(
                "max_wasted_polls",
                report.reactor.wasted_polls <= max,
                report.reactor.wasted_polls,
            );
        }
        if let Some(min) = self.min_retransmits {
            expect("min_retransmits", report.retransmits >= min, report.retransmits);
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("\n"))
        }
    }
}

/// A parsed, validated scenario file. Field-for-field faithful to the text:
/// [`Scenario::render`] emits an equivalent document and
/// `parse(render(s)) == s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name, `[a-z0-9_-]+`; must match the file stem when loaded
    /// from disk.
    pub name: String,
    /// Seed for channel jitter and loss draws (volunteer `v` uses
    /// `seed + v`).
    pub seed: u64,
    /// Number of input values to process.
    pub tasks: u64,
    /// Schedule horizon in microseconds; every event must land inside it.
    pub duration_us: u64,
    /// Route the input through the interactive would-block pump path.
    pub interactive: bool,
    /// `[defaults]` fallbacks applied to every group.
    pub defaults: LinkOverrides,
    /// The volunteer groups, in declaration (= id assignment) order.
    pub groups: Vec<GroupSpec>,
    /// `[[crash]]` events as `(volunteer, at_us)`.
    pub crashes: Vec<(usize, u64)>,
    /// `[[flap]]` events as `(volunteer, at_us, down_us)`.
    pub flaps: Vec<(usize, u64, u64)>,
    /// `[[partition]]` events.
    pub partitions: Vec<PartitionSpec>,
    /// `[expect]` assertions for the runner.
    pub expect: Expectations,
}

// --- small typed accessors over minitoml tables ---------------------------

fn invalid(key: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::InvalidValue { key: key.into(), message: message.into() }
}

fn check_keys(table: &Table, scope: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    for key in table.keys() {
        if !allowed.contains(&key) {
            return Err(ScenarioError::UnknownKey { table: scope.into(), key: key.into() });
        }
    }
    Ok(())
}

fn opt_u64(table: &Table, scope: &str, key: &str) -> Result<Option<u64>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(minitoml::Item::Value(Value::Integer(i))) if *i >= 0 => Ok(Some(*i as u64)),
        Some(_) => Err(invalid(format!("{scope}.{key}"), "expected a non-negative integer")),
    }
}

fn req_u64(table: &Table, scope: &str, key: &str) -> Result<u64, ScenarioError> {
    opt_u64(table, scope, key)?.ok_or_else(|| invalid(format!("{scope}.{key}"), "missing"))
}

fn opt_str(table: &Table, scope: &str, key: &str) -> Result<Option<String>, ScenarioError> {
    match table.get(key) {
        None => Ok(None),
        Some(minitoml::Item::Value(Value::String(s))) => Ok(Some(s.clone())),
        Some(_) => Err(invalid(format!("{scope}.{key}"), "expected a string")),
    }
}

fn opt_loss(table: &Table, scope: &str) -> Result<Option<f64>, ScenarioError> {
    match table.get("loss") {
        None => Ok(None),
        Some(minitoml::Item::Value(Value::Float(f))) if (0.0..=MAX_LOSS).contains(f) => {
            Ok(Some(*f))
        }
        Some(minitoml::Item::Value(Value::Integer(0))) => Ok(Some(0.0)),
        Some(_) => Err(invalid(
            format!("{scope}.loss"),
            format!("expected a probability within [0, {MAX_LOSS}]"),
        )),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_-".contains(c))
}

impl Scenario {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Any [`ScenarioError`]: malformed TOML, unknown keys, values outside
    /// their ranges, or an impossible schedule.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = minitoml::parse(text)?;
        let root = doc.root();
        check_keys(
            root,
            "scenario",
            &[
                "name",
                "seed",
                "tasks",
                "duration_us",
                "input",
                "defaults",
                "group",
                "crash",
                "flap",
                "partition",
                "expect",
            ],
        )?;
        let name = opt_str(root, "scenario", "name")?
            .ok_or_else(|| invalid("scenario.name", "missing"))?;
        if !valid_name(&name) {
            return Err(invalid("scenario.name", "expected [a-z0-9_-]+"));
        }
        let interactive = match opt_str(root, "scenario", "input")?.as_deref() {
            None | Some("eager") => false,
            Some("interactive") => true,
            Some(other) => {
                return Err(invalid(
                    "scenario.input",
                    format!("expected \"eager\" or \"interactive\", got {other:?}"),
                ))
            }
        };
        let defaults = match root.table("defaults") {
            Some(table) => {
                check_keys(table, "defaults", &LinkOverrides::KEYS)?;
                LinkOverrides::parse(table, "defaults")?
            }
            None => LinkOverrides::default(),
        };
        let mut groups = Vec::new();
        for table in root.tables("group") {
            let mut allowed = vec![
                "name",
                "count",
                "net",
                "device",
                "app",
                "joins_at_us",
                "join_stagger_us",
                "leaves_at_us",
            ];
            allowed.extend_from_slice(&LinkOverrides::KEYS);
            check_keys(table, "group", &allowed)?;
            let group_name =
                opt_str(table, "group", "name")?.ok_or_else(|| invalid("group.name", "missing"))?;
            if !valid_name(&group_name) {
                return Err(invalid("group.name", "expected [a-z0-9_-]+"));
            }
            let net = opt_str(table, "group", "net")?.unwrap_or_else(|| "lan".into());
            if !["instant", "lan", "vpn", "wan"].contains(&net.as_str()) {
                return Err(invalid("group.net", "expected instant, lan, vpn or wan"));
            }
            groups.push(GroupSpec {
                name: group_name,
                count: req_u64(table, "group", "count")? as usize,
                net,
                device: opt_str(table, "group", "device")?,
                app: opt_str(table, "group", "app")?,
                link: LinkOverrides::parse(table, "group")?,
                joins_at_us: opt_u64(table, "group", "joins_at_us")?.unwrap_or(0),
                join_stagger_us: opt_u64(table, "group", "join_stagger_us")?.unwrap_or(0),
                leaves_at_us: opt_u64(table, "group", "leaves_at_us")?,
            });
        }
        let mut crashes = Vec::new();
        for table in root.tables("crash") {
            check_keys(table, "crash", &["volunteer", "at_us"])?;
            crashes.push((
                req_u64(table, "crash", "volunteer")? as usize,
                req_u64(table, "crash", "at_us")?,
            ));
        }
        let mut flaps = Vec::new();
        for table in root.tables("flap") {
            check_keys(table, "flap", &["volunteer", "at_us", "down_us"])?;
            flaps.push((
                req_u64(table, "flap", "volunteer")? as usize,
                req_u64(table, "flap", "at_us")?,
                req_u64(table, "flap", "down_us")?,
            ));
        }
        let mut partitions = Vec::new();
        for table in root.tables("partition") {
            check_keys(table, "partition", &["group", "at_us", "heal_us"])?;
            partitions.push(PartitionSpec {
                group: opt_str(table, "partition", "group")?
                    .ok_or_else(|| invalid("partition.group", "missing"))?,
                at_us: req_u64(table, "partition", "at_us")?,
                heal_us: req_u64(table, "partition", "heal_us")?,
            });
        }
        let expect = match root.table("expect") {
            Some(table) => {
                check_keys(table, "expect", &Expectations::KEYS)?;
                Expectations {
                    crashed: opt_u64(table, "expect", "crashed")?,
                    min_crashed: opt_u64(table, "expect", "min_crashed")?,
                    crash_relends: opt_u64(table, "expect", "crash_relends")?,
                    max_wasted_polls: opt_u64(table, "expect", "max_wasted_polls")?,
                    min_retransmits: opt_u64(table, "expect", "min_retransmits")?,
                }
            }
            None => Expectations::default(),
        };
        let scenario = Scenario {
            name,
            seed: req_u64(root, "scenario", "seed")?,
            tasks: req_u64(root, "scenario", "tasks")?,
            duration_us: opt_u64(root, "scenario", "duration_us")?.unwrap_or(DEFAULT_DURATION_US),
            interactive,
            defaults,
            groups,
            crashes,
            flaps,
            partitions,
            expect,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Loads and validates `path`, additionally requiring the `name` key to
    /// match the file stem (so a trace diff always names its file).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] when the file cannot be read, otherwise the
    /// same conditions as [`Scenario::parse`] plus
    /// [`ScenarioError::NameMismatch`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|error| ScenarioError::Io {
            path: path.display().to_string(),
            error: error.to_string(),
        })?;
        let scenario = Self::parse(&text)?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        if scenario.name != stem {
            return Err(ScenarioError::NameMismatch {
                name: scenario.name,
                stem: stem.to_string(),
            });
        }
        Ok(scenario)
    }

    /// Total number of volunteers across all groups.
    pub fn volunteers(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Join instant of volunteer `v` (group join plus stagger), if `v` is
    /// inside the fleet.
    fn join_us_of(&self, v: usize) -> Option<u64> {
        let mut base = 0usize;
        for group in &self.groups {
            if v < base + group.count {
                let k = (v - base) as u64;
                return Some(group.joins_at_us + k * group.join_stagger_us);
            }
            base += group.count;
        }
        None
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        if self.tasks == 0 {
            return Err(invalid("scenario.tasks", "at least one task is required"));
        }
        if self.groups.is_empty() {
            return Err(invalid("scenario.group", "at least one [[group]] is required"));
        }
        for group in &self.groups {
            if group.count == 0 {
                return Err(invalid("group.count", "a group needs at least one volunteer"));
            }
            if self.groups.iter().filter(|g| g.name == group.name).count() > 1 {
                return Err(invalid("group.name", format!("duplicate group {:?}", group.name)));
            }
            if group.device.is_some() || group.app.is_some() {
                let device =
                    group.device.as_deref().ok_or_else(|| invalid("group.device", "missing"))?;
                let app = parse_app(group.app.as_deref())?;
                if device_service(device, app).is_none() {
                    return Err(ScenarioError::UnknownDevice(device.to_string()));
                }
            }
            let last_join =
                group.joins_at_us + (group.count as u64 - 1).saturating_mul(group.join_stagger_us);
            if last_join > self.duration_us {
                return Err(ScenarioError::EventPastDuration {
                    what: format!("join of group {:?}", group.name),
                    at_us: last_join,
                });
            }
            if let Some(leave) = group.leaves_at_us {
                if leave > self.duration_us {
                    return Err(ScenarioError::EventPastDuration {
                        what: format!("leave of group {:?}", group.name),
                        at_us: leave,
                    });
                }
                if leave < last_join {
                    return Err(ScenarioError::EventBeforeJoin {
                        what: format!("leave of group {:?}", group.name),
                        message: format!(
                            "leaves_at_us={leave} precedes the group's last join at {last_join}"
                        ),
                    });
                }
            }
        }
        let total = self.volunteers();
        for (v, at_us) in &self.crashes {
            let join = self.join_us_of(*v).ok_or(ScenarioError::UnknownVolunteer(*v))?;
            if *at_us > self.duration_us {
                return Err(ScenarioError::EventPastDuration {
                    what: format!("crash v{v}"),
                    at_us: *at_us,
                });
            }
            if *at_us < join {
                return Err(ScenarioError::EventBeforeJoin {
                    what: format!("crash v{v}"),
                    message: format!("at_us={at_us} precedes the volunteer's join at {join}"),
                });
            }
        }
        for (v, at_us, _down) in &self.flaps {
            let join = self.join_us_of(*v).ok_or(ScenarioError::UnknownVolunteer(*v))?;
            if *at_us > self.duration_us {
                return Err(ScenarioError::EventPastDuration {
                    what: format!("flap v{v}"),
                    at_us: *at_us,
                });
            }
            if *at_us < join {
                return Err(ScenarioError::EventBeforeJoin {
                    what: format!("flap v{v}"),
                    message: format!("at_us={at_us} precedes the volunteer's join at {join}"),
                });
            }
        }
        for partition in &self.partitions {
            if !self.groups.iter().any(|g| g.name == partition.group) {
                return Err(ScenarioError::UnknownGroup(partition.group.clone()));
            }
            if partition.heal_us <= partition.at_us {
                return Err(ScenarioError::EventBeforeJoin {
                    what: format!("partition of {:?}", partition.group),
                    message: format!(
                        "heal_us={} does not follow at_us={}",
                        partition.heal_us, partition.at_us
                    ),
                });
            }
            if partition.heal_us > self.duration_us {
                return Err(ScenarioError::EventPastDuration {
                    what: format!("partition of {:?}", partition.group),
                    at_us: partition.heal_us,
                });
            }
            let overlapping = self.partitions.iter().any(|other| {
                !std::ptr::eq(other, partition)
                    && other.group == partition.group
                    && other.at_us < partition.heal_us
                    && partition.at_us < other.heal_us
            });
            if overlapping {
                return Err(ScenarioError::OverlappingPartitions {
                    group: partition.group.clone(),
                });
            }
        }
        // At least one volunteer must survive to drain the stream: not
        // crashed and not in a leaving group.
        let mut survivor = false;
        let mut base = 0usize;
        for group in &self.groups {
            if group.leaves_at_us.is_none() {
                for v in base..base + group.count {
                    if !self.crashes.iter().any(|(c, _)| *c == v) {
                        survivor = true;
                    }
                }
            }
            base += group.count;
        }
        let _ = total;
        if !survivor {
            return Err(ScenarioError::NoSurvivor);
        }
        Ok(())
    }

    /// Renders the scenario back to TOML text; `parse(render(s)) == s`.
    pub fn render(&self) -> String {
        let mut root = Table::default();
        root.set("name", Value::String(self.name.clone()));
        root.set("seed", Value::Integer(self.seed as i64));
        root.set("tasks", Value::Integer(self.tasks as i64));
        root.set("duration_us", Value::Integer(self.duration_us as i64));
        if self.interactive {
            root.set("input", Value::String("interactive".into()));
        }
        if self.defaults != LinkOverrides::default() {
            let mut table = Table::default();
            self.defaults.render_into(&mut table);
            root.set_table("defaults", table);
        }
        for group in &self.groups {
            let mut table = Table::default();
            table.set("name", Value::String(group.name.clone()));
            table.set("count", Value::Integer(group.count as i64));
            table.set("net", Value::String(group.net.clone()));
            if let Some(device) = &group.device {
                table.set("device", Value::String(device.clone()));
            }
            if let Some(app) = &group.app {
                table.set("app", Value::String(app.clone()));
            }
            group.link.render_into(&mut table);
            table.set("joins_at_us", Value::Integer(group.joins_at_us as i64));
            table.set("join_stagger_us", Value::Integer(group.join_stagger_us as i64));
            if let Some(leave) = group.leaves_at_us {
                table.set("leaves_at_us", Value::Integer(leave as i64));
            }
            root.push_table("group", table);
        }
        for (v, at_us) in &self.crashes {
            let mut table = Table::default();
            table.set("volunteer", Value::Integer(*v as i64));
            table.set("at_us", Value::Integer(*at_us as i64));
            root.push_table("crash", table);
        }
        for (v, at_us, down_us) in &self.flaps {
            let mut table = Table::default();
            table.set("volunteer", Value::Integer(*v as i64));
            table.set("at_us", Value::Integer(*at_us as i64));
            table.set("down_us", Value::Integer(*down_us as i64));
            root.push_table("flap", table);
        }
        for partition in &self.partitions {
            let mut table = Table::default();
            table.set("group", Value::String(partition.group.clone()));
            table.set("at_us", Value::Integer(partition.at_us as i64));
            table.set("heal_us", Value::Integer(partition.heal_us as i64));
            root.push_table("partition", table);
        }
        if !self.expect.is_empty() {
            let mut table = Table::default();
            let pairs = [
                ("crashed", self.expect.crashed),
                ("min_crashed", self.expect.min_crashed),
                ("crash_relends", self.expect.crash_relends),
                ("max_wasted_polls", self.expect.max_wasted_polls),
                ("min_retransmits", self.expect.min_retransmits),
            ];
            for (key, value) in pairs {
                if let Some(v) = value {
                    table.set(key, Value::Integer(v as i64));
                }
            }
            root.set_table("expect", table);
        }
        Document::from_root(root).render()
    }

    /// Compiles the scenario to [`FleetParams`] carrying a
    /// [`FleetScript`]: group ids become volunteer specs in declaration
    /// order, partitions resolve their member lists, and each volunteer's
    /// channel is seeded `seed + v`.
    ///
    /// # Errors
    ///
    /// The same validation as [`Scenario::parse`] — hand-constructed
    /// scenarios go through it here.
    pub fn to_fleet_params(&self) -> Result<FleetParams, ScenarioError> {
        self.validate()?;
        let mut volunteers = Vec::with_capacity(self.volunteers());
        let mut members: Vec<(String, Vec<usize>)> = Vec::new();
        for group in &self.groups {
            let link = group.link.or(&self.defaults);
            let mut channel = match group.net.as_str() {
                "instant" => ChannelConfig::instant(),
                "lan" => ChannelConfig::lan(),
                "vpn" => ChannelConfig::vpn(),
                "wan" => ChannelConfig::wan(),
                other => unreachable!("validated net profile {other:?}"),
            };
            if let Some(us) = link.latency_us {
                channel.latency = Duration::from_micros(us);
            }
            if let Some(us) = link.jitter_us {
                channel.jitter = Duration::from_micros(us);
            }
            if let Some(loss) = link.loss {
                channel.loss = loss;
            }
            if let Some(us) = link.retransmit_us {
                channel.retransmit = Duration::from_micros(us);
            }
            if let Some(us) = link.heartbeat_us {
                channel.heartbeat_interval = Duration::from_micros(us);
            }
            if let Some(us) = link.failure_timeout_us {
                channel.failure_timeout = Duration::from_micros(us);
            }
            if let Some(bps) = link.bandwidth_bps {
                channel.bandwidth_bytes_per_sec = (bps > 0).then_some(bps);
            }
            // Service precedence: the group's own service_us, then its
            // device's Table 2 measurement, then [defaults], then the mean
            // used by the analytic model.
            let service = match (group.link.service_us, &group.device) {
                (Some(us), _) => Duration::from_micros(us),
                (None, Some(device)) => {
                    let app = parse_app(group.app.as_deref())?;
                    device_service(device, app)
                        .ok_or_else(|| ScenarioError::UnknownDevice(device.clone()))?
                }
                (None, None) => Duration::from_micros(self.defaults.service_us.unwrap_or(1_650)),
            };
            let mut ids = Vec::with_capacity(group.count);
            for k in 0..group.count {
                let v = volunteers.len();
                ids.push(v);
                volunteers.push(VolunteerSpec {
                    group: group.name.clone(),
                    service,
                    channel: channel.clone().with_seed(self.seed.wrapping_add(v as u64)),
                    joins_at: Duration::from_micros(
                        group.joins_at_us + k as u64 * group.join_stagger_us,
                    ),
                    leaves_at: group.leaves_at_us.map(Duration::from_micros),
                    crash_at: self
                        .crashes
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, at)| Duration::from_micros(*at)),
                });
            }
            members.push((group.name.clone(), ids));
        }
        let partitions = self
            .partitions
            .iter()
            .map(|p| {
                let ids = members
                    .iter()
                    .find(|(name, _)| *name == p.group)
                    .map(|(_, ids)| ids.clone())
                    .expect("validated partition group");
                (ids, Duration::from_micros(p.at_us), Duration::from_micros(p.heal_us))
            })
            .collect();
        let script = FleetScript {
            name: self.name.clone(),
            volunteers,
            partitions,
            interactive_input: self.interactive,
        };
        Ok(FleetParams::new(self.seed, 1, self.tasks)
            .with_script(script)
            .with_flaps(self.flaps.clone()))
    }
}

impl FleetParams {
    /// Loads a `scenarios/*.toml` file and compiles it to runnable
    /// parameters — the one-call path from a checked-in scenario to a
    /// [`simulate_fleet`](crate::sim::simulate_fleet) run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::load`].
    pub fn from_scenario(path: impl AsRef<Path>) -> Result<FleetParams, ScenarioError> {
        Scenario::load(path)?.to_fleet_params()
    }
}

fn parse_app(app: Option<&str>) -> Result<AppKind, ScenarioError> {
    let name = app.unwrap_or("raytrace");
    AppKind::from_name(name)
        .ok_or_else(|| invalid("group.app", format!("unknown application {name:?}")))
}

/// Service time of a published Table 2 device for `app`, searching the LAN,
/// VPN and WAN rosters in order.
fn device_service(device: &str, app: AppKind) -> Option<Duration> {
    PaperNet::all().into_iter().find_map(|net| {
        ScenarioSetup::paper(net)
            .devices
            .into_iter()
            .find(|d| d.name == device)
            .and_then(|d| d.service_time(app))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate_fleet;

    const WAN_MIX: &str = r#"
name = "unit_wan_mix"
seed = 9
tasks = 64
duration_us = 30000000

[defaults]
service_us = 1200

[[group]]
name = "office"
count = 2
net = "lan"

[[group]]
name = "phones"
count = 2
net = "wan"
device = "iPhone SE"
app = "raytrace"
loss = 0.1
joins_at_us = 2000
join_stagger_us = 1000

[[crash]]
volunteer = 3
at_us = 9000

[[flap]]
volunteer = 1
at_us = 4000
down_us = 3000

[[partition]]
group = "office"
at_us = 5000
heal_us = 8000

[expect]
crashed = 1
crash_relends = 1
min_retransmits = 1
"#;

    #[test]
    fn parses_compiles_and_runs_deterministically() {
        let scenario = Scenario::parse(WAN_MIX).unwrap();
        assert_eq!(scenario.volunteers(), 4);
        assert_eq!(scenario.groups[1].device.as_deref(), Some("iPhone SE"));
        let params = scenario.to_fleet_params().unwrap();
        assert_eq!(params.volunteers, 4);
        assert_eq!(params.flaps, vec![(1, 4_000, 3_000)]);
        let script = params.script.as_ref().unwrap();
        // The iPhone's Table 2 raytrace rate, not the defaults fallback.
        assert!(script.volunteers[2].service > Duration::from_millis(100));
        assert_eq!(script.volunteers[2].joins_at, Duration::from_micros(2_000));
        assert_eq!(script.volunteers[3].joins_at, Duration::from_micros(3_000));
        assert_eq!(
            script.partitions,
            vec![(vec![0, 1], Duration::from_micros(5_000), Duration::from_micros(8_000))]
        );
        let a = simulate_fleet(&params);
        let b = simulate_fleet(&params);
        assert_eq!(a.canonical_trace(), b.canonical_trace());
        assert_eq!(a.output_order, (0..64).collect::<Vec<u64>>());
        scenario.expect.check(&a).unwrap();
    }

    #[test]
    fn round_trips_through_render() {
        let scenario = Scenario::parse(WAN_MIX).unwrap();
        let again = Scenario::parse(&scenario.render()).unwrap();
        assert_eq!(scenario, again, "render:\n{}", scenario.render());
    }

    fn parse_err(mutation: &str) -> ScenarioError {
        Scenario::parse(&format!("{WAN_MIX}\n{mutation}\n")).unwrap_err()
    }

    #[test]
    fn malformed_documents_return_typed_errors() {
        assert!(matches!(
            parse_err("[typo]\nx = 1"),
            ScenarioError::UnknownKey { table, .. } if table == "scenario"
        ));
        assert!(matches!(
            parse_err("[[crash]]\nvolunteer = 99\nat_us = 9000"),
            ScenarioError::UnknownVolunteer(99)
        ));
        assert!(matches!(
            parse_err("[[partition]]\ngroup = \"ghost\"\nat_us = 1\nheal_us = 2"),
            ScenarioError::UnknownGroup(g) if g == "ghost"
        ));
        assert!(matches!(
            parse_err("[[partition]]\ngroup = \"office\"\nat_us = 6000\nheal_us = 9000"),
            ScenarioError::OverlappingPartitions { group } if group == "office"
        ));
        assert!(matches!(
            parse_err("[[crash]]\nvolunteer = 0\nat_us = 99999999999"),
            ScenarioError::EventPastDuration { .. }
        ));
        assert!(matches!(
            parse_err("[[flap]]\nvolunteer = 3\nat_us = 100\ndown_us = 50"),
            ScenarioError::EventBeforeJoin { .. }
        ));
        // Loss outside [0, MAX_LOSS].
        let lossy = WAN_MIX.replace("loss = 0.1", "loss = 0.95");
        assert!(matches!(
            Scenario::parse(&lossy).unwrap_err(),
            ScenarioError::InvalidValue { key, .. } if key == "group.loss"
        ));
        // Unknown group key.
        let typo = WAN_MIX.replace("join_stagger_us", "join_stager_us");
        assert!(matches!(
            Scenario::parse(&typo).unwrap_err(),
            ScenarioError::UnknownKey { table, key } if table == "group" && key == "join_stager_us"
        ));
        // A bare parse error carries its line.
        assert!(matches!(Scenario::parse("name =").unwrap_err(), ScenarioError::Toml(_)));
    }

    #[test]
    fn schedules_without_a_survivor_are_rejected() {
        let text = r#"
name = "unit_doomed"
seed = 1
tasks = 4

[[group]]
name = "all"
count = 2

[[crash]]
volunteer = 0
at_us = 100

[[crash]]
volunteer = 1
at_us = 200
"#;
        assert_eq!(Scenario::parse(text).unwrap_err(), ScenarioError::NoSurvivor);
    }

    #[test]
    fn unknown_devices_are_rejected() {
        let text = WAN_MIX.replace("iPhone SE", "Nokia 3310");
        assert!(matches!(
            Scenario::parse(&text).unwrap_err(),
            ScenarioError::UnknownDevice(d) if d == "Nokia 3310"
        ));
        // A real device without a measurement for the app is rejected too:
        // WAN nodes have no image-processing rates.
        let text = WAN_MIX
            .replace("iPhone SE", "planetlab-1.cs.uit.no")
            .replace("raytrace", "image-processing");
        assert!(matches!(Scenario::parse(&text).unwrap_err(), ScenarioError::UnknownDevice(_)));
    }

    #[test]
    fn load_requires_the_name_to_match_the_stem() {
        let dir = std::env::temp_dir().join("pando-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("misnamed.toml");
        std::fs::write(&path, WAN_MIX).unwrap();
        assert!(matches!(
            Scenario::load(&path).unwrap_err(),
            ScenarioError::NameMismatch { name, stem } if name == "unit_wan_mix"
                && stem == "misnamed"
        ));
        let good = dir.join("unit_wan_mix.toml");
        std::fs::write(&good, WAN_MIX).unwrap();
        let params = FleetParams::from_scenario(&good).unwrap();
        assert_eq!(params.tasks, 64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expectation_failures_name_the_violated_bound() {
        let scenario = Scenario::parse(WAN_MIX).unwrap();
        let report = simulate_fleet(&scenario.to_fleet_params().unwrap());
        let mut expect = scenario.expect.clone();
        expect.crashed = Some(7);
        expect.max_wasted_polls = Some(0);
        let message = expect.check(&report).unwrap_err();
        assert!(message.contains("expect.crashed"), "{message}");
    }
}
