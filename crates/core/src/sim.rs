//! Deterministic deployment simulator.
//!
//! The evaluation of the paper measures throughput over five minutes on
//! twenty physical devices spread over three networks. To regenerate the
//! shape of Table 2 without that hardware, this module replays a deployment
//! on a virtual clock: each device is characterised by its per-task service
//! time (calibrated from the published per-device throughput), the network by
//! a one-way latency, and the master by the batch-size-limited dispatch
//! policy of the real implementation (a value is sent to exactly one device;
//! at most `batch_size` values are outstanding per device; a new value is
//! sent as soon as a result comes back). Devices may join late or crash, so
//! the same simulator also replays the Figure 4 deployment example and the
//! batching sweep of §5.5.

use pando_netsim::sim::{EventQueue, SimTime};
use std::time::Duration;

/// One simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDevice {
    /// Device name (used in the report).
    pub name: String,
    /// Time the device needs to process one task.
    pub service_time: Duration,
    /// When the device joins the deployment.
    pub joins_at: Duration,
    /// When the device crashes, if ever.
    pub crashes_at: Option<Duration>,
}

impl SimDevice {
    /// A device that participates from the start and never crashes.
    pub fn steady(name: impl Into<String>, service_time: Duration) -> Self {
        Self { name: name.into(), service_time, joins_at: Duration::ZERO, crashes_at: None }
    }
}

/// Parameters of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Number of values in flight allowed per device (the batch size).
    pub batch_size: usize,
    /// One-way network latency between the master and every device.
    pub latency: Duration,
    /// Length of the measured run.
    pub duration: Duration,
}

impl SimParams {
    /// Parameters with the given batch size, latency and five simulated
    /// minutes of measurement, the window used by the paper.
    pub fn paper_window(batch_size: usize, latency: Duration) -> Self {
        Self { batch_size, latency, duration: Duration::from_secs(300) }
    }
}

/// Throughput of one simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct SimDeviceReport {
    /// Device name.
    pub name: String,
    /// Number of tasks the device completed within the window.
    pub completed: u64,
    /// Average throughput in tasks per second over the window.
    pub throughput: f64,
    /// Fraction of the window the device spent computing (0 to 1).
    pub utilization: f64,
}

/// Result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-device results, in the order the devices were given.
    pub devices: Vec<SimDeviceReport>,
    /// Length of the simulated window.
    pub duration: Duration,
}

impl SimReport {
    /// Total throughput across devices, in tasks per second.
    pub fn total_throughput(&self) -> f64 {
        self.devices.iter().map(|d| d.throughput).sum()
    }

    /// Total number of completed tasks.
    pub fn total_completed(&self) -> u64 {
        self.devices.iter().map(|d| d.completed).sum()
    }

    /// Share of the total contributed by the device at `index`, in percent.
    pub fn share(&self, index: usize) -> f64 {
        let total = self.total_completed();
        if total == 0 {
            0.0
        } else {
            100.0 * self.devices[index].completed as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The device joins: the master sends it an initial batch.
    Join(usize),
    /// A task arrives at the device.
    TaskArrives(usize),
    /// The device finishes its current task.
    TaskDone(usize),
    /// The result reaches the master, which releases one more task.
    ResultAtMaster(usize),
    /// The device crashes.
    Crash(usize),
}

#[derive(Debug, Default, Clone)]
struct DeviceState {
    queued: u64,
    busy: bool,
    crashed: bool,
    completed_in_window: u64,
    busy_time: Duration,
}

/// Simulates a deployment over an infinite input stream (the usual Table 2
/// setup: the workload never starves the devices) and reports per-device
/// throughput over the window.
///
/// # Panics
///
/// Panics if `params.batch_size` is zero.
pub fn simulate(devices: &[SimDevice], params: &SimParams) -> SimReport {
    assert!(params.batch_size > 0, "batch size must be at least 1");
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut states: Vec<DeviceState> = vec![DeviceState::default(); devices.len()];
    let end = SimTime::ZERO + params.duration;

    for (i, device) in devices.iter().enumerate() {
        queue.schedule(SimTime::ZERO + device.joins_at, Event::Join(i));
        if let Some(crash) = device.crashes_at {
            queue.schedule(SimTime::ZERO + crash, Event::Crash(i));
        }
    }

    while let Some(time) = queue.peek_time() {
        if time > end {
            break;
        }
        let (now, event) = queue.pop().expect("peeked event exists");
        match event {
            Event::Join(i) => {
                for _ in 0..params.batch_size {
                    queue.schedule(now + params.latency, Event::TaskArrives(i));
                }
            }
            Event::TaskArrives(i) => {
                if states[i].crashed {
                    continue;
                }
                states[i].queued += 1;
                maybe_start(&mut queue, &mut states, devices, i, now);
            }
            Event::TaskDone(i) => {
                if states[i].crashed {
                    continue;
                }
                states[i].busy = false;
                states[i].completed_in_window += 1;
                states[i].busy_time += devices[i].service_time;
                queue.schedule(now + params.latency, Event::ResultAtMaster(i));
                maybe_start(&mut queue, &mut states, devices, i, now);
            }
            Event::ResultAtMaster(i) => {
                // The Limiter releases one more value for this device; the
                // master reads it lazily from the (infinite) input and sends
                // it immediately.
                if !states[i].crashed {
                    queue.schedule(now + params.latency, Event::TaskArrives(i));
                }
            }
            Event::Crash(i) => {
                states[i].crashed = true;
                states[i].queued = 0;
                states[i].busy = false;
                // In the real system the values it held are re-lent to other
                // devices; with an infinite input this does not change the
                // other devices' throughput, so the simulator simply drops
                // them.
            }
        }
    }

    let window = params.duration.as_secs_f64();
    SimReport {
        devices: devices
            .iter()
            .zip(&states)
            .map(|(device, state)| SimDeviceReport {
                name: device.name.clone(),
                completed: state.completed_in_window,
                throughput: state.completed_in_window as f64 / window,
                utilization: (state.busy_time.as_secs_f64() / window).min(1.0),
            })
            .collect(),
        duration: params.duration,
    }
}

fn maybe_start(
    queue: &mut EventQueue<Event>,
    states: &mut [DeviceState],
    devices: &[SimDevice],
    i: usize,
    now: SimTime,
) {
    if !states[i].busy && !states[i].crashed && states[i].queued > 0 {
        states[i].queued -= 1;
        states[i].busy = true;
        queue.schedule(now + devices[i].service_time, Event::TaskDone(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_is_rejected() {
        let devices = [SimDevice::steady("a", ms(10))];
        simulate(&devices, &SimParams { batch_size: 0, latency: ms(1), duration: ms(100) });
    }

    #[test]
    fn single_device_throughput_matches_service_rate() {
        // 10 ms per task, negligible latency, batch 2: ~100 tasks/s.
        let devices = [SimDevice::steady("laptop", ms(10))];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        let throughput = report.devices[0].throughput;
        assert!((throughput - 100.0).abs() < 2.0, "throughput {throughput} should be ~100/s");
        assert!(report.devices[0].utilization > 0.95);
    }

    #[test]
    fn batch_of_one_wastes_time_on_latency() {
        // With batch 1 every task pays a full round trip of idle time; with
        // batch 2 and 2*latency <= service the latency is fully hidden
        // (the §5.5 claim).
        let devices = [SimDevice::steady("phone", ms(10))];
        let slow = simulate(
            &devices,
            &SimParams { batch_size: 1, latency: ms(4), duration: Duration::from_secs(10) },
        );
        let fast = simulate(
            &devices,
            &SimParams { batch_size: 2, latency: ms(4), duration: Duration::from_secs(10) },
        );
        // Batch 1: cycle = service + 2*latency = 18 ms -> ~55/s.
        assert!((slow.devices[0].throughput - 55.5).abs() < 4.0);
        // Batch 2: the next task is always waiting -> ~100/s (latency hidden).
        assert!(fast.devices[0].throughput > 95.0);
        assert!(fast.total_throughput() > 1.6 * slow.total_throughput());
    }

    #[test]
    fn faster_devices_complete_more_tasks() {
        let devices = [SimDevice::steady("fast", ms(5)), SimDevice::steady("slow", ms(20))];
        let params = SimParams { batch_size: 2, latency: ms(2), duration: Duration::from_secs(5) };
        let report = simulate(&devices, &params);
        assert!(report.devices[0].completed > 3 * report.devices[1].completed);
        let share_fast = report.share(0);
        assert!(share_fast > 70.0 && share_fast < 90.0, "share {share_fast}");
    }

    #[test]
    fn late_join_contributes_less() {
        let mut late = SimDevice::steady("late", ms(10));
        late.joins_at = Duration::from_secs(5);
        let devices = [SimDevice::steady("early", ms(10)), late];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        assert!(report.devices[0].completed > report.devices[1].completed);
        assert!(report.devices[1].completed > 0, "the late device still contributes");
    }

    #[test]
    fn crashed_device_stops_contributing() {
        let mut doomed = SimDevice::steady("doomed", ms(10));
        doomed.crashes_at = Some(Duration::from_secs(2));
        let devices = [SimDevice::steady("survivor", ms(10)), doomed];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(10) };
        let report = simulate(&devices, &params);
        let survivor = &report.devices[0];
        let crashed = &report.devices[1];
        assert!(crashed.completed < survivor.completed / 2);
        assert!(crashed.utilization < 0.3);
        assert!(survivor.utilization > 0.9);
    }

    #[test]
    fn report_totals_are_consistent() {
        let devices = [SimDevice::steady("a", ms(10)), SimDevice::steady("b", ms(10))];
        let params = SimParams { batch_size: 2, latency: ms(1), duration: Duration::from_secs(3) };
        let report = simulate(&devices, &params);
        let sum: u64 = report.devices.iter().map(|d| d.completed).sum();
        assert_eq!(sum, report.total_completed());
        assert!((report.share(0) + report.share(1) - 100.0).abs() < 1e-9);
        assert!(report.total_throughput() > 0.0);
        assert_eq!(report.duration, Duration::from_secs(3));
    }

    #[test]
    fn paper_window_is_five_minutes() {
        let params = SimParams::paper_window(2, ms(2));
        assert_eq!(params.duration, Duration::from_secs(300));
        assert_eq!(params.batch_size, 2);
    }
}
